//! The paper's §5 claim, tested through the compactor itself: "the fault
//! coverage is the same as that from the X-canceling MISR method".
//!
//! Observability here is *through the MISR*: a fault is detectable only if
//! some X-free signature combination depends on a cell where the fault
//! flips a known value. The hybrid masks cells that were all-X anyway, so
//! its combinations span at least the canceling-only ones — coverage can
//! only stay equal, never drop.

use xhybrid::atpg::{generate_tests, AtpgConfig};
use xhybrid::bits::BitVec;
use xhybrid::core::PartitionEngine;
use xhybrid::fault::{all_output_faults, fault_coverage};
use xhybrid::logic::generate::CircuitSpec;
use xhybrid::misr::{Taps, XCancelConfig, XCancelingMisr};
use xhybrid::scan::{ResponseMatrix, ScanConfig, ScanHarness};

struct Setup<'a> {
    harness: ScanHarness<'a>,
    patterns: Vec<xhybrid::scan::TestPattern>,
    faults: Vec<xhybrid::fault::Fault>,
    responses: ResponseMatrix,
}

fn setup(netlist: &xhybrid::logic::Netlist, scan_flops: Vec<usize>) -> Setup<'_> {
    let scan_cfg = ScanConfig::uniform(4, 4);
    let harness = ScanHarness::new(netlist, scan_cfg, scan_flops).unwrap();
    let faults = all_output_faults(netlist);
    let atpg = generate_tests(&harness, &faults, AtpgConfig::default());
    let responses = harness.run(&atpg.patterns);
    Setup {
        harness,
        patterns: atpg.patterns,
        faults,
        responses,
    }
}

/// Per-pattern MISR observability masks for a given X-cell list per
/// pattern.
fn misr_observability(xc: &XCancelingMisr, per_pattern_x: &[Vec<usize>]) -> Vec<BitVec> {
    per_pattern_x
        .iter()
        .map(|x_cells| xc.observable_cells(x_cells))
        .collect()
}

#[test]
fn hybrid_coverage_equals_canceling_coverage_through_the_misr() {
    for seed in [3u64, 11] {
        let circuit = CircuitSpec {
            num_inputs: 8,
            num_gates: 90,
            num_scan_flops: 16,
            num_shadow_flops: 2,
            num_buses: 2,
            seed,
            ..CircuitSpec::default()
        }
        .generate();
        let s = setup(&circuit.netlist, circuit.scan_flops.clone());
        let cells = s.responses.config().total_cells();
        let cancel = XCancelConfig::new(12, 3);
        let xc = XCancelingMisr::new(
            s.responses.config().clone(),
            cancel.m(),
            Taps::default_for(cancel.m()),
        );

        // Canceling-only: X cells are the raw response X's.
        let raw_x: Vec<Vec<usize>> = (0..s.responses.num_patterns())
            .map(|p| {
                (0..cells)
                    .filter(|&c| s.responses.get_linear(p, c).is_x())
                    .collect()
            })
            .collect();
        let obs_cancel = misr_observability(&xc, &raw_x);

        // Hybrid: cells masked off, remaining (leaked) X's into the MISR.
        let xmap = s.responses.to_xmap();
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let masked = xhybrid::core::apply_partition_masks(&s.responses, &outcome);
        let masked_x: Vec<Vec<usize>> = (0..masked.num_patterns())
            .map(|p| {
                (0..cells)
                    .filter(|&c| masked.get_linear(p, c).is_x())
                    .collect()
            })
            .collect();
        let obs_hybrid_raw = misr_observability(&xc, &masked_x);
        // A masked cell is gated to constant 0 before the MISR: errors
        // there never reach the signature.
        let obs_hybrid: Vec<BitVec> = obs_hybrid_raw
            .iter()
            .enumerate()
            .map(|(p, obs)| {
                let part = outcome
                    .partitions
                    .iter()
                    .position(|set| set.contains(p))
                    .expect("pattern in a partition");
                let mut o = obs.clone();
                for c in 0..cells {
                    if outcome.masks[part].masks(c) {
                        o.set(c, false);
                    }
                }
                o
            })
            .collect();

        // Observability can only grow (minus the all-X masked cells).
        for p in 0..s.responses.num_patterns() {
            for c in 0..cells {
                if obs_cancel[p].get(c) {
                    assert!(
                        obs_hybrid[p].get(c),
                        "seed {seed}: hybrid lost observable cell {c} at pattern {p}"
                    );
                }
            }
        }

        // Fault coverage through the MISR: the paper asserts the hybrid
        // loses nothing relative to X-canceling-only. Measured, it can
        // even *gain*: fewer X constraints leave more known cells spanned
        // by the X-free combinations, so some known-value detections that
        // canceling-only sacrificed come back.
        let cov_cancel =
            fault_coverage(&s.harness, &s.patterns, &s.faults, &|p: usize, c: usize| {
                obs_cancel[p].get(c)
            });
        let cov_hybrid =
            fault_coverage(&s.harness, &s.patterns, &s.faults, &|p: usize, c: usize| {
                obs_hybrid[p].get(c)
            });
        assert!(
            cov_hybrid.detected >= cov_cancel.detected,
            "seed {seed}: hybrid lost coverage through the MISR ({} < {})",
            cov_hybrid.detected,
            cov_cancel.detected
        );
        // Every fault the canceling-only MISR detects, the hybrid detects.
        for (fi, d) in cov_cancel.detected_by.iter().enumerate() {
            if d.is_some() {
                assert!(
                    cov_hybrid.detected_by[fi].is_some(),
                    "seed {seed}: fault #{fi} detected by canceling-only but not hybrid"
                );
            }
        }
    }
}

#[test]
fn hybrid_reduces_x_into_the_misr_strictly() {
    let circuit = CircuitSpec {
        num_inputs: 8,
        num_gates: 90,
        num_scan_flops: 16,
        num_shadow_flops: 2,
        num_buses: 2,
        seed: 3,
        ..CircuitSpec::default()
    }
    .generate();
    let s = setup(&circuit.netlist, circuit.scan_flops.clone());
    let xmap = s.responses.to_xmap();
    if xmap.total_x() == 0 {
        return; // degenerate draw; nothing to show
    }
    let cancel = XCancelConfig::new(12, 3);
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let masked = xhybrid::core::apply_partition_masks(&s.responses, &outcome);
    assert!(masked.total_x() <= s.responses.total_x());
    assert_eq!(masked.total_x(), outcome.leaked_x());
}
