//! [`PlanOptions`] is the only way to configure the partition engine —
//! the deprecated `with_*` builder shims are gone. This suite pins the
//! invariants the shims used to witness: every option combination is
//! thread-count invariant (bit-identical outcomes at 1, 2, and 8 engine
//! threads) on the paper's Fig. 4 worked example and on scaled CKT-A/B/C
//! industrial profiles, and each option field actually steers the run.

use xhybrid::prelude::*;

/// The Fig. 4 X map: 8 patterns, 5 chains x 3 cells, 28 X's.
fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

/// Shrinks a paper-scale profile so the suite stays fast while keeping
/// its correlation structure (mirrors `xhybrid gen --scale`).
fn scaled(mut spec: WorkloadSpec, scale: usize) -> XMap {
    spec.total_cells = (spec.total_cells / scale).max(spec.num_chains.max(4));
    spec.num_chains = (spec.num_chains / scale).max(4);
    spec.num_patterns = (spec.num_patterns / scale).max(20);
    spec.generate()
}

fn test_maps() -> Vec<(&'static str, XMap, XCancelConfig)> {
    vec![
        ("fig4", fig4_xmap(), XCancelConfig::new(10, 2)),
        (
            "ckt-a",
            scaled(WorkloadSpec::ckt_a(), 60),
            XCancelConfig::new(32, 7),
        ),
        (
            "ckt-b",
            scaled(WorkloadSpec::ckt_b(), 60),
            XCancelConfig::new(32, 7),
        ),
        (
            "ckt-c",
            scaled(WorkloadSpec::ckt_c(), 60),
            XCancelConfig::new(32, 7),
        ),
    ]
}

#[test]
fn plan_options_are_thread_count_invariant() {
    for (name, xmap, cancel) in test_maps() {
        for strategy in [SplitStrategy::LargestClass, SplitStrategy::BestCost] {
            for policy in [CellSelection::First, CellSelection::GlobalMaxX] {
                let baseline = PartitionEngine::with_options(
                    cancel,
                    PlanOptions {
                        strategy,
                        policy,
                        threads: 1,
                        ..PlanOptions::default()
                    },
                )
                .run(&xmap);
                for threads in [2usize, 8] {
                    let outcome = PartitionEngine::with_options(
                        cancel,
                        PlanOptions {
                            strategy,
                            policy,
                            threads,
                            ..PlanOptions::default()
                        },
                    )
                    .run(&xmap);
                    assert_eq!(
                        baseline, outcome,
                        "thread divergence on {name} ({strategy:?}, {policy:?}, {threads} threads)"
                    );
                }
            }
        }
    }
}

#[test]
fn bounded_options_steer_the_run() {
    let (_, xmap, cancel) = test_maps().swap_remove(1); // scaled CKT-A
    let bounded = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            cost_stop: false,
            max_rounds: Some(3),
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    assert!(
        bounded.rounds.len() <= 3,
        "--max-rounds 3 must cap the rounds, got {}",
        bounded.rounds.len()
    );

    // Seeded policy is deterministic in the seed, and thread-invariant.
    let seeded = |threads: usize| {
        PartitionEngine::with_options(
            cancel,
            PlanOptions {
                policy: CellSelection::Seeded(41),
                threads,
                ..PlanOptions::default()
            },
        )
        .run(&xmap)
    };
    assert_eq!(seeded(1), seeded(1));
    assert_eq!(seeded(1), seeded(8));
}

#[test]
fn default_options_match_the_plain_constructor() {
    let (_, xmap, cancel) = test_maps().swap_remove(3); // scaled CKT-C
    let plain = PartitionEngine::new(cancel).run(&xmap);
    let via_options = PartitionEngine::with_options(cancel, PlanOptions::default()).run(&xmap);
    assert_eq!(plain, via_options);

    // The backend field is planning metadata: it selects a backend at the
    // `PlanBackend` layer but never perturbs the hybrid engine itself.
    let tagged = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            backend: BackendId::Superset,
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    assert_eq!(plain, tagged);
}
