//! The deprecated `with_*` builder shims must stay bit-identical to the
//! [`PlanOptions`] struct they delegate to — on the paper's Fig. 4
//! worked example and on scaled CKT-A/B/C industrial profiles, at every
//! engine thread count. This is the compatibility contract that lets
//! downstream callers migrate at their own pace.

// The whole point of this suite is to call the deprecated builders.
#![allow(deprecated)]

use xhybrid::prelude::*;

/// The Fig. 4 X map: 8 patterns, 5 chains x 3 cells, 28 X's.
fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

/// Shrinks a paper-scale profile so the suite stays fast while keeping
/// its correlation structure (mirrors `xhybrid gen --scale`).
fn scaled(mut spec: WorkloadSpec, scale: usize) -> XMap {
    spec.total_cells = (spec.total_cells / scale).max(spec.num_chains.max(4));
    spec.num_chains = (spec.num_chains / scale).max(4);
    spec.num_patterns = (spec.num_patterns / scale).max(20);
    spec.generate()
}

fn test_maps() -> Vec<(&'static str, XMap, XCancelConfig)> {
    vec![
        ("fig4", fig4_xmap(), XCancelConfig::new(10, 2)),
        (
            "ckt-a",
            scaled(WorkloadSpec::ckt_a(), 60),
            XCancelConfig::new(32, 7),
        ),
        (
            "ckt-b",
            scaled(WorkloadSpec::ckt_b(), 60),
            XCancelConfig::new(32, 7),
        ),
        (
            "ckt-c",
            scaled(WorkloadSpec::ckt_c(), 60),
            XCancelConfig::new(32, 7),
        ),
    ]
}

#[test]
fn builder_shims_match_plan_options_bit_for_bit() {
    for (name, xmap, cancel) in test_maps() {
        for strategy in [SplitStrategy::LargestClass, SplitStrategy::BestCost] {
            for policy in [CellSelection::First, CellSelection::GlobalMaxX] {
                for threads in [1usize, 2, 8] {
                    let via_builders = PartitionEngine::new(cancel)
                        .with_strategy(strategy)
                        .with_policy(policy)
                        .with_threads(threads)
                        .run(&xmap);
                    let via_options = PartitionEngine::with_options(
                        cancel,
                        PlanOptions {
                            strategy,
                            policy,
                            threads,
                            ..PlanOptions::default()
                        },
                    )
                    .run(&xmap);
                    assert_eq!(
                        via_builders, via_options,
                        "shim/options divergence on {name} ({strategy:?}, {policy:?}, {threads} threads)"
                    );
                }
            }
        }
    }
}

#[test]
fn remaining_shims_match_their_option_fields() {
    let (_, xmap, cancel) = test_maps().swap_remove(1); // scaled CKT-A
    let via_builders = PartitionEngine::new(cancel)
        .without_cost_stop()
        .with_max_rounds(3)
        .run(&xmap);
    let via_options = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            cost_stop: false,
            max_rounds: Some(3),
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    assert_eq!(via_builders, via_options);

    // Seeded policy carries its seed through both routes.
    let seeded_builders = PartitionEngine::new(cancel)
        .with_policy(CellSelection::Seeded(41))
        .run(&xmap);
    let seeded_options = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            policy: CellSelection::Seeded(41),
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    assert_eq!(seeded_builders, seeded_options);
}

#[test]
fn shims_compose_in_any_order() {
    let (_, xmap, cancel) = test_maps().swap_remove(3); // scaled CKT-C
    let a = PartitionEngine::new(cancel)
        .with_threads(2)
        .with_strategy(SplitStrategy::BestCost)
        .run(&xmap);
    let b = PartitionEngine::new(cancel)
        .with_strategy(SplitStrategy::BestCost)
        .with_threads(2)
        .run(&xmap);
    let c = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            strategy: SplitStrategy::BestCost,
            threads: 2,
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    assert_eq!(a, b);
    assert_eq!(b, c);
}
