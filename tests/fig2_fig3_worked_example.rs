//! Reproduces the paper's Figs. 2–3 exactly: the symbolic MISR state after
//! compacting 14 deterministic values and 4 X's, and the Gaussian
//! elimination that extracts the two X-free combinations
//! `M1 ^ M3 ^ M5` and `M1 ^ M4`.

use xhybrid::bits::{gauss, BitMatrix, BitVec};

/// Symbol indices: O2..O17 are mapped to 2..=17 of an 18-wide O space
/// (0 and 1 unused, matching the paper's numbering); X1..X4 to 0..=3.
struct Fig2 {
    /// Per MISR bit, the O symbols it depends on.
    o_rows: Vec<BitVec>,
    /// Per MISR bit, the X symbols it depends on.
    x_rows: Vec<BitVec>,
}

fn fig2() -> Fig2 {
    let o = |idxs: &[usize]| BitVec::from_indices(18, idxs.iter().copied());
    let x = |idxs: &[usize]| BitVec::from_indices(4, idxs.iter().map(|i| i - 1));
    Fig2 {
        o_rows: vec![
            o(&[3, 8, 13]),     // M1 = X1 + O3 + O8 + O13
            o(&[2, 9, 14]),     // M2 = X1 + O2 + X2 + X3 + O9 + O14
            o(&[2, 5, 10, 15]), // M3 = O2 + O5 + X3 + O10 + O15
            o(&[6, 11, 16]),    // M4 = X1 + O6 + O11 + O16
            o(&[2, 12, 17]),    // M5 = X1 + O2 + X3 + O12 + O17
            o(&[2]),            // M6 = O2 + X3 + X4
        ],
        x_rows: vec![
            x(&[1]),
            x(&[1, 2, 3]),
            x(&[3]),
            x(&[1]),
            x(&[1, 3]),
            x(&[3, 4]),
        ],
    }
}

#[test]
fn gaussian_elimination_finds_two_x_free_rows() {
    let fig = fig2();
    let dep = BitMatrix::from_rows(fig.x_rows.clone());
    // "Since there are 4 X's in a 6 bit MISR, 2 X-free rows can be found."
    assert_eq!(dep.rank(), 4);
    let combos = gauss::x_free_combinations(&dep);
    assert_eq!(combos.len(), 2);
    for combo in &combos {
        assert!(gauss::is_x_free(&dep, combo));
    }
}

#[test]
fn paper_combinations_are_x_free() {
    let fig = fig2();
    let dep = BitMatrix::from_rows(fig.x_rows.clone());
    let m1_m3_m5 = BitVec::from_indices(6, [0, 2, 4]);
    let m1_m4 = BitVec::from_indices(6, [0, 3]);
    assert!(gauss::is_x_free(&dep, &m1_m3_m5));
    assert!(gauss::is_x_free(&dep, &m1_m4));
}

#[test]
fn canceled_signatures_match_paper_o_sets() {
    // M1^M3^M5 = O3^O5^O8^O10^O12^O13^O15^O17
    // M1^M4    = O3^O6^O8^O11^O13^O16
    let fig = fig2();
    let xor_rows = |rows: &[usize]| {
        let mut acc = BitVec::zeros(18);
        for &r in rows {
            acc.xor_with(&fig.o_rows[r]);
        }
        acc
    };
    assert_eq!(
        xor_rows(&[0, 2, 4]),
        BitVec::from_indices(18, [3, 5, 8, 10, 12, 13, 15, 17])
    );
    assert_eq!(
        xor_rows(&[0, 3]),
        BitVec::from_indices(18, [3, 6, 8, 11, 13, 16])
    );
}

#[test]
fn paper_combinations_span_the_computed_basis() {
    // Our Gaussian elimination may output a different basis of the left
    // null space; verify both bases generate each other.
    let fig = fig2();
    let dep = BitMatrix::from_rows(fig.x_rows);
    let ours = gauss::x_free_combinations(&dep);
    let paper = [
        BitVec::from_indices(6, [0, 2, 4]),
        BitVec::from_indices(6, [0, 3]),
    ];
    // Stack ours + one paper combo: rank must stay 2 (no new dimension).
    for p in &paper {
        let mut rows = ours.clone();
        rows.push(p.clone());
        assert_eq!(BitMatrix::from_rows(rows).rank(), 2);
    }
}

#[test]
fn control_bit_accounting_matches_paper_text() {
    // "Since two X-free signatures are generated, it needs two cycles and
    //  each cycle requires 6 bits of control data. A total of 12 bits."
    let fig = fig2();
    let dep = BitMatrix::from_rows(fig.x_rows);
    let combos = gauss::x_free_combinations(&dep);
    let control_bits = combos.len() * 6;
    assert_eq!(control_bits, 12);
}
