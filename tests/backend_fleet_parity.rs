//! The backend fleet must agree with the legacy accounting it wraps:
//! every [`PlanBackend`]'s `control_bits` is pinned against the free
//! functions (`masking_only_bits`, `canceling_only_bits`,
//! `superset_canceling`, the hybrid engine's cost) on the paper's Fig. 4
//! worked example and on scaled CKT-A/B/C industrial profiles, and the
//! uniform report's internal accounting holds on arbitrary maps.

use xhc_prng::XhcRng;
use xhybrid::core::backend::SUPERSET_BACKEND_SLACK;
use xhybrid::core::baselines::{
    canceling_only_bits, masking_only_bits, superset_canceling, SupersetConfig,
};
use xhybrid::prelude::*;

/// The Fig. 4 X map: 8 patterns, 5 chains x 3 cells, 28 X's.
fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

/// Shrinks a paper-scale profile so the suite stays fast while keeping
/// its correlation structure (mirrors `xhybrid gen --scale`).
fn scaled(mut spec: WorkloadSpec, scale: usize) -> XMap {
    spec.total_cells = (spec.total_cells / scale).max(spec.num_chains.max(4));
    spec.num_chains = (spec.num_chains / scale).max(4);
    spec.num_patterns = (spec.num_patterns / scale).max(20);
    spec.generate()
}

fn test_maps() -> Vec<(&'static str, XMap, XCancelConfig)> {
    vec![
        ("fig4", fig4_xmap(), XCancelConfig::new(10, 2)),
        (
            "ckt-a",
            scaled(WorkloadSpec::ckt_a(), 60),
            XCancelConfig::new(32, 7),
        ),
        (
            "ckt-b",
            scaled(WorkloadSpec::ckt_b(), 60),
            XCancelConfig::new(32, 7),
        ),
        (
            "ckt-c",
            scaled(WorkloadSpec::ckt_c(), 60),
            XCancelConfig::new(32, 7),
        ),
    ]
}

fn report(backend: BackendId, xmap: &XMap, cancel: XCancelConfig) -> BackendReport {
    backend_for(backend).plan(&WorkloadInput::new(xmap, cancel), &PlanOptions::default())
}

#[test]
fn every_backend_matches_its_legacy_accounting() {
    for (name, xmap, cancel) in test_maps() {
        let masking = report(BackendId::MaskingOnly, &xmap, cancel);
        assert_eq!(
            masking.control_bits,
            masking_only_bits(xmap.config(), xmap.num_patterns()) as f64,
            "masking backend diverged from masking_only_bits on {name}"
        );

        let canceling = report(BackendId::CancelingOnly, &xmap, cancel);
        assert_eq!(
            canceling.control_bits,
            canceling_only_bits(cancel, xmap.total_x()),
            "canceling backend diverged from canceling_only_bits on {name}"
        );

        let superset = report(BackendId::Superset, &xmap, cancel);
        let legacy = superset_canceling(
            &xmap,
            SupersetConfig {
                cancel,
                merge_slack: SUPERSET_BACKEND_SLACK,
            },
        );
        assert_eq!(
            superset.control_bits,
            legacy.control_bits(),
            "superset backend diverged from superset_canceling on {name}"
        );
        assert_eq!(
            superset.lost_observability, legacy.lost_observability,
            "superset lost-observability diverged on {name}"
        );

        let hybrid = report(BackendId::Hybrid, &xmap, cancel);
        let outcome = PartitionEngine::with_options(cancel, PlanOptions::default()).run(&xmap);
        assert_eq!(
            hybrid.control_bits,
            outcome.cost.total(),
            "hybrid backend diverged from the partition engine on {name}"
        );
        assert_eq!(hybrid.masked_x, outcome.masked_x(), "{name}");
        assert_eq!(hybrid.leaked_x, outcome.leaked_x(), "{name}");

        let xcode = report(BackendId::XCode, &xmap, cancel);
        assert_eq!(
            xcode.control_bits, 0.0,
            "the X-code compactor spends no control bits ({name})"
        );
    }
}

#[test]
fn fig4_pins_the_paper_numbers_across_the_fleet() {
    let xmap = fig4_xmap();
    let cancel = XCancelConfig::new(10, 2);
    assert_eq!(
        report(BackendId::MaskingOnly, &xmap, cancel).control_bits,
        120.0
    );
    assert_eq!(
        report(BackendId::CancelingOnly, &xmap, cancel).control_bits,
        70.0
    );
    let hybrid = report(BackendId::Hybrid, &xmap, cancel);
    assert_eq!(hybrid.control_bits, 57.5);
    assert_eq!(hybrid.masked_x, 23);
    assert_eq!(hybrid.leaked_x, 5);
    assert_eq!(hybrid.outcome.as_ref().map(|o| o.partitions.len()), Some(3));
}

/// An arbitrary small X map: up to 12 cells x 24 patterns.
fn random_xmap(rng: &mut XhcRng) -> XMap {
    let cfg = ScanConfig::uniform(3, 4);
    let mut b = XMapBuilder::new(cfg, 24);
    for _ in 0..rng.gen_range(0..120) {
        let cell = rng.gen_index(12);
        b.add_x(CellId::new(cell / 4, cell % 4), rng.gen_index(24))
            .unwrap();
    }
    b.finish()
}

#[test]
fn uniform_reports_account_for_every_x_on_arbitrary_maps() {
    let mut rng = XhcRng::seed_from_u64(0xBAC_0001);
    for _ in 0..32 {
        let xmap = random_xmap(&mut rng);
        let m = rng.gen_range(4..=16);
        let q = rng.gen_range(1..=3usize).min(m - 1);
        let cancel = XCancelConfig::new(m, q);
        for &backend in &BackendId::ALL {
            let r = report(backend, &xmap, cancel);
            assert_eq!(r.backend, backend);
            assert_eq!(
                r.masked_x + r.leaked_x,
                xmap.total_x(),
                "{backend}: masked + leaked must partition the X count"
            );
            assert_eq!(r.per_pattern.len(), xmap.num_patterns(), "{backend}");
            let share_sum: f64 = r.per_pattern.iter().map(|p| p.control_bits).sum();
            assert!(
                (share_sum - r.control_bits).abs() <= 1e-3 * r.control_bits.max(1.0),
                "{backend}: per-pattern shares sum to {share_sum}, report says {}",
                r.control_bits
            );
            let per_pattern_x: usize = r.per_pattern.iter().map(|p| p.total_x).sum();
            assert_eq!(per_pattern_x, xmap.total_x(), "{backend}");
            if backend.caps().lossless {
                assert_eq!(r.lost_observability, 0, "{backend} is lossless");
            }
            if backend.caps().partitions {
                assert!(r.outcome.is_some(), "{backend} must expose its plan");
            } else {
                assert!(r.outcome.is_none(), "{backend} has no partition plan");
            }
        }
    }
}
