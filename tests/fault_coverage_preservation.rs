//! Demonstrates (not just asserts) the paper's central coverage claim:
//! masking only cells that are X under *every* pattern of their partition
//! loses no fault coverage, while a naive "mask anything with an X"
//! policy does.

use xhybrid::atpg::{generate_tests, AtpgConfig};
use xhybrid::core::PartitionEngine;
use xhybrid::fault::{all_output_faults, fault_coverage, FullObservability};
use xhybrid::logic::generate::CircuitSpec;
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::{ScanConfig, ScanHarness};

fn circuit_spec(seed: u64) -> CircuitSpec {
    CircuitSpec {
        num_inputs: 8,
        num_gates: 90,
        num_scan_flops: 16,
        num_shadow_flops: 2,
        num_buses: 2,
        seed,
        ..CircuitSpec::default()
    }
}

#[test]
fn hybrid_masking_preserves_coverage_across_circuits() {
    for seed in [1u64, 7] {
        let circuit = circuit_spec(seed).generate();
        let scan_cfg = ScanConfig::uniform(4, 4);
        let harness =
            ScanHarness::new(&circuit.netlist, scan_cfg, circuit.scan_flops.clone()).unwrap();
        let faults = all_output_faults(&circuit.netlist);
        let atpg = generate_tests(&harness, &faults, AtpgConfig::default());
        let responses = harness.run(&atpg.patterns);
        let xmap = responses.to_xmap();

        let outcome = PartitionEngine::new(XCancelConfig::new(12, 3)).run(&xmap);

        let raw = fault_coverage(&harness, &atpg.patterns, &faults, &FullObservability);
        let hybrid = fault_coverage(&harness, &atpg.patterns, &faults, &|p: usize, c: usize| {
            let part = outcome
                .partitions
                .iter()
                .position(|s| s.contains(p))
                .expect("pattern in some partition");
            !outcome.masks[part].masks(c)
        });
        assert_eq!(
            raw.detected, hybrid.detected,
            "seed {seed}: hybrid masking changed coverage ({} vs {})",
            raw.detected, hybrid.detected
        );
        // The detecting pattern of each fault is unchanged too — masking
        // only ever covered cells that were X (undetecting) anyway.
        assert_eq!(raw.detected_by, hybrid.detected_by, "seed {seed}");
    }
}

#[test]
fn naive_masking_loses_coverage() {
    // Mask every cell that captures at least one X anywhere (a superset
    // of the paper's rule): observable non-X values disappear and
    // detections are lost — this is why [17, 18] must re-run fault
    // simulation and the paper's method does not.
    let mut any_loss = false;
    for seed in [1u64, 7, 42] {
        let circuit = circuit_spec(seed).generate();
        let scan_cfg = ScanConfig::uniform(4, 4);
        let harness =
            ScanHarness::new(&circuit.netlist, scan_cfg, circuit.scan_flops.clone()).unwrap();
        let faults = all_output_faults(&circuit.netlist);
        let atpg = generate_tests(&harness, &faults, AtpgConfig::default());
        let responses = harness.run(&atpg.patterns);
        let xmap = responses.to_xmap();

        let naive_masked: Vec<bool> = (0..xmap.config().total_cells())
            .map(|i| xmap.x_count(xmap.config().cell_at(i)) > 0)
            .collect();

        let raw = fault_coverage(&harness, &atpg.patterns, &faults, &FullObservability);
        let naive = fault_coverage(&harness, &atpg.patterns, &faults, &|_: usize, c: usize| {
            !naive_masked[c]
        });
        assert!(naive.detected <= raw.detected);
        if naive.detected < raw.detected {
            any_loss = true;
        }
    }
    assert!(
        any_loss,
        "naive masking should lose coverage on at least one circuit"
    );
}

#[test]
fn coverage_loss_would_be_caught() {
    // Sanity meta-test: the comparison actually has teeth. Blinding a
    // random half of the cells must lose detections on X-prone circuits.
    let circuit = circuit_spec(7).generate();
    let scan_cfg = ScanConfig::uniform(4, 4);
    let harness = ScanHarness::new(&circuit.netlist, scan_cfg, circuit.scan_flops.clone()).unwrap();
    let faults = all_output_faults(&circuit.netlist);
    let atpg = generate_tests(&harness, &faults, AtpgConfig::default());

    let raw = fault_coverage(&harness, &atpg.patterns, &faults, &FullObservability);
    let half = fault_coverage(&harness, &atpg.patterns, &faults, &|_: usize, c: usize| {
        c.is_multiple_of(2)
    });
    assert!(half.detected < raw.detected);
}
