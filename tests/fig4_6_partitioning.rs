//! Reproduces the paper's Figs. 4–6 worked example through the public API,
//! including the operational pipeline: mask application and the
//! time-multiplexed X-canceling session on the leaked X's.

use xhybrid::bits::PatternSet;
use xhybrid::core::{
    apply_partition_masks, evaluate_hybrid, CellSelection, CorrelationAnalysis, PartitionEngine,
};
use xhybrid::logic::Trit;
use xhybrid::misr::{CancelSession, Taps, XCancelConfig};
use xhybrid::scan::{CellId, ResponseMatrix, ScanConfig, XMap, XMapBuilder};

fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

fn fig4_responses(xmap: &XMap) -> ResponseMatrix {
    let cfg = xmap.config().clone();
    let mut m = ResponseMatrix::filled(cfg.clone(), 8, Trit::Zero);
    for p in 0..8 {
        for idx in 0..cfg.total_cells() {
            let cell = cfg.cell_at(idx);
            let v = if xmap.is_x(p, cell) {
                Trit::X
            } else {
                Trit::from_bool((p * 7 + idx) % 3 == 0)
            };
            m.set(p, cell, v);
        }
    }
    m
}

#[test]
fn fig4_correlation_analysis_classes() {
    // "the most number of X's captured in one scan cell is 7 and the
    //  largest number of scan cells having the same number of X's is 3"
    let xmap = fig4_xmap();
    let analysis = CorrelationAnalysis::analyze(&xmap, &PatternSet::all(8));
    let max_count = analysis.classes().map(|(c, _)| c).max().unwrap();
    assert_eq!(max_count, 7);
    let (count, cells) = analysis.pivot_class().unwrap();
    assert_eq!((count, cells.len()), (4, 3));
}

#[test]
fn fig5_partition_sequence() {
    let xmap = fig4_xmap();
    let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
    // Final state: Partition 2 = {P2,P3,P7,P8}, Partition 3 = {P1,P4,P5},
    // Partition 4 = {P6}.
    let mut got: Vec<Vec<usize>> = outcome
        .partitions
        .iter()
        .map(|p| p.iter().map(|i| i + 1).collect())
        .collect();
    got.sort();
    assert_eq!(got, vec![vec![1, 4, 5], vec![2, 3, 7, 8], vec![6]]);
}

#[test]
fn fig6_control_bit_generation() {
    // "This method removes 23 X's out of total 28 X's... reduces 120
    //  control bits to 45 bits (i.e., 15 control bits for each partition)"
    let xmap = fig4_xmap();
    let report = evaluate_hybrid(&xmap, XCancelConfig::new(10, 2), CellSelection::First);
    assert_eq!(report.masking_only_bits, 120);
    assert_eq!(report.outcome.cost.masking_bits, 45);
    assert_eq!(report.outcome.masked_x(), 23);
    assert_eq!(report.outcome.leaked_x(), 5);
    // Total: 45 + 10*2*5/8 = 57.5 -> 58.
    assert_eq!(report.outcome.cost.total_ceil(), 58);
}

#[test]
fn fig6_cost_function_round_trace() {
    // Round costs with (m=10, q=2): 85 (round 0) -> 60 -> 57.5.
    let xmap = fig4_xmap();
    let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
    assert!((outcome.initial_cost.total() - 85.0).abs() < 1e-9);
    assert_eq!(outcome.rounds.len(), 2);
    assert!((outcome.rounds[0].cost_after.total() - 60.0).abs() < 1e-9);
    assert!((outcome.rounds[1].cost_after.total() - 57.5).abs() < 1e-9);
}

#[test]
fn fig6_alternate_misr_config_stops_earlier() {
    // (m=10, q=1): 44 bits at round 1, 51 at round 2 -> stop at round 1.
    let xmap = fig4_xmap();
    let outcome = PartitionEngine::new(XCancelConfig::new(10, 1)).run(&xmap);
    assert_eq!(outcome.rounds.len(), 1);
    assert_eq!(outcome.cost.total_ceil(), 44);
}

#[test]
fn operational_pipeline_cancels_the_five_leaked_x() {
    let xmap = fig4_xmap();
    let responses = fig4_responses(&xmap);
    let cancel = XCancelConfig::new(10, 2);
    let outcome = PartitionEngine::new(cancel).run(&xmap);

    let masked = apply_partition_masks(&responses, &outcome);
    assert_eq!(masked.total_x(), 5);

    // The time-multiplexed session halts less often with masking.
    let session = CancelSession::new(responses.config().clone(), cancel, Taps::default_for(10));
    let with_mask = session.run(&masked);
    let without_mask = session.run(&responses);
    assert_eq!(with_mask.total_x, 5);
    assert_eq!(without_mask.total_x, 28);
    assert!(with_mask.halts <= without_mask.halts);
    // Every block respecting the X budget yields q combinations.
    for block in &with_mask.blocks {
        if block.num_x <= cancel.m() - cancel.q() {
            assert!(!block.combinations.is_empty());
        }
    }
}

#[test]
fn masks_match_fig6_cell_lists() {
    let xmap = fig4_xmap();
    let cfg = xmap.config().clone();
    let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
    for (part, mask) in outcome.partitions.iter().zip(&outcome.masks) {
        let members: Vec<usize> = part.iter().collect();
        let masked: Vec<CellId> = (0..cfg.total_cells())
            .filter(|&i| mask.masks(i))
            .map(|i| cfg.cell_at(i))
            .collect();
        match members.as_slice() {
            // Partition {P2,P3,P7,P8}: only SC4[2].
            [1, 2, 6, 7] => assert_eq!(masked, vec![CellId::new(3, 2)]),
            // Partition {P1,P4,P5}: SC1[0], SC2[0], SC3[0], SC4[2], SC5[1].
            [0, 3, 4] => assert_eq!(
                masked,
                vec![
                    CellId::new(0, 0),
                    CellId::new(1, 0),
                    CellId::new(2, 0),
                    CellId::new(3, 2),
                    CellId::new(4, 1),
                ]
            ),
            // Partition {P6}: SC1[0], SC2[0], SC3[0], SC5[2].
            [5] => assert_eq!(
                masked,
                vec![
                    CellId::new(0, 0),
                    CellId::new(1, 0),
                    CellId::new(2, 0),
                    CellId::new(4, 2),
                ]
            ),
            other => panic!("unexpected partition {other:?}"),
        }
    }
}
