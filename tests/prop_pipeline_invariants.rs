//! Property-based tests over randomly generated workloads: the invariants
//! the paper's method rests on must hold for *any* X profile, not just the
//! worked example.

use proptest::prelude::*;
use xhybrid::bits::PatternSet;
use xhybrid::core::{evaluate_hybrid, CellSelection, PartitionEngine};
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::{CellId, ScanConfig, XMap, XMapBuilder};
use xhybrid::workload::WorkloadSpec;

/// An arbitrary small X map: up to 12 cells x 24 patterns.
fn arb_xmap() -> impl Strategy<Value = XMap> {
    let entries = prop::collection::vec((0usize..12, 0usize..24), 0..120);
    entries.prop_map(|entries| {
        let cfg = ScanConfig::uniform(3, 4);
        let mut b = XMapBuilder::new(cfg, 24);
        for (cell, pattern) in entries {
            b.add_x(CellId::new(cell / 4, cell % 4), pattern);
        }
        b.finish()
    })
}

fn arb_cancel() -> impl Strategy<Value = XCancelConfig> {
    (4usize..=16, 1usize..=3).prop_map(|(m, q)| XCancelConfig::new(m, q.min(m - 1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitions_cover_and_are_disjoint(xmap in arb_xmap(), cancel in arb_cancel()) {
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let n = xmap.num_patterns();
        let mut union = PatternSet::empty(n);
        for p in &outcome.partitions {
            prop_assert!(union.is_disjoint_from(p));
            union = union.union(p);
        }
        prop_assert_eq!(union, PatternSet::all(n));
    }

    #[test]
    fn masks_only_cover_all_x_cells(xmap in arb_xmap(), cancel in arb_cancel()) {
        // The no-coverage-loss invariant: a masked cell is X under every
        // pattern of its partition.
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        for (part, mask) in outcome.partitions.iter().zip(&outcome.masks) {
            for idx in 0..xmap.config().total_cells() {
                if mask.masks(idx) {
                    let cell = xmap.config().cell_at(idx);
                    for p in part.iter() {
                        prop_assert!(xmap.is_x(p, cell));
                    }
                }
            }
        }
    }

    #[test]
    fn x_accounting_balances(xmap in arb_xmap(), cancel in arb_cancel()) {
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        prop_assert_eq!(
            outcome.masked_x() + outcome.leaked_x(),
            xmap.total_x()
        );
    }

    #[test]
    fn cost_stop_never_exceeds_initial(xmap in arb_xmap(), cancel in arb_cancel()) {
        // With the cost stop active, the final cost is at most the cost of
        // the single-partition starting point.
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        prop_assert!(outcome.cost.total() <= outcome.initial_cost.total() + 1e-9);
    }

    #[test]
    fn cost_formula_consistency(xmap in arb_xmap(), cancel in arb_cancel()) {
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let expect_mask_bits =
            xmap.config().mask_word_bits() as u128 * outcome.partitions.len() as u128;
        prop_assert_eq!(outcome.cost.masking_bits, expect_mask_bits);
        let expect_cancel = cancel.control_bits(outcome.leaked_x());
        prop_assert!((outcome.cost.canceling_bits - expect_cancel).abs() < 1e-9);
    }

    #[test]
    fn policies_all_satisfy_invariants(xmap in arb_xmap()) {
        let cancel = XCancelConfig::new(10, 2);
        for policy in [
            CellSelection::First,
            CellSelection::Seeded(5),
            CellSelection::GlobalMaxX,
        ] {
            let outcome = PartitionEngine::new(cancel).with_policy(policy).run(&xmap);
            prop_assert_eq!(
                outcome.masked_x() + outcome.leaked_x(),
                xmap.total_x()
            );
        }
    }

    #[test]
    fn deeper_partitioning_never_masks_fewer_x(xmap in arb_xmap()) {
        // Without the cost stop, running to exhaustion masks at least as
        // many X's as the cost-stopped run (more partitions -> more,
        // never fewer, maskable cells).
        let cancel = XCancelConfig::new(10, 2);
        let stopped = PartitionEngine::new(cancel).run(&xmap);
        let exhaustive = PartitionEngine::new(cancel).without_cost_stop().run(&xmap);
        prop_assert!(exhaustive.masked_x() >= stopped.masked_x());
        prop_assert!(exhaustive.partitions.len() >= stopped.partitions.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn workload_generator_feeds_the_pipeline(seed in 0u64..500) {
        let spec = WorkloadSpec {
            total_cells: 240,
            num_chains: 4,
            num_patterns: 60,
            x_density: 0.03,
            seed,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        let report = evaluate_hybrid(&xmap, XCancelConfig::new(16, 4), CellSelection::First);
        // The hybrid never does worse than its own starting point, and the
        // improvement ratios are well-defined.
        prop_assert!(report.proposed_bits <= report.outcome.initial_cost.total() + 1e-9);
        prop_assert!(report.time_proposed <= report.time_canceling_only + 1e-12);
        prop_assert!(report.impv_over_masking.is_finite());
    }
}
