//! Randomized invariant tests over generated workloads: the invariants
//! the paper's method rests on must hold for *any* X profile, not just
//! the worked example (deterministic seeded loops).

use xhc_prng::XhcRng;
use xhybrid::bits::PatternSet;
use xhybrid::core::{evaluate_hybrid, CellSelection, PartitionEngine, PlanOptions};
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::{CellId, ScanConfig, XMap, XMapBuilder};
use xhybrid::workload::WorkloadSpec;

/// An arbitrary small X map: up to 12 cells x 24 patterns.
fn random_xmap(rng: &mut XhcRng) -> XMap {
    let cfg = ScanConfig::uniform(3, 4);
    let mut b = XMapBuilder::new(cfg, 24);
    for _ in 0..rng.gen_range(0..120) {
        let cell = rng.gen_index(12);
        b.add_x(CellId::new(cell / 4, cell % 4), rng.gen_index(24))
            .unwrap();
    }
    b.finish()
}

fn random_cancel(rng: &mut XhcRng) -> XCancelConfig {
    let m = rng.gen_range(4..=16);
    let q = rng.gen_range(1..=3usize);
    XCancelConfig::new(m, q.min(m - 1))
}

#[test]
fn partitions_cover_and_are_disjoint() {
    let mut rng = XhcRng::seed_from_u64(0xF1F1);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = random_cancel(&mut rng);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let n = xmap.num_patterns();
        let mut union = PatternSet::empty(n);
        for p in &outcome.partitions {
            assert!(union.is_disjoint_from(p));
            union = union.union(p);
        }
        assert_eq!(union, PatternSet::all(n));
    }
}

#[test]
fn masks_only_cover_all_x_cells() {
    // The no-coverage-loss invariant: a masked cell is X under every
    // pattern of its partition.
    let mut rng = XhcRng::seed_from_u64(0xF1F2);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = random_cancel(&mut rng);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        for (part, mask) in outcome.partitions.iter().zip(&outcome.masks) {
            for idx in 0..xmap.config().total_cells() {
                if mask.masks(idx) {
                    let cell = xmap.config().cell_at(idx);
                    for p in part.iter() {
                        assert!(xmap.is_x(p, cell));
                    }
                }
            }
        }
    }
}

#[test]
fn x_accounting_balances() {
    let mut rng = XhcRng::seed_from_u64(0xF1F3);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = random_cancel(&mut rng);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        assert_eq!(outcome.masked_x() + outcome.leaked_x(), xmap.total_x());
    }
}

#[test]
fn cost_stop_never_exceeds_initial() {
    // With the cost stop active, the final cost is at most the cost of
    // the single-partition starting point.
    let mut rng = XhcRng::seed_from_u64(0xF1F4);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = random_cancel(&mut rng);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        assert!(outcome.cost.total() <= outcome.initial_cost.total() + 1e-9);
    }
}

#[test]
fn cost_formula_consistency() {
    let mut rng = XhcRng::seed_from_u64(0xF1F5);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = random_cancel(&mut rng);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let expect_mask_bits =
            xmap.config().mask_word_bits() as u128 * outcome.partitions.len() as u128;
        assert_eq!(outcome.cost.masking_bits, expect_mask_bits);
        let expect_cancel = cancel.control_bits(outcome.leaked_x());
        assert!((outcome.cost.canceling_bits - expect_cancel).abs() < 1e-9);
    }
}

#[test]
fn policies_all_satisfy_invariants() {
    let mut rng = XhcRng::seed_from_u64(0xF1F6);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = XCancelConfig::new(10, 2);
        for policy in [
            CellSelection::First,
            CellSelection::Seeded(5),
            CellSelection::GlobalMaxX,
        ] {
            let outcome = PartitionEngine::with_options(
                cancel,
                PlanOptions {
                    policy,
                    ..PlanOptions::default()
                },
            )
            .run(&xmap);
            assert_eq!(outcome.masked_x() + outcome.leaked_x(), xmap.total_x());
        }
    }
}

#[test]
fn deeper_partitioning_never_masks_fewer_x() {
    // Without the cost stop, running to exhaustion masks at least as
    // many X's as the cost-stopped run (more partitions -> more,
    // never fewer, maskable cells).
    let mut rng = XhcRng::seed_from_u64(0xF1F7);
    for _ in 0..64 {
        let xmap = random_xmap(&mut rng);
        let cancel = XCancelConfig::new(10, 2);
        let stopped = PartitionEngine::new(cancel).run(&xmap);
        let exhaustive = PartitionEngine::with_options(
            cancel,
            PlanOptions {
                cost_stop: false,
                ..PlanOptions::default()
            },
        )
        .run(&xmap);
        assert!(exhaustive.masked_x() >= stopped.masked_x());
        assert!(exhaustive.partitions.len() >= stopped.partitions.len());
    }
}

#[test]
fn workload_generator_feeds_the_pipeline() {
    let mut rng = XhcRng::seed_from_u64(0xF1F8);
    for _ in 0..12 {
        let spec = WorkloadSpec {
            total_cells: 240,
            num_chains: 4,
            num_patterns: 60,
            x_density: 0.03,
            seed: rng.next_u64() % 500,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        let report = evaluate_hybrid(&xmap, XCancelConfig::new(16, 4), CellSelection::First);
        // The hybrid never does worse than its own starting point, and the
        // improvement ratios are well-defined.
        assert!(report.proposed_bits <= report.outcome.initial_cost.total() + 1e-9);
        assert!(report.time_proposed <= report.time_canceling_only + 1e-12);
        assert!(report.impv_over_masking.is_finite());
    }
}
