//! Integration tests that shell out to the `xhybrid` binary: exit-code
//! conventions (0 success, 1 runtime failure, 2 usage error),
//! per-subcommand `--help`, and the serve/fetch loop over a real socket.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn xhybrid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xhybrid"))
}

fn run(args: &[&str]) -> (i32, String, String) {
    let output = xhybrid().args(args).output().expect("spawn xhybrid");
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xhc-cli-{tag}-{}", std::process::id()))
}

#[test]
fn no_args_is_a_usage_error() {
    let (code, _, err) = run(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    let (code, _, err) = run(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown command"));
}

#[test]
fn top_level_help_exits_zero() {
    let (code, out, _) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(out.contains("usage:"));
    assert!(out.contains("serve"));
    assert!(out.contains("fetch"));
}

#[test]
fn every_subcommand_answers_help() {
    for cmd in ["gen", "analyze", "partition", "schedule", "serve", "fetch"] {
        let (code, out, _) = run(&[cmd, "--help"]);
        assert_eq!(code, 0, "{cmd} --help should exit 0");
        assert!(out.contains(cmd), "{cmd} help should mention itself");
    }
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let (code, _, err) = run(&["partition", "file.xmap", "--m"]);
    assert_eq!(code, 2);
    assert!(err.contains("needs a value"));
}

#[test]
fn bad_cancel_params_are_a_usage_error() {
    let (code, _, err) = run(&["partition", "file.xmap", "--m", "8", "--q", "8"]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("0 < q < m"));
}

#[test]
fn missing_file_is_a_runtime_error() {
    let (code, _, err) = run(&["analyze", "/nonexistent/path.xmap"]);
    assert_eq!(code, 1);
    assert!(err.contains("cannot open"));
}

#[test]
fn gen_partition_pipeline_succeeds() {
    let xmap_path = temp_path("pipeline.xmap");
    let (code, _, err) = run(&[
        "gen",
        "--profile",
        "demo",
        "--out",
        xmap_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{err}");

    let (code, out, err) = run(&["partition", xmap_path.to_str().unwrap()]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("partitions"));
    assert!(out.contains("control bits"));
    let _ = std::fs::remove_file(&xmap_path);
}

#[test]
fn fetch_without_addr_is_a_usage_error() {
    let (code, _, err) = run(&["fetch", "some.xmap"]);
    assert_eq!(code, 2);
    assert!(err.contains("--addr"));
}

#[test]
fn fetch_against_a_dead_daemon_is_a_runtime_error() {
    let hash = "0000000000000000";
    // Port 1 on loopback is essentially never listening.
    let (code, _, err) = run(&["fetch", "--addr", "127.0.0.1:1", "--hash", hash]);
    assert_eq!(code, 1);
    assert!(err.contains("cannot reach"));
}

/// Kills the daemon child on drop so failed asserts don't leak processes.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_and_fetch_roundtrip_over_a_socket() {
    let store = temp_path("cli-store");
    let xmap_path = temp_path("served.xmap");
    let (code, _, err) = run(&[
        "gen",
        "--profile",
        "demo",
        "--out",
        xmap_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{err}");

    let child = xhybrid()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--store",
            store.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut guard = DaemonGuard(child);

    // The daemon prints `listening on ADDR` once bound.
    let stdout = guard.0.stdout.take().expect("daemon stdout");
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("read bind line");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected bind line: {first_line}"))
        .to_string();

    // First fetch submits and plans (cache miss)...
    let (code, out, err) = run(&[
        "fetch",
        "--addr",
        &addr,
        xmap_path.to_str().unwrap(),
        "--m",
        "16",
        "--q",
        "3",
    ]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("cache            : miss"), "{out}");
    assert!(out.contains("partitions"), "{out}");
    let hash_line = out
        .lines()
        .find(|l| l.starts_with("plan hash"))
        .expect("hash line");
    let hash = hash_line.rsplit(' ').next().unwrap().to_string();

    // ...the second is a cache hit with the same plan hash.
    let (code, out, _) = run(&[
        "fetch",
        "--addr",
        &addr,
        xmap_path.to_str().unwrap(),
        "--m",
        "16",
        "--q",
        "3",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("cache            : hit"), "{out}");
    assert!(out.contains(&hash), "{out}");

    // Content-addressed retrieval works and can write the wire plan out.
    let plan_path = temp_path("fetched.plan");
    let (code, out, err) = run(&[
        "fetch",
        "--addr",
        &addr,
        "--hash",
        &hash,
        "--out",
        plan_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains(&hash));
    let plan_bytes = std::fs::read(&plan_path).expect("plan file written");
    assert!(plan_bytes.starts_with(b"XHCW"));

    // A bogus hash is a runtime failure (404 from the daemon).
    let (code, _, err) = run(&["fetch", "--addr", &addr, "--hash", "00000000000000ff"]);
    assert_eq!(code, 1);
    assert!(err.contains("404"), "{err}");

    let _ = std::fs::remove_file(&xmap_path);
    let _ = std::fs::remove_file(&plan_path);
    let _ = std::fs::remove_dir_all(&store);
}
