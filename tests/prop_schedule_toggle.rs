//! Randomized tests for the scheduling and toggle-masking extensions
//! (deterministic seeded loops).

use xhc_prng::XhcRng;
use xhybrid::core::{
    mask_switches, pattern_order, schedule_hybrid, toggle_masking, PartitionEngine,
    ScheduleOptions, TogglePolicy,
};
use xhybrid::misr::XCancelConfig;
use xhybrid::scan::{AteConfig, CellId, ScanConfig, XMap, XMapBuilder};

fn random_xmap(rng: &mut XhcRng) -> XMap {
    let cfg = ScanConfig::uniform(3, 5);
    let mut b = XMapBuilder::new(cfg, 20);
    for _ in 0..rng.gen_range(0..100) {
        let cell = rng.gen_index(15);
        b.add_x(CellId::new(cell / 5, cell % 5), rng.gen_index(20))
            .unwrap();
    }
    b.finish()
}

#[test]
fn schedule_is_consistent() {
    let mut rng = XhcRng::seed_from_u64(0x5C01);
    for _ in 0..48 {
        let xmap = random_xmap(&mut rng);
        let cancel = XCancelConfig::new(10, 2);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let fast = schedule_hybrid(
            xmap.config(),
            xmap.num_patterns(),
            &outcome,
            cancel,
            AteConfig::new(32),
            ScheduleOptions::default(),
        );
        let slow = schedule_hybrid(
            xmap.config(),
            xmap.num_patterns(),
            &outcome,
            cancel,
            AteConfig::new(32),
            ScheduleOptions {
                overlap_mask_reload: false,
                overlap_select_transfer: false,
            },
        );
        // Overlapping control data never makes things slower; both are
        // at least the pure-shift baseline.
        assert!(fast.total_cycles() <= slow.total_cycles());
        assert!(fast.normalized() >= 1.0);
        assert_eq!(fast.mask_loads, outcome.partitions.len());
        // Halts are bounded by the leaked X count.
        assert!(fast.halts <= outcome.leaked_x() + 1);
    }
}

#[test]
fn pattern_order_is_a_permutation() {
    let mut rng = XhcRng::seed_from_u64(0x5C02);
    for _ in 0..48 {
        let xmap = random_xmap(&mut rng);
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        let order = pattern_order(&outcome);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..xmap.num_patterns()).collect::<Vec<_>>());
        // Partition-contiguous ordering loads each mask exactly once.
        assert_eq!(mask_switches(&order, &outcome), outcome.partitions.len());
        // Any order needs at least that many loads.
        let ascending: Vec<usize> = (0..xmap.num_patterns()).collect();
        assert!(mask_switches(&ascending, &outcome) >= outcome.partitions.len());
    }
}

#[test]
fn toggle_accounting_balances() {
    let mut rng = XhcRng::seed_from_u64(0x5C03);
    for _ in 0..48 {
        let xmap = random_xmap(&mut rng);
        let cancel = XCancelConfig::new(10, 2);
        for policy in [TogglePolicy::Conservative, TogglePolicy::Aggressive] {
            let r = toggle_masking(&xmap, cancel, policy);
            assert_eq!(r.masked_x + r.leaked_x, xmap.total_x());
            if policy == TogglePolicy::Conservative {
                assert_eq!(r.lost_observability, 0);
            }
        }
        // Aggressive masks at least as many X's as conservative.
        let safe = toggle_masking(&xmap, cancel, TogglePolicy::Conservative);
        let greedy = toggle_masking(&xmap, cancel, TogglePolicy::Aggressive);
        assert!(greedy.masked_x >= safe.masked_x);
    }
}

#[test]
fn toggle_control_bits_independent_of_x() {
    // Toggle control volume is a pure function of the topology and
    // pattern count — the interval *contents* change, not the bits.
    let mut rng = XhcRng::seed_from_u64(0x5C04);
    for _ in 0..48 {
        let xmap = random_xmap(&mut rng);
        let cancel = XCancelConfig::new(10, 2);
        let r = toggle_masking(&xmap, cancel, TogglePolicy::Conservative);
        let l = xmap.config().max_chain_len();
        let addr_bits = usize::BITS as usize - (l + 1).leading_zeros() as usize;
        let expect = (xmap.num_patterns() * xmap.config().num_chains() * 2 * addr_bits) as u128;
        assert_eq!(r.masking_bits, expect);
    }
}
