//! Regression guard for the Table-1 reproduction: the *shape* of the
//! result (who wins, by roughly what factor) must not silently drift as
//! the workload generator or the partitioning engine evolve.
//!
//! Runs at 1/15 scale so it is cheap enough for `cargo test`; the bands
//! are deliberately loose — they encode ordering and rough magnitude, not
//! exact values (see EXPERIMENTS.md for the full-scale numbers).

use xhybrid::core::{evaluate_hybrid, CellSelection};
use xhybrid::misr::XCancelConfig;
use xhybrid::workload::WorkloadSpec;

fn scaled(base: WorkloadSpec, scale: usize) -> WorkloadSpec {
    WorkloadSpec {
        total_cells: base.total_cells / scale,
        num_chains: (base.num_chains / scale).max(4),
        num_patterns: base.num_patterns / scale,
        ..base
    }
}

#[test]
fn ckt_b_shape_holds() {
    let xmap = scaled(WorkloadSpec::ckt_b(), 15).generate();
    let r = evaluate_hybrid(&xmap, XCancelConfig::paper_default(), CellSelection::First);
    // The hybrid must beat both baselines on a mid-density design.
    assert!(
        r.impv_over_masking > 2.0,
        "impv over [5] = {}",
        r.impv_over_masking
    );
    assert!(
        r.impv_over_canceling > 1.05,
        "impv over [12] = {}",
        r.impv_over_canceling
    );
    // A non-trivial share of X's is masked by a handful of partitions.
    assert!(r.outcome.partitions.len() >= 2);
    assert!(r.outcome.partitions.len() <= 12);
    // (Scale shifts the economics: at 1/15 the mask word is relatively
    // pricier, so the masked share lands below the full-scale ~58%.)
    let masked_frac = r.outcome.masked_x() as f64 / r.total_x as f64;
    assert!(masked_frac > 0.1, "masked fraction {masked_frac}");
    // Test time improves and stays above 1 (it is normalized to masking).
    assert!(r.time_proposed < r.time_canceling_only);
    assert!(r.time_proposed >= 1.0);
}

#[test]
fn ckt_a_low_density_keeps_canceling_competitive() {
    // The paper's CKT-A story: at 0.05% X-density the X-canceling MISR is
    // already cheap, so the hybrid's win over it is small (paper: 1.22x)
    // while the win over masking-only is enormous (paper: 283x).
    // At reduced scale the masking term shrinks faster, so we check the
    // ordering rather than magnitudes.
    let xmap = scaled(WorkloadSpec::ckt_a(), 15).generate();
    let r = evaluate_hybrid(&xmap, XCancelConfig::paper_default(), CellSelection::First);
    assert!(r.impv_over_masking > 10.0);
    // The hybrid never does *worse* than its own single-partition start,
    // which bounds how far behind canceling-only it can be.
    assert!(r.proposed_bits <= r.outcome.initial_cost.total() + 1e-9);
}

#[test]
fn higher_density_means_bigger_hybrid_win() {
    // Sweep density with the structure held fixed: the hybrid's advantage
    // over canceling-only must grow with X-density, the paper's central
    // trend across CKT-A -> CKT-B/C.
    let mut last = 0.0f64;
    for density in [0.001, 0.01, 0.03] {
        let spec = WorkloadSpec {
            total_cells: 2405,
            num_chains: 5,
            num_patterns: 600,
            x_density: density,
            correlated_fraction: 0.55,
            num_groups: 3,
            group_pattern_fraction: 0.77,
            x_cell_fraction: 0.108,
            seed: 0xB,
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        let r = evaluate_hybrid(&xmap, XCancelConfig::paper_default(), CellSelection::First);
        assert!(
            r.impv_over_canceling >= last - 0.05,
            "win shrank at density {density}: {} < {last}",
            r.impv_over_canceling
        );
        last = r.impv_over_canceling;
    }
    assert!(last > 1.1, "top-density win {last}");
}
