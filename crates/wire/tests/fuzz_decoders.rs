//! Fuzz-shaped robustness tests: every decoder is fed truncated and
//! bit-flipped buffers in a seeded loop and must return a typed
//! [`WireError`] — never panic, never hang, never allocate absurdly.

use xhc_core::PartitionEngine;
use xhc_misr::XCancelConfig;
use xhc_prng::XhcRng;
use xhc_scan::{CellId, ScanConfig, XMapBuilder};
use xhc_wire::{
    decode_certificate, decode_plan, decode_plan_request, decode_scan_config,
    decode_session_summary, decode_workload_spec, decode_xmap, encode_certificate, encode_plan,
    encode_plan_request, encode_scan_config, encode_session_summary, encode_workload_spec,
    encode_xmap, peek_kind, BlockCertificate, CancelBlockSummary, CancelSummary, PartitionAccount,
    PlanCertificate, PlanRequest,
};
use xhc_workload::WorkloadSpec;

/// A decoder under test, type-erased to `bytes -> ok?`.
type Decoder = (&'static str, fn(&[u8]) -> bool);

/// Every decoder under test.
fn decoders() -> Vec<Decoder> {
    vec![
        ("scan_config", |b| decode_scan_config(b).is_ok()),
        ("xmap", |b| decode_xmap(b).is_ok()),
        ("workload_spec", |b| decode_workload_spec(b).is_ok()),
        ("plan", |b| decode_plan(b).is_ok()),
        ("plan_request", |b| decode_plan_request(b).is_ok()),
        ("session_summary", |b| decode_session_summary(b).is_ok()),
        ("certificate", |b| decode_certificate(b).is_ok()),
        ("peek_kind", |b| peek_kind(b).is_ok()),
    ]
}

/// A small but fully-populated certificate (two partitions, one block)
/// as a mutation seed.
fn seed_certificate() -> PlanCertificate {
    PlanCertificate {
        plan_hash: 0xDEAD_BEEF,
        num_patterns: 12,
        num_partitions: 2,
        mask_bits: 8,
        total_x: 3,
        m: 8,
        q: 2,
        assignment: vec![0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1],
        partitions: vec![
            PartitionAccount {
                patterns: 6,
                masked_x: 2,
                leaked_x: 0,
                mask_cells: 1,
                cancel_bits: 0.0,
                histogram: vec![(2, 1)],
            },
            PartitionAccount {
                patterns: 6,
                masked_x: 0,
                leaked_x: 1,
                mask_cells: 0,
                cancel_bits: 8.0 * 2.0 / 6.0,
                histogram: vec![(1, 1)],
            },
        ],
        blocks: Some(vec![BlockCertificate {
            patterns: (0, 12),
            num_x: 1,
            rank: 1,
            pivot_cols: vec![0],
            combinations: 2,
            control_bits: 16,
            dependency: vec![1, 0, 0, 0, 0, 0, 0, 0],
        }]),
    }
}

/// One valid buffer of every artifact kind, as mutation seeds.
fn seed_buffers() -> Vec<Vec<u8>> {
    let config = ScanConfig::new(vec![3, 1, 4]);
    let mut b = XMapBuilder::new(config.clone(), 12);
    b.add_x(CellId::new(0, 0), 0).unwrap();
    b.add_x(CellId::new(0, 0), 7).unwrap();
    b.add_x(CellId::new(2, 3), 11).unwrap();
    let xmap = b.finish();
    let outcome = PartitionEngine::new(XCancelConfig::new(8, 2)).run(&xmap);
    let summary = CancelSummary {
        halts: 2,
        total_control_bits: 48,
        total_x: 3,
        blocks: vec![CancelBlockSummary {
            patterns: (0, 12),
            num_x: 3,
            control_bits: 48,
            combinations: 1,
        }],
    };
    let request = PlanRequest {
        m: 8,
        q: 2,
        options: xhc_core::PlanOptions {
            backend: xhc_core::BackendId::XCode,
            ..xhc_core::PlanOptions::default()
        },
        artifact: encode_xmap(&xmap),
    };
    vec![
        encode_scan_config(&config),
        encode_xmap(&xmap),
        encode_workload_spec(&WorkloadSpec::default()),
        encode_plan(&outcome, xmap.num_patterns()),
        encode_session_summary(&summary),
        encode_certificate(&seed_certificate()),
        encode_plan_request(&request),
    ]
}

#[test]
fn truncations_never_panic() {
    for seed in seed_buffers() {
        for cut in 0..seed.len() {
            for (name, decode) in decoders() {
                // Either a clean decode (only at full length for the
                // matching kind) or a typed error — the call returning at
                // all is the property under test.
                let _ok = decode(&seed[..cut]);
                let _ = name;
            }
        }
    }
}

#[test]
fn bit_flips_never_panic() {
    let mut rng = XhcRng::seed_from_u64(0xF1AB_0001);
    let seeds = seed_buffers();
    for round in 0..400 {
        let seed = &seeds[round % seeds.len()];
        let mut buf = seed.clone();
        // Flip 1..=8 random bits.
        let flips = 1 + rng.gen_index(8);
        for _ in 0..flips {
            let byte = rng.gen_index(buf.len());
            let bit = rng.gen_index(8);
            buf[byte] ^= 1 << bit;
        }
        for (_, decode) in decoders() {
            let _ = decode(&buf);
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = XhcRng::seed_from_u64(0xF1AB_0002);
    for _ in 0..200 {
        let len = rng.gen_index(256);
        let mut buf = vec![0u8; len];
        for byte in &mut buf {
            *byte = (rng.next_u64() & 0xFF) as u8;
        }
        // Half the time, plant a valid header so parsing reaches the
        // section table and payload logic.
        if rng.gen_bool(0.5) && buf.len() >= 8 {
            buf[..4].copy_from_slice(b"XHCW");
            buf[4..6].copy_from_slice(&1u16.to_le_bytes());
            let kind = 1 + (rng.gen_index(7) as u16);
            buf[6..8].copy_from_slice(&kind.to_le_bytes());
        }
        for (_, decode) in decoders() {
            let _ = decode(&buf);
        }
    }
}

#[test]
fn plan_request_backend_byte_sweep() {
    // The backend byte is the last byte of the params payload. Sweep it
    // over every value: the five pinned codes decode to their backend,
    // everything else is a typed error — never a panic.
    let request = PlanRequest {
        m: 8,
        q: 2,
        options: xhc_core::PlanOptions::default(),
        artifact: encode_xmap(&{
            let mut b = XMapBuilder::new(ScanConfig::uniform(2, 2), 4);
            b.add_x(CellId::new(0, 0), 1).unwrap();
            b.finish()
        }),
    };
    let bytes = encode_plan_request(&request);
    // Params payload: m(8) q(8) strategy(1) policy(1) seed(8) threads(8)
    // flag(1) max_rounds(8) cost_stop(1) backend(1); it is the first
    // section, after the 12-byte header and two 12-byte table entries.
    let backend_off = 12 + 2 * 12 + 44;
    assert_eq!(bytes[backend_off], 0);
    for value in 0..=255u8 {
        let mut buf = bytes.clone();
        buf[backend_off] = value;
        match decode_plan_request(&buf) {
            Ok(back) => {
                let code = xhc_wire::backend_code(back.options.backend);
                assert_eq!(code, value, "decoded backend must match the byte");
            }
            Err(err) => {
                assert!(value > 4, "pinned code {value} must decode: {err}");
            }
        }
    }
}

#[test]
fn truncated_buffers_always_fail() {
    // Sharper than "no panic": a strict prefix of a valid buffer must
    // never decode successfully (the length accounting has no slack).
    let config = ScanConfig::new(vec![3, 1, 4]);
    let bytes = encode_scan_config(&config);
    for cut in 0..bytes.len() {
        assert!(
            decode_scan_config(&bytes[..cut]).is_err(),
            "prefix of length {cut} decoded"
        );
    }
}
