//! Property tests: random artifacts round-trip through the wire format,
//! the wire and `xmap v1` text formats agree, and the text reader's
//! error paths are pinned.

use xhc_core::PartitionEngine;
use xhc_misr::XCancelConfig;
use xhc_prng::XhcRng;
use xhc_scan::{read_xmap, write_xmap, ReadXMapError, ScanConfig, XMap, XMapBuilder};
use xhc_wire::{
    content_hash, decode_plan, decode_scan_config, decode_workload_spec, decode_xmap, encode_plan,
    encode_scan_config, encode_workload_spec, encode_xmap,
};
use xhc_workload::WorkloadSpec;

/// A random but structurally valid X map.
fn random_xmap(rng: &mut XhcRng) -> XMap {
    let chains = 1 + ((rng.next_u64() as u32) % 6) as usize;
    let lengths: Vec<usize> = (0..chains)
        .map(|_| 1 + ((rng.next_u64() as u32) % 8) as usize)
        .collect();
    let config = ScanConfig::new(lengths);
    let patterns = 1 + ((rng.next_u64() as u32) % 90) as usize;
    let mut b = XMapBuilder::new(config.clone(), patterns);
    for idx in 0..config.total_cells() {
        if rng.gen_index(3) != 0 {
            continue;
        }
        let cell = config.cell_at(idx);
        for p in 0..patterns {
            if rng.gen_index(4) == 0 {
                b.add_x(cell, p).unwrap();
            }
        }
    }
    b.finish()
}

#[test]
fn random_xmaps_roundtrip_and_hash_stably() {
    let mut rng = XhcRng::seed_from_u64(0x5eed_0001);
    for _ in 0..60 {
        let xmap = random_xmap(&mut rng);
        let bytes = encode_xmap(&xmap);
        let back = decode_xmap(&bytes).expect("valid encoding must decode");
        assert_eq!(back, xmap);
        // Canonical bytes: re-encoding the decoded artifact is identical,
        // so the content address is stable.
        let bytes2 = encode_xmap(&back);
        assert_eq!(bytes, bytes2);
        assert_eq!(content_hash(&bytes), content_hash(&bytes2));
    }
}

#[test]
fn text_and_wire_formats_agree() {
    let mut rng = XhcRng::seed_from_u64(0x5eed_0002);
    for _ in 0..40 {
        let xmap = random_xmap(&mut rng);
        // text -> XMap -> wire must equal XMap -> wire directly.
        let mut text = Vec::new();
        write_xmap(&mut text, &xmap).unwrap();
        let from_text = read_xmap(&text[..]).expect("writer output must parse");
        assert_eq!(from_text, xmap);
        assert_eq!(encode_xmap(&from_text), encode_xmap(&xmap));
        // wire -> XMap -> text -> XMap closes the loop.
        let from_wire = decode_xmap(&encode_xmap(&xmap)).unwrap();
        let mut text2 = Vec::new();
        write_xmap(&mut text2, &from_wire).unwrap();
        assert_eq!(read_xmap(&text2[..]).unwrap(), xmap);
    }
}

#[test]
fn random_scan_configs_roundtrip() {
    let mut rng = XhcRng::seed_from_u64(0x5eed_0003);
    for _ in 0..50 {
        let chains = 1 + ((rng.next_u64() as u32) % 20) as usize;
        let lengths: Vec<usize> = (0..chains)
            .map(|_| 1 + ((rng.next_u64() as u32) % 100) as usize)
            .collect();
        let config = ScanConfig::new(lengths);
        assert_eq!(
            decode_scan_config(&encode_scan_config(&config)).unwrap(),
            config
        );
    }
}

#[test]
fn random_workload_specs_roundtrip() {
    let mut rng = XhcRng::seed_from_u64(0x5eed_0004);
    for _ in 0..50 {
        let mut spec = match (rng.next_u64() as u32) % 4 {
            0 => WorkloadSpec::default(),
            1 => WorkloadSpec::ckt_a(),
            2 => WorkloadSpec::ckt_b(),
            _ => WorkloadSpec::ckt_c(),
        };
        spec.seed = rng.next_u64();
        spec.num_patterns = 1 + ((rng.next_u64() as u32) % 500) as usize;
        spec.x_density = f64::from((rng.next_u64() % 1000) as u32) / 1000.0;
        let back = decode_workload_spec(&encode_workload_spec(&spec)).unwrap();
        assert_eq!(back, spec);
    }
}

#[test]
fn plans_roundtrip_for_random_workloads() {
    let mut rng = XhcRng::seed_from_u64(0x5eed_0005);
    for _ in 0..12 {
        let xmap = random_xmap(&mut rng);
        let outcome = PartitionEngine::new(XCancelConfig::new(16, 3)).run(&xmap);
        let bytes = encode_plan(&outcome, xmap.num_patterns());
        let (back, patterns) = decode_plan(&bytes).unwrap();
        assert_eq!(patterns, xmap.num_patterns());
        assert_eq!(back, outcome);
        assert_eq!(encode_plan(&back, patterns), bytes);
    }
}

#[test]
fn plan_requests_roundtrip_for_every_backend() {
    use xhc_core::{BackendId, CellSelection, PlanOptions, SplitStrategy};
    use xhc_wire::{decode_plan_request, encode_plan_request, PlanRequest};
    let mut rng = XhcRng::seed_from_u64(0x5eed_0006);
    for round in 0..40 {
        let backend = BackendId::ALL[round % BackendId::ALL.len()];
        let options = PlanOptions {
            strategy: if rng.gen_bool(0.5) {
                SplitStrategy::BestCost
            } else {
                SplitStrategy::LargestClass
            },
            policy: match rng.gen_index(3) {
                0 => CellSelection::First,
                1 => CellSelection::Seeded(rng.next_u64()),
                _ => CellSelection::GlobalMaxX,
            },
            threads: rng.gen_index(9),
            max_rounds: if rng.gen_bool(0.5) {
                Some(rng.gen_index(20))
            } else {
                None
            },
            cost_stop: rng.gen_bool(0.5),
            backend,
        };
        let request = PlanRequest {
            m: 8 + rng.gen_index(60),
            q: 1 + rng.gen_index(6),
            options,
            artifact: encode_xmap(&random_xmap(&mut rng)),
        };
        let bytes = encode_plan_request(&request);
        let back = decode_plan_request(&bytes).expect("valid request must decode");
        assert_eq!(back, request);
        assert_eq!(encode_plan_request(&back), bytes, "canonical bytes");
    }
}

// ---------------------------------------------------------------------
// `xmap v1` text reader error paths
// ---------------------------------------------------------------------

#[test]
fn text_reader_rejects_bad_header() {
    for input in ["", "xmap v2\nchains 3\npatterns 4\n", "not a header\n"] {
        match read_xmap(input.as_bytes()) {
            Err(ReadXMapError::BadHeader(_)) => {}
            other => panic!("expected BadHeader for {input:?}, got {other:?}"),
        }
    }
}

#[test]
fn text_reader_rejects_bad_lines() {
    let cases = [
        // Unparseable chain length.
        "xmap v1\nchains three\npatterns 4\n",
        // Unparseable pattern count.
        "xmap v1\nchains 3\npatterns many\n",
        // Malformed x line (no colon).
        "xmap v1\nchains 3\npatterns 4\nx 0 0 1\n",
        // Out-of-range cell index.
        "xmap v1\nchains 3\npatterns 4\nx 99 : 0\n",
        // Out-of-range pattern index.
        "xmap v1\nchains 3\npatterns 4\nx 0 : 9\n",
        // Unknown directive.
        "xmap v1\nchains 3\npatterns 4\nbogus line\n",
    ];
    for input in cases {
        match read_xmap(input.as_bytes()) {
            Err(ReadXMapError::BadLine { line, .. }) => {
                assert!(line >= 2, "line number should point past the header");
            }
            other => panic!("expected BadLine for {input:?}, got {other:?}"),
        }
    }
}

#[test]
fn text_reader_rejects_missing_declarations() {
    // `x` lines before declarations are BadLine; a file that simply ends
    // without declarations is MissingDeclaration.
    match read_xmap(&b"xmap v1\npatterns 4\n"[..]) {
        Err(ReadXMapError::MissingDeclaration(what)) => assert_eq!(what, "chains"),
        other => panic!("expected MissingDeclaration(chains), got {other:?}"),
    }
    match read_xmap(&b"xmap v1\nchains 3\n"[..]) {
        Err(ReadXMapError::MissingDeclaration(what)) => assert_eq!(what, "patterns"),
        other => panic!("expected MissingDeclaration(patterns), got {other:?}"),
    }
}
