//! `xhc-wire`: the versioned binary wire format and content addressing
//! for `xhybrid` artifacts.
//!
//! Every artifact the workspace exchanges across a process boundary — X
//! maps, scan topologies, workload specs, partition plans and
//! cancel-session summaries — has a canonical little-endian binary
//! encoding here, so the planning daemon (`xhc-serve`), its clients and
//! the offline CLI all speak one format with zero external dependencies.
//!
//! # Layout
//!
//! ```text
//! +--------+---------+------+---------------+
//! | "XHCW" | version | kind | section count |   12-byte header
//! | 4 B    | u16     | u16  | u32           |
//! +--------+---------+------+---------------+
//! | tag u32 | len u64 |  ...                |   section table
//! +---------+---------+                         (12 B per entry)
//! | payload bytes, concatenated in table order |
//! +--------------------------------------------+
//! ```
//!
//! All integers are little-endian; every variable-length field is
//! length-prefixed. Encoders emit sections in ascending tag order with no
//! duplicates, which makes the encoding *canonical*: one artifact, one
//! byte string, one [`content_hash`]. Decoders are strict — any deviation
//! (bad magic, unknown version/kind/section, duplicate or missing
//! sections, truncation, trailing bytes, out-of-range indices, nonzero
//! tail bits) returns a typed [`WireError`]; they never panic on
//! untrusted input (the fuzz suite feeds them truncated and bit-flipped
//! buffers).
//!
//! # Content addressing
//!
//! [`content_hash`] folds a byte string through `xhc-prng`'s SplitMix64
//! finalizer ([`xhc_prng::splitmix64_mix`]) into a 64-bit digest rendered
//! as 16 hex characters ([`hash_hex`]). [`plan_request_hash`] extends it
//! with the planning parameters `(m, q, strategy)` — that composite is
//! the cache key of `xhc-serve`'s content-addressed plan store (see
//! `DESIGN.md`).
//!
//! # Examples
//!
//! ```
//! use xhc_scan::{CellId, ScanConfig, XMapBuilder};
//! use xhc_wire::{decode_xmap, encode_xmap, peek_kind, Kind};
//!
//! let mut b = XMapBuilder::new(ScanConfig::uniform(5, 3), 8);
//! b.add_x(CellId::new(0, 0), 3).unwrap();
//! let xmap = b.finish();
//!
//! let bytes = encode_xmap(&xmap);
//! assert_eq!(peek_kind(&bytes).unwrap(), Kind::XMap);
//! assert_eq!(decode_xmap(&bytes).unwrap(), xmap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod cert;
mod codec;
mod hash;

pub use cert::{
    decode_certificate, encode_certificate, BlockCertificate, PartitionAccount, PlanCertificate,
};
pub use codec::{
    backend_code, backend_from_code, decode_plan, decode_plan_request, decode_scan_config,
    decode_session_summary, decode_workload_spec, decode_xmap, encode_plan, encode_plan_request,
    encode_scan_config, encode_session_summary, encode_workload_spec, encode_xmap, policy_code,
    policy_from_code, policy_seed, strategy_code, strategy_from_code, CancelBlockSummary,
    CancelSummary, PlanRequest,
};
pub use hash::{
    content_hash, hash_hex, parse_hash_hex, plan_request_hash, plan_request_hash_with_options,
};

use std::fmt;

/// The 4-byte magic every wire buffer starts with.
pub const MAGIC: [u8; 4] = *b"XHCW";

/// The format version this crate encodes and accepts.
pub const VERSION: u16 = 1;

/// What kind of artifact a wire buffer carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A scan-chain topology ([`xhc_scan::ScanConfig`]).
    ScanConfig,
    /// A sparse X-location map ([`xhc_scan::XMap`]).
    XMap,
    /// A synthetic workload spec ([`xhc_workload::WorkloadSpec`]).
    WorkloadSpec,
    /// A partition plan ([`xhc_core::PartitionOutcome`]).
    PartitionPlan,
    /// A cancel-session summary ([`CancelSummary`]).
    CancelSummary,
    /// A fully-specified planning request ([`PlanRequest`]): cancel
    /// parameters, engine options and the nested artifact to plan over.
    PlanRequest,
    /// A plan certificate ([`PlanCertificate`]): the accounting witness a
    /// partition plan travels with, content-hash linked to its plan and
    /// checkable without the engine (see `xhc-verify`).
    PlanCertificate,
}

impl Kind {
    pub(crate) fn code(self) -> u16 {
        match self {
            Kind::ScanConfig => 1,
            Kind::XMap => 2,
            Kind::WorkloadSpec => 3,
            Kind::PartitionPlan => 4,
            Kind::CancelSummary => 5,
            Kind::PlanRequest => 6,
            Kind::PlanCertificate => 7,
        }
    }

    pub(crate) fn from_code(code: u16) -> Option<Kind> {
        match code {
            1 => Some(Kind::ScanConfig),
            2 => Some(Kind::XMap),
            3 => Some(Kind::WorkloadSpec),
            4 => Some(Kind::PartitionPlan),
            5 => Some(Kind::CancelSummary),
            6 => Some(Kind::PlanRequest),
            7 => Some(Kind::PlanCertificate),
            _ => None,
        }
    }

    /// The stable lowercase artifact name (used in error messages and the
    /// daemon's content negotiation).
    pub fn name(self) -> &'static str {
        match self {
            Kind::ScanConfig => "scan-config",
            Kind::XMap => "xmap",
            Kind::WorkloadSpec => "workload-spec",
            Kind::PartitionPlan => "partition-plan",
            Kind::CancelSummary => "cancel-summary",
            Kind::PlanRequest => "plan-request",
            Kind::PlanCertificate => "plan-certificate",
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every way a wire buffer can fail to decode.
///
/// Decoders return these instead of panicking; the variants are precise
/// enough for a server to map onto HTTP status codes and for tests to
/// assert exact failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before a required field.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        got: [u8; 4],
    },
    /// The version field is not [`VERSION`].
    UnsupportedVersion {
        /// The version found.
        got: u16,
    },
    /// The kind field maps to no known artifact kind.
    UnknownKind {
        /// The kind code found.
        got: u16,
    },
    /// The buffer carries a different artifact than the decoder expects.
    WrongKind {
        /// The kind the decoder was asked for.
        expected: Kind,
        /// The kind the buffer declares.
        got: Kind,
    },
    /// A section tag this version does not define.
    UnknownSection {
        /// The offending tag.
        tag: u32,
    },
    /// The same section tag appears twice (or tags are not ascending, so
    /// the encoding is non-canonical).
    DuplicateSection {
        /// The offending tag.
        tag: u32,
    },
    /// A section the artifact kind requires is absent.
    MissingSection {
        /// The missing tag.
        tag: u32,
    },
    /// A section payload is shorter or longer than its contents require.
    BadSectionLength {
        /// The offending tag.
        tag: u32,
    },
    /// Bytes remain after the last declared section.
    TrailingBytes {
        /// How many.
        count: usize,
    },
    /// A structurally-valid buffer with semantically-invalid contents
    /// (out-of-range index, bad fraction, nonzero tail bits, ...).
    Malformed {
        /// Which artifact/field the check belongs to.
        context: &'static str,
        /// What is wrong.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated buffer: need {need} bytes, have {have}")
            }
            WireError::BadMagic { got } => {
                write!(f, "bad magic {got:02x?}, expected \"XHCW\"")
            }
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got}, this build speaks {VERSION}"
                )
            }
            WireError::UnknownKind { got } => write!(f, "unknown artifact kind code {got}"),
            WireError::WrongKind { expected, got } => {
                write!(f, "expected a {expected} artifact, got {got}")
            }
            WireError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
            WireError::DuplicateSection { tag } => {
                write!(f, "duplicate or out-of-order section tag {tag}")
            }
            WireError::MissingSection { tag } => write!(f, "missing required section tag {tag}"),
            WireError::BadSectionLength { tag } => {
                write!(f, "section tag {tag} length disagrees with its contents")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the last section")
            }
            WireError::Malformed { context, message } => {
                write!(f, "malformed {context}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Reads the artifact kind of a wire buffer without decoding the body.
///
/// # Errors
///
/// Returns [`WireError`] if the header is truncated, the magic or version
/// is wrong, or the kind code is unknown.
pub fn peek_kind(bytes: &[u8]) -> Result<Kind, WireError> {
    let mut r = buf::Reader::new(bytes);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(magic);
        return Err(WireError::BadMagic { got });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let kind = r.u16()?;
    Kind::from_code(kind).ok_or(WireError::UnknownKind { got: kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [
            Kind::ScanConfig,
            Kind::XMap,
            Kind::WorkloadSpec,
            Kind::PartitionPlan,
            Kind::CancelSummary,
            Kind::PlanRequest,
            Kind::PlanCertificate,
        ] {
            assert_eq!(Kind::from_code(kind.code()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(Kind::from_code(0), None);
        assert_eq!(Kind::from_code(99), None);
    }

    #[test]
    fn peek_kind_rejects_garbage() {
        assert!(matches!(
            peek_kind(b"XHC"),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            peek_kind(b"NOPE\x01\x00\x02\x00"),
            Err(WireError::BadMagic { .. })
        ));
        assert!(matches!(
            peek_kind(b"XHCW\x63\x00\x02\x00"),
            Err(WireError::UnsupportedVersion { got: 0x63 })
        ));
        assert!(matches!(
            peek_kind(b"XHCW\x01\x00\x63\x00"),
            Err(WireError::UnknownKind { got: 0x63 })
        ));
    }

    #[test]
    fn errors_render() {
        let errors = [
            WireError::Truncated { need: 8, have: 3 },
            WireError::BadMagic { got: *b"NOPE" },
            WireError::UnsupportedVersion { got: 7 },
            WireError::UnknownKind { got: 9 },
            WireError::WrongKind {
                expected: Kind::XMap,
                got: Kind::PartitionPlan,
            },
            WireError::UnknownSection { tag: 42 },
            WireError::DuplicateSection { tag: 1 },
            WireError::MissingSection { tag: 2 },
            WireError::BadSectionLength { tag: 3 },
            WireError::TrailingBytes { count: 4 },
            WireError::Malformed {
                context: "xmap",
                message: "cell out of range".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
