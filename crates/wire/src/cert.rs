//! The plan-certificate artifact ([`Kind::PlanCertificate`]).
//!
//! A certificate is the accounting *witness* a partition plan travels
//! with: the pattern→partition assignment (a one-pass cover/disjointness
//! witness), per-partition X-class histograms and control-bit accounting
//! per the paper's cost model, and — optionally — one Gauss rank
//! certificate per cancel block (claimed rank, pivot columns and the raw
//! dependency matrix). It is linked to its plan by [`content_hash`] over
//! the plan's wire bytes, so a certificate can never be replayed against
//! a different plan.
//!
//! The independent checker lives in `xhc-verify`; this module only
//! defines the data and its canonical encoding. The decoder is strict
//! and panic-free like every other decoder in this crate: structural
//! canonicality (section order, ascending histograms and pivots, zero
//! tail bits, alloc-capped counts) is enforced here, while the semantic
//! claims (does the accounting match the plan and the X map?) are the
//! checker's job — a decoded certificate is well-formed, not yet *true*.

use crate::buf::{expect_drained, ArtifactWriter, PutLe, Reader, Sections};
use crate::codec::check_batch;
use crate::{Kind, WireError};

#[allow(unused_imports)] // rustdoc link target
use crate::hash::content_hash;

// Section tags, continuing the shared numbering in `codec.rs` (known
// tag sets are per-kind, but unique values keep dumps unambiguous).
const SEC_CERT_META: u32 = 13;
const SEC_CERT_ASSIGN: u32 = 14;
const SEC_CERT_PARTS: u32 = 15;
const SEC_CERT_BLOCKS: u32 = 16;

const CTX: &str = "plan-certificate";

/// Per-partition accounting claims: cardinality, the X-class histogram
/// restricted to the partition, mask/cancel splits of its X's, and the
/// fractional cancel bits its leak contributes.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionAccount {
    /// Patterns in the partition (cardinality of its pattern set).
    pub patterns: usize,
    /// X's removed by the partition's mask word.
    pub masked_x: usize,
    /// X's left for the X-canceling MISR.
    pub leaked_x: usize,
    /// Cells the partition's mask word masks.
    pub mask_cells: usize,
    /// `m · q · leaked_x / (m − q)` for this partition's leak.
    pub cancel_bits: f64,
    /// X-class histogram: `(x_count, cells)` pairs, strictly ascending by
    /// `x_count >= 1`, counting cells whose X set restricted to the
    /// partition has exactly `x_count` members.
    pub histogram: Vec<(usize, usize)>,
}

/// A Gauss rank certificate for one cancel block: the raw dependency
/// matrix plus the claimed rank and pivot columns, so a checker with its
/// own elimination can confirm the block's control-bit accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCertificate {
    /// Half-open pattern range `[start, end)` of the block.
    pub patterns: (usize, usize),
    /// X's accumulated in the block (columns of the dependency matrix).
    pub num_x: usize,
    /// Claimed GF(2) rank of the dependency matrix.
    pub rank: usize,
    /// Claimed pivot columns, strictly ascending, one per unit of rank.
    pub pivot_cols: Vec<usize>,
    /// X-free combinations extracted at the halt (`min(m − rank, q)`).
    pub combinations: usize,
    /// Select bits consumed: `m` per combination.
    pub control_bits: usize,
    /// The dependency matrix, row-major: `m` rows of
    /// `num_x.div_ceil(64)` little-endian words each (column `c` of row
    /// `r` is bit `c % 64` of word `r * words_per_row + c / 64`).
    pub dependency: Vec<u64>,
}

impl BlockCertificate {
    /// Words per dependency row (`num_x.div_ceil(64)`).
    pub fn words_per_row(&self) -> usize {
        self.num_x.div_ceil(64)
    }
}

/// The certificate a partition plan travels with.
///
/// `assignment[p]` names the partition of pattern `p`; a checker walks it
/// once to confirm the plan's pattern sets are a disjoint cover. The
/// per-partition accounts and the optional per-block rank certificates
/// carry the cost-model claims.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCertificate {
    /// [`content_hash`] of the certified plan's wire bytes.
    pub plan_hash: u64,
    /// Pattern universe of the plan.
    pub num_patterns: usize,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Mask-word width (`ScanConfig::total_cells`).
    pub mask_bits: usize,
    /// Total X's in the certified X map.
    pub total_x: usize,
    /// MISR length of the cancel configuration.
    pub m: usize,
    /// X-cancel quotient (`0 < q < m`).
    pub q: usize,
    /// Pattern → partition index, one entry per pattern.
    pub assignment: Vec<u32>,
    /// Per-partition accounting, in plan partition order.
    pub partitions: Vec<PartitionAccount>,
    /// Per-block rank certificates, when a cancel session was certified.
    pub blocks: Option<Vec<BlockCertificate>>,
}

/// Encodes a plan certificate canonically.
pub fn encode_certificate(cert: &PlanCertificate) -> Vec<u8> {
    let mut w = ArtifactWriter::new(Kind::PlanCertificate);

    let mut meta = Vec::with_capacity(56);
    meta.put_u64(cert.plan_hash);
    meta.put_usize(cert.num_patterns);
    meta.put_usize(cert.num_partitions);
    meta.put_usize(cert.mask_bits);
    meta.put_usize(cert.total_x);
    meta.put_usize(cert.m);
    meta.put_usize(cert.q);
    w.section(SEC_CERT_META, meta);

    let mut assign = Vec::with_capacity(4 * cert.assignment.len());
    for &part in &cert.assignment {
        assign.put_u32(part);
    }
    w.section(SEC_CERT_ASSIGN, assign);

    let mut parts = Vec::new();
    for acc in &cert.partitions {
        parts.put_usize(acc.patterns);
        parts.put_usize(acc.masked_x);
        parts.put_usize(acc.leaked_x);
        parts.put_usize(acc.mask_cells);
        parts.put_f64(acc.cancel_bits);
        parts.put_usize(acc.histogram.len());
        for &(x_count, cells) in &acc.histogram {
            parts.put_usize(x_count);
            parts.put_usize(cells);
        }
    }
    w.section(SEC_CERT_PARTS, parts);

    if let Some(blocks) = &cert.blocks {
        let mut p = Vec::new();
        p.put_usize(blocks.len());
        for b in blocks {
            p.put_usize(b.patterns.0);
            p.put_usize(b.patterns.1);
            p.put_usize(b.num_x);
            p.put_usize(b.rank);
            p.put_usize(b.combinations);
            p.put_usize(b.control_bits);
            for &col in &b.pivot_cols {
                p.put_usize(col);
            }
            for &word in &b.dependency {
                p.put_u64(word);
            }
        }
        w.section(SEC_CERT_BLOCKS, p);
    }
    w.finish()
}

fn malformed(message: String) -> WireError {
    WireError::Malformed {
        context: CTX,
        message,
    }
}

/// Decodes a plan certificate.
///
/// Enforces structural canonicality: in-range assignment entries,
/// strictly-ascending non-empty histograms and pivot lists, zero
/// dependency tail bits, and counts bounded by bytes actually present
/// (an untrusted count never drives an allocation). The semantic claims
/// are validated by `xhc-verify`, not here.
///
/// # Errors
///
/// Returns [`WireError`] on any structural defect.
pub fn decode_certificate(bytes: &[u8]) -> Result<PlanCertificate, WireError> {
    let sections = Sections::parse(
        bytes,
        Kind::PlanCertificate,
        &[
            SEC_CERT_META,
            SEC_CERT_ASSIGN,
            SEC_CERT_PARTS,
            SEC_CERT_BLOCKS,
        ],
    )?;

    let mut meta = Reader::new(sections.require(SEC_CERT_META)?);
    let plan_hash = meta.u64()?;
    let num_patterns = meta.length("pattern count")?;
    let num_partitions = meta.length("partition count")?;
    let mask_bits = meta.length("mask width")?;
    let total_x = meta.length("total x")?;
    let m = meta.length("misr size")?;
    let q = meta.length("cancel q")?;
    expect_drained(&meta, SEC_CERT_META)?;
    if num_patterns == 0 || num_partitions == 0 {
        return Err(malformed(
            "need at least one pattern and one partition".into(),
        ));
    }
    if q == 0 || q >= m {
        return Err(malformed(format!("need 0 < q < m, got m={m} q={q}")));
    }

    let mut assign_r = Reader::new(sections.require(SEC_CERT_ASSIGN)?);
    check_batch(&assign_r, num_patterns, 4, CTX)?;
    let mut assignment = Vec::with_capacity(num_patterns.min(1 << 20));
    for p in 0..num_patterns {
        let part = assign_r.u32()?;
        if part as usize >= num_partitions {
            return Err(malformed(format!(
                "pattern {p} assigned to partition {part} of {num_partitions}"
            )));
        }
        assignment.push(part);
    }
    expect_drained(&assign_r, SEC_CERT_ASSIGN)?;

    let mut parts_r = Reader::new(sections.require(SEC_CERT_PARTS)?);
    check_batch(&parts_r, num_partitions, 48, CTX)?;
    let mut partitions = Vec::with_capacity(num_partitions.min(1 << 20));
    for i in 0..num_partitions {
        let patterns = parts_r.length("partition cardinality")?;
        let masked_x = parts_r.length("masked x")?;
        let leaked_x = parts_r.length("leaked x")?;
        let mask_cells = parts_r.length("mask cells")?;
        let cancel_bits = parts_r.f64()?;
        if !cancel_bits.is_finite() || cancel_bits < 0.0 {
            return Err(malformed(format!(
                "partition {i} cancel_bits must be finite and non-negative, got {cancel_bits}"
            )));
        }
        let hist_len = parts_r.length("histogram length")?;
        check_batch(&parts_r, hist_len, 16, CTX)?;
        let mut histogram = Vec::with_capacity(hist_len.min(1 << 20));
        let mut prev = 0usize;
        for _ in 0..hist_len {
            let x_count = parts_r.length("histogram x count")?;
            let cells = parts_r.length("histogram cells")?;
            if x_count == 0 || cells == 0 {
                return Err(malformed(format!(
                    "partition {i} histogram entries must have x_count >= 1 and cells >= 1"
                )));
            }
            if x_count <= prev {
                return Err(malformed(format!(
                    "partition {i} histogram must be strictly ascending at x_count {x_count}"
                )));
            }
            prev = x_count;
            histogram.push((x_count, cells));
        }
        partitions.push(PartitionAccount {
            patterns,
            masked_x,
            leaked_x,
            mask_cells,
            cancel_bits,
            histogram,
        });
    }
    expect_drained(&parts_r, SEC_CERT_PARTS)?;

    let blocks = match sections.get(SEC_CERT_BLOCKS) {
        None => None,
        Some(payload) => {
            let mut r = Reader::new(payload);
            let count = r.length("block count")?;
            check_batch(&r, count, 48, CTX)?;
            let mut blocks = Vec::with_capacity(count.min(1 << 20));
            for i in 0..count {
                let start = r.length("block start")?;
                let end = r.length("block end")?;
                if start > end {
                    return Err(malformed(format!(
                        "block {i} range [{start}, {end}) is inverted"
                    )));
                }
                let num_x = r.length("block x count")?;
                let rank = r.length("block rank")?;
                let combinations = r.length("block combinations")?;
                let control_bits = r.length("block control bits")?;
                if rank > m.min(num_x) {
                    return Err(malformed(format!(
                        "block {i} rank {rank} exceeds min(m={m}, num_x={num_x})"
                    )));
                }
                check_batch(&r, rank, 8, CTX)?;
                let mut pivot_cols = Vec::with_capacity(rank.min(1 << 20));
                let mut prev: Option<usize> = None;
                for _ in 0..rank {
                    let col = r.length("pivot column")?;
                    if col >= num_x {
                        return Err(malformed(format!(
                            "block {i} pivot column {col} out of range for {num_x} X's"
                        )));
                    }
                    if prev.is_some_and(|p| p >= col) {
                        return Err(malformed(format!(
                            "block {i} pivot columns must be strictly ascending at {col}"
                        )));
                    }
                    prev = Some(col);
                    pivot_cols.push(col);
                }
                let words_per_row = num_x.div_ceil(64);
                let total_words = m.checked_mul(words_per_row).ok_or_else(|| {
                    malformed(format!(
                        "block {i} dependency {m} x {words_per_row} words overflows"
                    ))
                })?;
                check_batch(&r, total_words, 8, CTX)?;
                let mut dependency = Vec::with_capacity(total_words.min(1 << 20));
                for _ in 0..total_words {
                    dependency.push(r.u64()?);
                }
                let tail = num_x % 64;
                if tail != 0 && words_per_row > 0 {
                    for row in 0..m {
                        let last = dependency[row * words_per_row + words_per_row - 1];
                        if last >> tail != 0 {
                            return Err(malformed(format!(
                                "block {i} dependency row {row} has nonzero tail bits"
                            )));
                        }
                    }
                }
                blocks.push(BlockCertificate {
                    patterns: (start, end),
                    num_x,
                    rank,
                    pivot_cols,
                    combinations,
                    control_bits,
                    dependency,
                });
            }
            expect_drained(&r, SEC_CERT_BLOCKS)?;
            Some(blocks)
        }
    };

    Ok(PlanCertificate {
        plan_hash,
        num_patterns,
        num_partitions,
        mask_bits,
        total_x,
        m,
        q,
        assignment,
        partitions,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peek_kind;

    fn sample_cert(blocks: bool) -> PlanCertificate {
        PlanCertificate {
            plan_hash: 0xDEAD_BEEF_0123_4567,
            num_patterns: 8,
            num_partitions: 3,
            mask_bits: 15,
            total_x: 28,
            m: 10,
            q: 2,
            assignment: vec![1, 0, 0, 1, 1, 2, 0, 0],
            partitions: vec![
                PartitionAccount {
                    patterns: 4,
                    masked_x: 14,
                    leaked_x: 0,
                    mask_cells: 3,
                    cancel_bits: 0.0,
                    histogram: vec![(2, 1), (4, 3)],
                },
                PartitionAccount {
                    patterns: 3,
                    masked_x: 9,
                    leaked_x: 2,
                    mask_cells: 2,
                    cancel_bits: 5.0,
                    histogram: vec![(1, 2), (3, 3)],
                },
                PartitionAccount {
                    patterns: 1,
                    masked_x: 0,
                    leaked_x: 3,
                    mask_cells: 0,
                    cancel_bits: 7.5,
                    histogram: vec![(1, 3)],
                },
            ],
            blocks: blocks.then(|| {
                vec![
                    BlockCertificate {
                        patterns: (0, 3),
                        num_x: 5,
                        rank: 4,
                        pivot_cols: vec![0, 1, 3, 4],
                        combinations: 2,
                        control_bits: 20,
                        dependency: vec![0b1_1011; 10],
                    },
                    BlockCertificate {
                        patterns: (3, 8),
                        num_x: 0,
                        rank: 0,
                        pivot_cols: vec![],
                        combinations: 2,
                        control_bits: 20,
                        dependency: vec![],
                    },
                ]
            }),
        }
    }

    #[test]
    fn certificate_roundtrips_with_and_without_blocks() {
        for blocks in [false, true] {
            let cert = sample_cert(blocks);
            let bytes = encode_certificate(&cert);
            assert_eq!(peek_kind(&bytes).unwrap(), Kind::PlanCertificate);
            let back = decode_certificate(&bytes).unwrap();
            assert_eq!(back, cert);
            // Canonical: re-encoding the decoded value reproduces the bytes.
            assert_eq!(encode_certificate(&back), bytes);
        }
    }

    #[test]
    fn truncations_fail_cleanly_at_every_cut() {
        let bytes = encode_certificate(&sample_cert(true));
        for cut in 0..bytes.len() {
            assert!(decode_certificate(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_structural_defects() {
        // Out-of-range assignment.
        let mut cert = sample_cert(false);
        cert.assignment[2] = 9;
        assert!(matches!(
            decode_certificate(&encode_certificate(&cert)),
            Err(WireError::Malformed { .. })
        ));

        // Histogram not strictly ascending.
        let mut cert = sample_cert(false);
        cert.partitions[0].histogram = vec![(4, 1), (2, 1)];
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Zero-cell histogram entry.
        let mut cert = sample_cert(false);
        cert.partitions[1].histogram = vec![(1, 0)];
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Non-finite cancel bits.
        let mut cert = sample_cert(false);
        cert.partitions[2].cancel_bits = f64::NAN;
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // q out of range.
        let mut cert = sample_cert(false);
        cert.q = cert.m;
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Rank above min(m, num_x).
        let mut cert = sample_cert(true);
        cert.blocks.as_mut().unwrap()[0].rank = 6;
        cert.blocks.as_mut().unwrap()[0].pivot_cols = vec![0, 1, 2, 3, 4, 4];
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Pivot columns out of order.
        let mut cert = sample_cert(true);
        cert.blocks.as_mut().unwrap()[0].pivot_cols = vec![0, 3, 1, 4];
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Nonzero dependency tail bits.
        let mut cert = sample_cert(true);
        cert.blocks.as_mut().unwrap()[0].dependency[0] |= 1 << 63;
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Inverted block range.
        let mut cert = sample_cert(true);
        cert.blocks.as_mut().unwrap()[0].patterns = (3, 0);
        assert!(decode_certificate(&encode_certificate(&cert)).is_err());

        // Wrong kind.
        let cfg = crate::encode_scan_config(&xhc_scan::ScanConfig::uniform(2, 2));
        assert!(matches!(
            decode_certificate(&cfg),
            Err(WireError::WrongKind { .. })
        ));
    }
}
