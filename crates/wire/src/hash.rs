//! Content addressing: a 64-bit digest over canonical wire bytes, built
//! on `xhc-prng`'s SplitMix64 finalizer.

use xhc_prng::splitmix64_mix;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The content hash of a byte string: the buffer is folded 8 bytes at a
/// time (zero-padded tail) through [`splitmix64_mix`], seeded with the
/// length so padding cannot collide with explicit zero bytes.
///
/// Not cryptographic — it exists so identical artifacts get identical,
/// stable addresses across machines and releases. Like the seeded PRNG
/// stream, the digest is pinned workspace API: cached plan stores survive
/// upgrades only if this function never changes.
///
/// # Examples
///
/// ```
/// use xhc_wire::content_hash;
///
/// assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
/// assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
/// assert_ne!(content_hash(b"a"), content_hash(b"a\0"));
/// ```
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = splitmix64_mix(GOLDEN ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64_mix(h ^ u64::from_le_bytes(w)).wrapping_add(GOLDEN);
    }
    splitmix64_mix(h)
}

/// The cache key of a plan request: the [`content_hash`] of the canonical
/// wire-encoded X map, mixed with the planning parameters. Two requests
/// collide exactly when they would produce the same plan — same X map
/// bytes, same `(m, q)`, same split strategy.
///
/// `strategy` is the strategy's stable wire code (0 = largest-class,
/// 1 = best-cost; see `xhc-serve`).
pub fn plan_request_hash(xmap_wire: &[u8], m: usize, q: usize, strategy: u8) -> u64 {
    let mut h = content_hash(xmap_wire);
    h = splitmix64_mix(h ^ m as u64).wrapping_add(GOLDEN);
    h = splitmix64_mix(h ^ q as u64).wrapping_add(GOLDEN);
    splitmix64_mix(h ^ u64::from(strategy))
}

/// The cache key of a fully-optioned plan request.
///
/// Extends [`plan_request_hash`] with the engine options beyond the
/// strategy — and collapses to *exactly* [`plan_request_hash`] whenever
/// those extras are at their defaults (policy `First`, no round cap,
/// cost stop on, hybrid backend), so every address minted before options
/// or backends existed stays valid. `threads` is deliberately never
/// mixed in: the outcome is thread-count invariant, and a cache key that
/// varied with worker count would store the same plan many times.
pub fn plan_request_hash_with_options(
    artifact_wire: &[u8],
    m: usize,
    q: usize,
    options: &xhc_core::PlanOptions,
) -> u64 {
    let strategy = crate::codec::strategy_code(options.strategy);
    let base = plan_request_hash(artifact_wire, m, q, strategy);
    let policy = crate::codec::policy_code(options.policy);
    let backend = crate::codec::backend_code(options.backend);
    if policy == 0 && options.max_rounds.is_none() && options.cost_stop && backend == 0 {
        return base;
    }
    let mut h = splitmix64_mix(base ^ u64::from(policy)).wrapping_add(GOLDEN);
    h = splitmix64_mix(h ^ crate::codec::policy_seed(options.policy)).wrapping_add(GOLDEN);
    h = splitmix64_mix(h ^ options.max_rounds.map_or(u64::MAX, |r| r as u64)).wrapping_add(GOLDEN);
    h = splitmix64_mix(h ^ u64::from(options.cost_stop)).wrapping_add(GOLDEN);
    splitmix64_mix(h ^ u64::from(backend))
}

/// Renders a digest as the canonical 16-hex-character address.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a canonical 16-hex-character address back into a digest.
/// Returns `None` unless the string is exactly 16 lowercase/uppercase hex
/// digits.
pub fn parse_hash_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_pinned() {
        // The digest is stable workspace API (content-addressed stores
        // depend on it); pin a few values so a refactor cannot silently
        // reshuffle every address.
        assert_eq!(content_hash(b""), content_hash(b""));
        let empty = content_hash(b"");
        let a = content_hash(b"a");
        let abc = content_hash(b"abc");
        assert_ne!(empty, a);
        assert_ne!(a, abc);
        // Every byte position matters.
        let mut buf = [0u8; 32];
        let base = content_hash(&buf);
        for i in 0..buf.len() {
            buf[i] = 1;
            assert_ne!(content_hash(&buf), base, "byte {i} ignored");
            buf[i] = 0;
        }
    }

    #[test]
    fn plan_hash_separates_params() {
        let bytes = b"some canonical xmap";
        let base = plan_request_hash(bytes, 32, 7, 0);
        assert_eq!(base, plan_request_hash(bytes, 32, 7, 0));
        assert_ne!(base, plan_request_hash(bytes, 32, 7, 1));
        assert_ne!(base, plan_request_hash(bytes, 32, 8, 0));
        assert_ne!(base, plan_request_hash(bytes, 16, 7, 0));
        assert_ne!(base, plan_request_hash(b"other bytes", 32, 7, 0));
        // (m, q) are mixed independently, not merely summed.
        assert_ne!(
            plan_request_hash(bytes, 31, 8, 0),
            plan_request_hash(bytes, 32, 7, 0)
        );
    }

    #[test]
    fn options_hash_collapses_to_base_for_defaults() {
        use xhc_core::{PlanOptions, SplitStrategy};
        let bytes = b"some canonical xmap";
        for (strategy, code) in [
            (SplitStrategy::LargestClass, 0u8),
            (SplitStrategy::BestCost, 1),
        ] {
            let opts = PlanOptions {
                strategy,
                ..PlanOptions::default()
            };
            let want = plan_request_hash(bytes, 32, 7, code);
            assert_eq!(plan_request_hash_with_options(bytes, 32, 7, &opts), want);
            // `threads` never enters the key, at defaults or otherwise.
            let threaded = PlanOptions { threads: 8, ..opts };
            assert_eq!(
                plan_request_hash_with_options(bytes, 32, 7, &threaded),
                want
            );
            // The default (hybrid) backend collapses too: addresses
            // minted before the backend field existed stay valid.
            let hybrid = PlanOptions {
                backend: xhc_core::BackendId::Hybrid,
                ..opts
            };
            assert_eq!(plan_request_hash_with_options(bytes, 32, 7, &hybrid), want);
        }
    }

    #[test]
    fn options_hash_separates_non_default_options() {
        use xhc_core::{CellSelection, PlanOptions};
        let bytes = b"some canonical xmap";
        let base = plan_request_hash(bytes, 32, 7, 0);
        let variants = [
            PlanOptions {
                policy: CellSelection::GlobalMaxX,
                ..PlanOptions::default()
            },
            PlanOptions {
                policy: CellSelection::Seeded(9),
                ..PlanOptions::default()
            },
            PlanOptions {
                max_rounds: Some(3),
                ..PlanOptions::default()
            },
            PlanOptions {
                max_rounds: Some(0),
                ..PlanOptions::default()
            },
            PlanOptions {
                cost_stop: false,
                ..PlanOptions::default()
            },
            // A non-default backend alone must change the key, even with
            // every other option at its default.
            PlanOptions {
                backend: xhc_core::BackendId::MaskingOnly,
                ..PlanOptions::default()
            },
            PlanOptions {
                backend: xhc_core::BackendId::CancelingOnly,
                ..PlanOptions::default()
            },
            PlanOptions {
                backend: xhc_core::BackendId::Superset,
                ..PlanOptions::default()
            },
            PlanOptions {
                backend: xhc_core::BackendId::XCode,
                ..PlanOptions::default()
            },
        ];
        let mut keys: Vec<u64> = variants
            .iter()
            .map(|o| plan_request_hash_with_options(bytes, 32, 7, o))
            .collect();
        for &k in &keys {
            assert_ne!(k, base);
        }
        keys.push(base);
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), variants.len() + 1, "option keys collide");
        // Distinct seeds mint distinct addresses.
        assert_ne!(
            plan_request_hash_with_options(
                bytes,
                32,
                7,
                &PlanOptions {
                    policy: CellSelection::Seeded(1),
                    ..PlanOptions::default()
                }
            ),
            plan_request_hash_with_options(
                bytes,
                32,
                7,
                &PlanOptions {
                    policy: CellSelection::Seeded(2),
                    ..PlanOptions::default()
                }
            ),
        );
    }

    #[test]
    fn hex_roundtrip() {
        for h in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let hex = hash_hex(h);
            assert_eq!(hex.len(), 16);
            assert_eq!(parse_hash_hex(&hex), Some(h));
        }
        assert_eq!(
            parse_hash_hex("0123456789ABCDEF"),
            Some(0x0123_4567_89AB_CDEF)
        );
        assert_eq!(parse_hash_hex("xyz"), None);
        assert_eq!(parse_hash_hex("0123456789abcde"), None);
        assert_eq!(parse_hash_hex("0123456789abcdef0"), None);
        assert_eq!(parse_hash_hex("0123456789abcdeg"), None);
    }
}
