//! Encoders and strict decoders for every artifact kind.

use crate::buf::{expect_drained, ArtifactWriter, PutLe, Reader, Sections};
use crate::{Kind, WireError};
use xhc_bits::{BitVec, PatternSet};
use xhc_core::{
    BackendId, CellSelection, HybridCost, PartitionOutcome, PlanOptions, RoundRecord, SplitStrategy,
};
use xhc_misr::{MaskWord, SessionReport};
use xhc_scan::{ScanConfig, XMap, XMapBuilder};
use xhc_workload::WorkloadSpec;

// Section tags. Shared across kinds where the payload layout is shared
// (CHAINS appears in both scan-config and xmap buffers).
const SEC_CHAINS: u32 = 1;
const SEC_META: u32 = 2;
const SEC_CELLS: u32 = 3;
const SEC_XSETS: u32 = 4;
const SEC_SPEC: u32 = 5;
const SEC_PARTS: u32 = 6;
const SEC_MASKS: u32 = 7;
const SEC_COST: u32 = 8;
const SEC_ROUNDS: u32 = 9;
const SEC_BLOCKS: u32 = 10;
const SEC_PLAN_PARAMS: u32 = 11;
const SEC_ARTIFACT: u32 = 12;

/// Guards a `count x width`-byte batch read against a section too short
/// to hold it, so an untrusted count can never drive an allocation: after
/// this check, per-item buffers are bounded by bytes actually present.
pub(crate) fn check_batch(
    r: &Reader<'_>,
    count: usize,
    width: usize,
    context: &'static str,
) -> Result<(), WireError> {
    let need = count
        .checked_mul(width)
        .ok_or_else(|| WireError::Malformed {
            context,
            message: format!("count {count} x {width} bytes overflows"),
        })?;
    if r.remaining() < need {
        return Err(WireError::Truncated {
            need,
            have: r.remaining(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// ScanConfig
// ---------------------------------------------------------------------

fn chains_payload(config: &ScanConfig) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + 8 * config.num_chains());
    p.put_usize(config.num_chains());
    for chain in 0..config.num_chains() {
        p.put_usize(config.chain_len(chain));
    }
    p
}

fn decode_chains(payload: &[u8]) -> Result<ScanConfig, WireError> {
    let mut r = Reader::new(payload);
    let count = r.length("chain count")?;
    if count == 0 {
        return Err(WireError::Malformed {
            context: "scan-config",
            message: "need at least one scan chain".into(),
        });
    }
    check_batch(&r, count, 8, "scan-config")?;
    let mut lengths = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = r.length("chain length")?;
        if len == 0 {
            return Err(WireError::Malformed {
                context: "scan-config",
                message: "every chain needs at least one cell".into(),
            });
        }
        lengths.push(len);
    }
    expect_drained(&r, SEC_CHAINS)?;
    Ok(ScanConfig::new(lengths))
}

/// Encodes a scan topology.
pub fn encode_scan_config(config: &ScanConfig) -> Vec<u8> {
    let mut w = ArtifactWriter::new(Kind::ScanConfig);
    w.section(SEC_CHAINS, chains_payload(config));
    w.finish()
}

/// Decodes a scan topology.
///
/// # Errors
///
/// Returns [`WireError`] on any structural or semantic defect.
pub fn decode_scan_config(bytes: &[u8]) -> Result<ScanConfig, WireError> {
    let sections = Sections::parse(bytes, Kind::ScanConfig, &[SEC_CHAINS])?;
    decode_chains(sections.require(SEC_CHAINS)?)
}

// ---------------------------------------------------------------------
// XMap
// ---------------------------------------------------------------------

/// Encodes a sparse X map: its topology, pattern universe, the sorted
/// X-capturing cell indices and one fixed-width pattern-set bitmap per
/// cell.
pub fn encode_xmap(xmap: &XMap) -> Vec<u8> {
    let mut w = ArtifactWriter::new(Kind::XMap);
    w.section(SEC_CHAINS, chains_payload(xmap.config()));

    let mut meta = Vec::with_capacity(24);
    meta.put_usize(xmap.num_patterns());
    meta.put_usize(xmap.num_x_cells());
    meta.put_usize(xmap.total_x());
    w.section(SEC_META, meta);

    let mut cells = Vec::with_capacity(4 * xmap.num_x_cells());
    for pos in 0..xmap.num_x_cells() {
        let (idx, _) = xmap.entry(pos);
        cells.put_u32(idx as u32);
    }
    w.section(SEC_CELLS, cells);

    let words_per_set = xmap.num_patterns().div_ceil(64);
    let mut xsets = Vec::with_capacity(8 * words_per_set * xmap.num_x_cells());
    for pos in 0..xmap.num_x_cells() {
        let (_, xs) = xmap.entry(pos);
        for &word in xs.as_bits().as_words() {
            xsets.put_u64(word);
        }
    }
    w.section(SEC_XSETS, xsets);
    w.finish()
}

/// Decodes a sparse X map.
///
/// Everything the in-memory type guarantees by construction is checked
/// here before any builder call: cells strictly ascending and in range,
/// bitmap tail bits zero, per-cell sets non-empty, and the declared
/// `total_x` matching the bitmaps.
///
/// # Errors
///
/// Returns [`WireError`] on any structural or semantic defect.
pub fn decode_xmap(bytes: &[u8]) -> Result<XMap, WireError> {
    let sections = Sections::parse(
        bytes,
        Kind::XMap,
        &[SEC_CHAINS, SEC_META, SEC_CELLS, SEC_XSETS],
    )?;
    let config = decode_chains(sections.require(SEC_CHAINS)?)?;

    let mut meta = Reader::new(sections.require(SEC_META)?);
    let num_patterns = meta.length("pattern count")?;
    let num_x_cells = meta.length("x-cell count")?;
    let total_x = meta.length("total x count")?;
    expect_drained(&meta, SEC_META)?;
    if num_patterns == 0 {
        return Err(WireError::Malformed {
            context: "xmap",
            message: "need at least one pattern".into(),
        });
    }

    let mut cells_r = Reader::new(sections.require(SEC_CELLS)?);
    check_batch(&cells_r, num_x_cells, 4, "xmap")?;
    let mut cells = Vec::with_capacity(num_x_cells.min(1 << 20));
    let mut prev: Option<u32> = None;
    for _ in 0..num_x_cells {
        let idx = cells_r.u32()?;
        if idx as usize >= config.total_cells() {
            return Err(WireError::Malformed {
                context: "xmap",
                message: format!(
                    "cell index {idx} out of range for {} cells",
                    config.total_cells()
                ),
            });
        }
        if prev.is_some_and(|p| p >= idx) {
            return Err(WireError::Malformed {
                context: "xmap",
                message: format!("cell indices must be strictly ascending at {idx}"),
            });
        }
        prev = Some(idx);
        cells.push(idx);
    }
    expect_drained(&cells_r, SEC_CELLS)?;

    let words_per_set = num_patterns.div_ceil(64);
    let mut xsets_r = Reader::new(sections.require(SEC_XSETS)?);
    check_batch(&xsets_r, num_x_cells, words_per_set * 8, "xmap")?;
    let mut builder = XMapBuilder::new(config.clone(), num_patterns);
    let mut counted_x = 0usize;
    for &idx in &cells {
        let mut words = Vec::with_capacity(words_per_set);
        for _ in 0..words_per_set {
            words.push(xsets_r.u64()?);
        }
        let set = decode_pattern_set(words, num_patterns, "xmap")?;
        if set.is_empty() {
            return Err(WireError::Malformed {
                context: "xmap",
                message: format!("cell {idx} carries an empty X pattern set"),
            });
        }
        counted_x += set.card();
        builder.add_xset(config.cell_at(idx as usize), &set);
    }
    expect_drained(&xsets_r, SEC_XSETS)?;
    if counted_x != total_x {
        return Err(WireError::Malformed {
            context: "xmap",
            message: format!("declared total_x {total_x} but bitmaps hold {counted_x}"),
        });
    }
    Ok(builder.finish())
}

/// Decodes one fixed-width bitmap into a [`PatternSet`], rejecting
/// nonzero bits beyond the universe (non-canonical encodings would
/// otherwise alias distinct byte strings to one artifact and break
/// content addressing).
fn decode_pattern_set(
    words: Vec<u64>,
    universe: usize,
    context: &'static str,
) -> Result<PatternSet, WireError> {
    let tail_bits = universe % 64;
    if tail_bits != 0 {
        let last = *words.last().expect("words_per_set >= 1 when universe > 0");
        if last >> tail_bits != 0 {
            return Err(WireError::Malformed {
                context,
                message: "nonzero bits beyond the pattern universe".into(),
            });
        }
    }
    Ok(PatternSet::from_bits(BitVec::from_words(words, universe)))
}

// ---------------------------------------------------------------------
// WorkloadSpec
// ---------------------------------------------------------------------

/// The workload names the decoder can map back onto the crate's
/// `&'static str` labels.
const KNOWN_WORKLOAD_NAMES: [&str; 4] = ["synthetic", "CKT-A", "CKT-B", "CKT-C"];

/// Encodes a workload spec.
pub fn encode_workload_spec(spec: &WorkloadSpec) -> Vec<u8> {
    let mut p = Vec::new();
    p.put_usize(spec.name.len());
    p.extend_from_slice(spec.name.as_bytes());
    p.put_usize(spec.total_cells);
    p.put_usize(spec.num_chains);
    p.put_usize(spec.num_patterns);
    p.put_f64(spec.x_density);
    p.put_f64(spec.correlated_fraction);
    p.put_usize(spec.num_groups);
    p.put_f64(spec.group_pattern_fraction);
    p.put_f64(spec.x_cell_fraction);
    p.put_f64(spec.spatial_clustering);
    p.put_u64(spec.seed);
    let mut w = ArtifactWriter::new(Kind::WorkloadSpec);
    w.section(SEC_SPEC, p);
    w.finish()
}

/// Decodes a workload spec, validating every fraction and dimension so
/// the ensuing `generate()` cannot panic.
///
/// # Errors
///
/// Returns [`WireError`] on any structural or semantic defect, including
/// a workload name this build does not know.
pub fn decode_workload_spec(bytes: &[u8]) -> Result<WorkloadSpec, WireError> {
    let sections = Sections::parse(bytes, Kind::WorkloadSpec, &[SEC_SPEC])?;
    let mut r = Reader::new(sections.require(SEC_SPEC)?);
    let name_len = r.length("name length")?;
    let name_bytes = r.bytes(name_len)?;
    let name = std::str::from_utf8(name_bytes).map_err(|_| WireError::Malformed {
        context: "workload-spec",
        message: "name is not UTF-8".into(),
    })?;
    let name = KNOWN_WORKLOAD_NAMES
        .into_iter()
        .find(|&k| k == name)
        .ok_or_else(|| WireError::Malformed {
            context: "workload-spec",
            message: format!("unknown workload name `{name}`"),
        })?;
    let total_cells = r.length("total cells")?;
    let num_chains = r.length("chain count")?;
    let num_patterns = r.length("pattern count")?;
    let x_density = r.f64()?;
    let correlated_fraction = r.f64()?;
    let num_groups = r.length("group count")?;
    let group_pattern_fraction = r.f64()?;
    let x_cell_fraction = r.f64()?;
    let spatial_clustering = r.f64()?;
    let seed = r.u64()?;
    expect_drained(&r, SEC_SPEC)?;

    if num_chains == 0 || total_cells < num_chains {
        return Err(WireError::Malformed {
            context: "workload-spec",
            message: format!(
                "need at least one cell per chain ({total_cells} cells, {num_chains} chains)"
            ),
        });
    }
    if num_patterns == 0 {
        return Err(WireError::Malformed {
            context: "workload-spec",
            message: "need at least one pattern".into(),
        });
    }
    for (label, f) in [
        ("x_density", x_density),
        ("correlated_fraction", correlated_fraction),
        ("group_pattern_fraction", group_pattern_fraction),
        ("x_cell_fraction", x_cell_fraction),
        ("spatial_clustering", spatial_clustering),
    ] {
        if !(0.0..=1.0).contains(&f) {
            return Err(WireError::Malformed {
                context: "workload-spec",
                message: format!("{label} must be in [0,1], got {f}"),
            });
        }
    }
    Ok(WorkloadSpec {
        name,
        total_cells,
        num_chains,
        num_patterns,
        x_density,
        correlated_fraction,
        num_groups,
        group_pattern_fraction,
        x_cell_fraction,
        spatial_clustering,
        seed,
    })
}

// ---------------------------------------------------------------------
// PartitionPlan
// ---------------------------------------------------------------------

fn put_cost(p: &mut Vec<u8>, cost: &HybridCost) {
    p.put_u128(cost.masking_bits);
    p.put_f64(cost.canceling_bits);
    p.put_usize(cost.masked_x);
    p.put_usize(cost.leaked_x);
    p.put_usize(cost.num_partitions);
}

fn read_cost(r: &mut Reader<'_>) -> Result<HybridCost, WireError> {
    let masking_bits = r.u128()?;
    let canceling_bits = r.f64()?;
    let masked_x = r.length("masked x")?;
    let leaked_x = r.length("leaked x")?;
    let num_partitions = r.length("partition count")?;
    if !canceling_bits.is_finite() || canceling_bits < 0.0 {
        return Err(WireError::Malformed {
            context: "partition-plan",
            message: format!(
                "canceling_bits must be finite and non-negative, got {canceling_bits}"
            ),
        });
    }
    Ok(HybridCost {
        masking_bits,
        canceling_bits,
        masked_x,
        leaked_x,
        num_partitions,
    })
}

/// Encodes a partition plan: per-partition pattern bitmaps, per-partition
/// mask words, the final and initial cost records and the accepted round
/// trace.
///
/// `mask_bits` (the mask-word width, [`ScanConfig::total_cells`]) is
/// taken from the masks themselves; a plan with no partitions is not
/// encodable and does not occur (the engine always returns at least one).
pub fn encode_plan(outcome: &PartitionOutcome, num_patterns: usize) -> Vec<u8> {
    let mask_bits = outcome.masks.first().map_or(0, |m| m.as_bits().len());
    let mut w = ArtifactWriter::new(Kind::PartitionPlan);

    let mut meta = Vec::with_capacity(32);
    meta.put_usize(num_patterns);
    meta.put_usize(outcome.partitions.len());
    meta.put_usize(mask_bits);
    meta.put_usize(outcome.rounds.len());
    w.section(SEC_META, meta);

    let mut parts = Vec::new();
    for part in &outcome.partitions {
        for &word in part.as_bits().as_words() {
            parts.put_u64(word);
        }
    }
    w.section(SEC_PARTS, parts);

    let mut masks = Vec::new();
    for mask in &outcome.masks {
        for &word in mask.as_bits().as_words() {
            masks.put_u64(word);
        }
    }
    w.section(SEC_MASKS, masks);

    let mut cost = Vec::with_capacity(96);
    put_cost(&mut cost, &outcome.cost);
    put_cost(&mut cost, &outcome.initial_cost);
    w.section(SEC_COST, cost);

    let mut rounds = Vec::new();
    for r in &outcome.rounds {
        rounds.put_usize(r.round);
        rounds.put_usize(r.split_partition);
        rounds.put_usize(r.pivot_cell);
        rounds.put_usize(r.class_count);
        rounds.put_usize(r.class_size);
        put_cost(&mut rounds, &r.cost_after);
    }
    w.section(SEC_ROUNDS, rounds);
    w.finish()
}

/// Decodes a partition plan. Returns the outcome together with the
/// pattern universe it was computed over.
///
/// # Errors
///
/// Returns [`WireError`] on any structural or semantic defect (count
/// mismatches between sections, nonzero tail bits, non-finite costs).
pub fn decode_plan(bytes: &[u8]) -> Result<(PartitionOutcome, usize), WireError> {
    let sections = Sections::parse(
        bytes,
        Kind::PartitionPlan,
        &[SEC_META, SEC_PARTS, SEC_MASKS, SEC_COST, SEC_ROUNDS],
    )?;
    let mut meta = Reader::new(sections.require(SEC_META)?);
    let num_patterns = meta.length("pattern count")?;
    let num_partitions = meta.length("partition count")?;
    let mask_bits = meta.length("mask width")?;
    let num_rounds = meta.length("round count")?;
    expect_drained(&meta, SEC_META)?;
    if num_patterns == 0 || num_partitions == 0 {
        return Err(WireError::Malformed {
            context: "partition-plan",
            message: "need at least one pattern and one partition".into(),
        });
    }

    let words_per_part = num_patterns.div_ceil(64);
    let mut parts_r = Reader::new(sections.require(SEC_PARTS)?);
    check_batch(
        &parts_r,
        num_partitions,
        words_per_part * 8,
        "partition-plan",
    )?;
    let mut partitions = Vec::with_capacity(num_partitions.min(1 << 20));
    for _ in 0..num_partitions {
        let mut words = Vec::with_capacity(words_per_part);
        for _ in 0..words_per_part {
            words.push(parts_r.u64()?);
        }
        partitions.push(decode_pattern_set(words, num_patterns, "partition-plan")?);
    }
    expect_drained(&parts_r, SEC_PARTS)?;

    let words_per_mask = mask_bits.div_ceil(64);
    let mut masks_r = Reader::new(sections.require(SEC_MASKS)?);
    check_batch(
        &masks_r,
        num_partitions,
        words_per_mask * 8,
        "partition-plan",
    )?;
    let mut masks = Vec::with_capacity(num_partitions.min(1 << 20));
    for _ in 0..num_partitions {
        let mut words = Vec::with_capacity(words_per_mask);
        for _ in 0..words_per_mask {
            words.push(masks_r.u64()?);
        }
        let tail = mask_bits % 64;
        if tail != 0 {
            let last = *words.last().expect("mask words non-empty when bits > 0");
            if last >> tail != 0 {
                return Err(WireError::Malformed {
                    context: "partition-plan",
                    message: "nonzero bits beyond the mask width".into(),
                });
            }
        }
        masks.push(MaskWord::from_bits(BitVec::from_words(words, mask_bits)));
    }
    expect_drained(&masks_r, SEC_MASKS)?;

    let mut cost_r = Reader::new(sections.require(SEC_COST)?);
    let cost = read_cost(&mut cost_r)?;
    let initial_cost = read_cost(&mut cost_r)?;
    expect_drained(&cost_r, SEC_COST)?;
    if cost.num_partitions != num_partitions {
        return Err(WireError::Malformed {
            context: "partition-plan",
            message: format!(
                "cost claims {} partitions, plan carries {num_partitions}",
                cost.num_partitions
            ),
        });
    }

    let mut rounds_r = Reader::new(sections.require(SEC_ROUNDS)?);
    check_batch(&rounds_r, num_rounds, 88, "partition-plan")?;
    let mut rounds = Vec::with_capacity(num_rounds.min(1 << 20));
    for _ in 0..num_rounds {
        let round = rounds_r.length("round number")?;
        let split_partition = rounds_r.length("split partition")?;
        let pivot_cell = rounds_r.length("pivot cell")?;
        let class_count = rounds_r.length("class count")?;
        let class_size = rounds_r.length("class size")?;
        let cost_after = read_cost(&mut rounds_r)?;
        rounds.push(RoundRecord {
            round,
            split_partition,
            pivot_cell,
            class_count,
            class_size,
            cost_after,
        });
    }
    expect_drained(&rounds_r, SEC_ROUNDS)?;

    Ok((
        PartitionOutcome {
            partitions,
            masks,
            cost,
            initial_cost,
            rounds,
        },
        num_patterns,
    ))
}

// ---------------------------------------------------------------------
// PlanRequest
// ---------------------------------------------------------------------

/// The stable wire code of a split strategy. Persisted inside cache keys
/// and `plan-request` buffers, so the mapping must never change.
pub fn strategy_code(strategy: SplitStrategy) -> u8 {
    match strategy {
        SplitStrategy::LargestClass => 0,
        SplitStrategy::BestCost => 1,
    }
}

/// The inverse of [`strategy_code`].
pub fn strategy_from_code(code: u8) -> Option<SplitStrategy> {
    match code {
        0 => Some(SplitStrategy::LargestClass),
        1 => Some(SplitStrategy::BestCost),
        _ => None,
    }
}

/// The stable wire code of a pivot-selection policy (the seed of
/// `Seeded` travels separately, see [`policy_seed`]).
pub fn policy_code(policy: CellSelection) -> u8 {
    match policy {
        CellSelection::First => 0,
        CellSelection::Seeded(_) => 1,
        CellSelection::GlobalMaxX => 2,
    }
}

/// The seed a policy carries on the wire (0 for the seedless policies).
pub fn policy_seed(policy: CellSelection) -> u64 {
    match policy {
        CellSelection::Seeded(seed) => seed,
        CellSelection::First | CellSelection::GlobalMaxX => 0,
    }
}

/// The inverse of [`policy_code`] + [`policy_seed`].
pub fn policy_from_code(code: u8, seed: u64) -> Option<CellSelection> {
    match code {
        0 => Some(CellSelection::First),
        1 => Some(CellSelection::Seeded(seed)),
        2 => Some(CellSelection::GlobalMaxX),
        _ => None,
    }
}

/// The stable wire code of a planning backend. [`BackendId::Hybrid`] is
/// pinned at 0: a default-backend request hashes and caches identically
/// to requests from builds that predate the backend field.
pub fn backend_code(backend: BackendId) -> u8 {
    match backend {
        BackendId::Hybrid => 0,
        BackendId::MaskingOnly => 1,
        BackendId::CancelingOnly => 2,
        BackendId::Superset => 3,
        BackendId::XCode => 4,
    }
}

/// The inverse of [`backend_code`].
pub fn backend_from_code(code: u8) -> Option<BackendId> {
    match code {
        0 => Some(BackendId::Hybrid),
        1 => Some(BackendId::MaskingOnly),
        2 => Some(BackendId::CancelingOnly),
        3 => Some(BackendId::Superset),
        4 => Some(BackendId::XCode),
        _ => None,
    }
}

/// A fully-specified planning request: the cancel parameters `(m, q)`,
/// every engine knob ([`PlanOptions`]) and the nested wire-encoded
/// artifact (an X map or a workload spec) to plan over.
///
/// This is what a daemon client submits when query-string parameters are
/// not enough — one self-contained buffer carries everything the plan's
/// cache key depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// MISR size of the X-canceling configuration.
    pub m: usize,
    /// X's canceled per scan-shift halt (`0 < q < m`).
    pub q: usize,
    /// Engine options. `threads` travels on the wire (a client may pin
    /// it) but never enters the cache key — the outcome is thread-count
    /// invariant.
    pub options: PlanOptions,
    /// Nested wire buffer: an [`Kind::XMap`] or [`Kind::WorkloadSpec`]
    /// artifact.
    pub artifact: Vec<u8>,
}

/// Encodes a plan request.
pub fn encode_plan_request(request: &PlanRequest) -> Vec<u8> {
    let mut p = Vec::with_capacity(48);
    p.put_usize(request.m);
    p.put_usize(request.q);
    p.push(strategy_code(request.options.strategy));
    p.push(policy_code(request.options.policy));
    p.put_u64(policy_seed(request.options.policy));
    p.put_usize(request.options.threads);
    p.push(u8::from(request.options.max_rounds.is_some()));
    p.put_usize(request.options.max_rounds.unwrap_or(0));
    p.push(u8::from(request.options.cost_stop));
    // The backend byte sits last so every pre-backend field keeps its
    // offset; see `backend_code` for the default-compatibility pin.
    p.push(backend_code(request.options.backend));
    let mut w = ArtifactWriter::new(Kind::PlanRequest);
    w.section(SEC_PLAN_PARAMS, p);
    w.section(SEC_ARTIFACT, request.artifact.to_vec());
    w.finish()
}

/// Decodes a plan request, validating the cancel parameters, every code
/// and the nested artifact's kind (its full decode happens when the
/// request is executed).
///
/// # Errors
///
/// Returns [`WireError`] on any structural or semantic defect, including
/// a nested artifact that is neither an X map nor a workload spec.
pub fn decode_plan_request(bytes: &[u8]) -> Result<PlanRequest, WireError> {
    let sections = Sections::parse(bytes, Kind::PlanRequest, &[SEC_PLAN_PARAMS, SEC_ARTIFACT])?;
    let mut r = Reader::new(sections.require(SEC_PLAN_PARAMS)?);
    let m = r.length("misr size")?;
    let q = r.length("cancel q")?;
    let strategy_raw = r.bytes(1)?[0];
    let policy_raw = r.bytes(1)?[0];
    let seed = r.u64()?;
    let threads = r.length("thread count")?;
    let has_max_rounds = r.bytes(1)?[0];
    let max_rounds_raw = r.length("max rounds")?;
    let cost_stop_raw = r.bytes(1)?[0];
    let backend_raw = r.bytes(1)?[0];
    expect_drained(&r, SEC_PLAN_PARAMS)?;

    if q == 0 || q >= m {
        return Err(WireError::Malformed {
            context: "plan-request",
            message: format!("need 0 < q < m, got m={m} q={q}"),
        });
    }
    let strategy = strategy_from_code(strategy_raw).ok_or_else(|| WireError::Malformed {
        context: "plan-request",
        message: format!("unknown strategy code {strategy_raw}"),
    })?;
    let policy = policy_from_code(policy_raw, seed).ok_or_else(|| WireError::Malformed {
        context: "plan-request",
        message: format!("unknown policy code {policy_raw}"),
    })?;
    if policy_raw != 1 && seed != 0 {
        return Err(WireError::Malformed {
            context: "plan-request",
            message: format!("seed {seed} on a seedless policy breaks canonicality"),
        });
    }
    let max_rounds = match has_max_rounds {
        0 if max_rounds_raw == 0 => None,
        0 => {
            return Err(WireError::Malformed {
                context: "plan-request",
                message: format!("max_rounds {max_rounds_raw} without its flag"),
            })
        }
        1 => Some(max_rounds_raw),
        other => {
            return Err(WireError::Malformed {
                context: "plan-request",
                message: format!("max_rounds flag must be 0 or 1, got {other}"),
            })
        }
    };
    let cost_stop = match cost_stop_raw {
        0 => false,
        1 => true,
        other => {
            return Err(WireError::Malformed {
                context: "plan-request",
                message: format!("cost_stop must be 0 or 1, got {other}"),
            })
        }
    };
    let backend = backend_from_code(backend_raw).ok_or_else(|| WireError::Malformed {
        context: "plan-request",
        message: format!("unknown backend code {backend_raw}"),
    })?;

    let artifact = sections.require(SEC_ARTIFACT)?;
    match crate::peek_kind(artifact)? {
        Kind::XMap | Kind::WorkloadSpec => {}
        other => {
            return Err(WireError::Malformed {
                context: "plan-request",
                message: format!("cannot plan from a nested {other} artifact"),
            })
        }
    }

    Ok(PlanRequest {
        m,
        q,
        options: PlanOptions {
            strategy,
            policy,
            threads,
            max_rounds,
            cost_stop,
            backend,
        },
        artifact: artifact.to_vec(),
    })
}

// ---------------------------------------------------------------------
// CancelSummary
// ---------------------------------------------------------------------

/// One block of a summarized cancel session (the per-halt counters of
/// [`xhc_misr::BlockOutcome`], without the combination vectors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CancelBlockSummary {
    /// Half-open pattern range `[start, end)` of the block.
    pub patterns: (usize, usize),
    /// X's accumulated in the block.
    pub num_x: usize,
    /// Select bits consumed by the block.
    pub control_bits: usize,
    /// X-free combinations extracted at the halt.
    pub combinations: usize,
}

/// A transferable summary of a whole cancel-session run: the totals an
/// ATE/embedding flow consumes, without the symbolic combination data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CancelSummary {
    /// Number of scan-shift halts.
    pub halts: usize,
    /// Total select-control bits.
    pub total_control_bits: usize,
    /// Total X's seen.
    pub total_x: usize,
    /// Per-block counters, in pattern order.
    pub blocks: Vec<CancelBlockSummary>,
}

impl From<&SessionReport> for CancelSummary {
    fn from(report: &SessionReport) -> Self {
        CancelSummary {
            halts: report.halts,
            total_control_bits: report.total_control_bits,
            total_x: report.total_x,
            blocks: report
                .blocks
                .iter()
                .map(|b| CancelBlockSummary {
                    patterns: b.patterns,
                    num_x: b.num_x,
                    control_bits: b.control_bits,
                    combinations: b.combinations.len(),
                })
                .collect(),
        }
    }
}

/// Encodes a cancel-session summary.
pub fn encode_session_summary(summary: &CancelSummary) -> Vec<u8> {
    let mut w = ArtifactWriter::new(Kind::CancelSummary);
    let mut meta = Vec::with_capacity(32);
    meta.put_usize(summary.halts);
    meta.put_usize(summary.total_control_bits);
    meta.put_usize(summary.total_x);
    meta.put_usize(summary.blocks.len());
    w.section(SEC_META, meta);

    let mut blocks = Vec::with_capacity(40 * summary.blocks.len());
    for b in &summary.blocks {
        blocks.put_usize(b.patterns.0);
        blocks.put_usize(b.patterns.1);
        blocks.put_usize(b.num_x);
        blocks.put_usize(b.control_bits);
        blocks.put_usize(b.combinations);
    }
    w.section(SEC_BLOCKS, blocks);
    w.finish()
}

/// Decodes a cancel-session summary.
///
/// # Errors
///
/// Returns [`WireError`] on any structural or semantic defect.
pub fn decode_session_summary(bytes: &[u8]) -> Result<CancelSummary, WireError> {
    let sections = Sections::parse(bytes, Kind::CancelSummary, &[SEC_META, SEC_BLOCKS])?;
    let mut meta = Reader::new(sections.require(SEC_META)?);
    let halts = meta.length("halt count")?;
    let total_control_bits = meta.length("control bits")?;
    let total_x = meta.length("total x")?;
    let block_count = meta.length("block count")?;
    expect_drained(&meta, SEC_META)?;

    let mut blocks_r = Reader::new(sections.require(SEC_BLOCKS)?);
    check_batch(&blocks_r, block_count, 40, "cancel-summary")?;
    let mut blocks = Vec::with_capacity(block_count.min(1 << 20));
    for _ in 0..block_count {
        let start = blocks_r.length("block start")?;
        let end = blocks_r.length("block end")?;
        if start > end {
            return Err(WireError::Malformed {
                context: "cancel-summary",
                message: format!("block range [{start}, {end}) is inverted"),
            });
        }
        blocks.push(CancelBlockSummary {
            patterns: (start, end),
            num_x: blocks_r.length("block x count")?,
            control_bits: blocks_r.length("block control bits")?,
            combinations: blocks_r.length("block combinations")?,
        });
    }
    expect_drained(&blocks_r, SEC_BLOCKS)?;
    Ok(CancelSummary {
        halts,
        total_control_bits,
        total_x,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_core::PartitionEngine;
    use xhc_misr::XCancelConfig;
    use xhc_scan::CellId;

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn scan_config_roundtrips() {
        for config in [
            ScanConfig::uniform(5, 3),
            ScanConfig::new(vec![3, 1, 4, 1, 5]),
            ScanConfig::balanced(103, 7),
        ] {
            let bytes = encode_scan_config(&config);
            assert_eq!(decode_scan_config(&bytes).unwrap(), config);
        }
    }

    #[test]
    fn xmap_roundtrips_including_empty() {
        let xmap = fig4_xmap();
        let bytes = encode_xmap(&xmap);
        assert_eq!(decode_xmap(&bytes).unwrap(), xmap);

        let empty = XMapBuilder::new(ScanConfig::uniform(2, 2), 70).finish();
        let bytes = encode_xmap(&empty);
        assert_eq!(decode_xmap(&bytes).unwrap(), empty);
    }

    #[test]
    fn xmap_encoding_is_canonical() {
        // Same artifact, same bytes — the content-address contract.
        assert_eq!(encode_xmap(&fig4_xmap()), encode_xmap(&fig4_xmap()));
    }

    #[test]
    fn xmap_rejects_semantic_defects() {
        let bytes = encode_xmap(&fig4_xmap());
        // Find the META section and corrupt total_x (last 8 bytes of META).
        // Easier: flip a declared count via a targeted rebuild below; here
        // just check a wrong-kind feed.
        let cfg_bytes = encode_scan_config(&ScanConfig::uniform(2, 2));
        assert!(matches!(
            decode_xmap(&cfg_bytes),
            Err(WireError::WrongKind { .. })
        ));
        // Truncations fail cleanly at every cut.
        for cut in 0..bytes.len() {
            assert!(decode_xmap(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn workload_spec_roundtrips() {
        for spec in [
            WorkloadSpec::default(),
            WorkloadSpec::ckt_a(),
            WorkloadSpec::ckt_b(),
            WorkloadSpec::ckt_c(),
            WorkloadSpec {
                seed: 99,
                num_patterns: 17,
                ..WorkloadSpec::default()
            },
        ] {
            let bytes = encode_workload_spec(&spec);
            assert_eq!(decode_workload_spec(&bytes).unwrap(), spec);
        }
    }

    #[test]
    fn workload_spec_rejects_bad_fractions() {
        let spec = WorkloadSpec {
            x_density: 0.5,
            ..WorkloadSpec::default()
        };
        let mut bytes = encode_workload_spec(&spec);
        // x_density is the first f64 in the SPEC payload; overwrite it
        // with 2.0 by scanning for its bit pattern.
        let needle = 0.5f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("density bytes present");
        bytes[pos..pos + 8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(
            decode_workload_spec(&bytes),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn plan_roundtrips_bit_identically() {
        let xmap = fig4_xmap();
        let outcome = PartitionEngine::new(XCancelConfig::new(10, 2)).run(&xmap);
        let bytes = encode_plan(&outcome, xmap.num_patterns());
        let (back, patterns) = decode_plan(&bytes).unwrap();
        assert_eq!(patterns, 8);
        assert_eq!(back, outcome);
        // Canonical: re-encoding the decoded plan reproduces the bytes.
        assert_eq!(encode_plan(&back, patterns), bytes);
    }

    #[test]
    fn plan_request_roundtrips() {
        use xhc_workload::WorkloadSpec;
        let requests = [
            PlanRequest {
                m: 32,
                q: 7,
                options: PlanOptions::default(),
                artifact: encode_xmap(&fig4_xmap()),
            },
            PlanRequest {
                m: 10,
                q: 2,
                options: PlanOptions {
                    strategy: SplitStrategy::BestCost,
                    policy: CellSelection::Seeded(77),
                    threads: 4,
                    max_rounds: Some(5),
                    cost_stop: false,
                    backend: BackendId::Superset,
                },
                artifact: encode_workload_spec(&WorkloadSpec::default()),
            },
            PlanRequest {
                m: 16,
                q: 3,
                options: PlanOptions {
                    policy: CellSelection::GlobalMaxX,
                    max_rounds: Some(0),
                    ..PlanOptions::default()
                },
                artifact: encode_xmap(&fig4_xmap()),
            },
            PlanRequest {
                m: 32,
                q: 7,
                options: PlanOptions {
                    backend: BackendId::XCode,
                    ..PlanOptions::default()
                },
                artifact: encode_xmap(&fig4_xmap()),
            },
        ];
        for request in requests {
            let bytes = encode_plan_request(&request);
            assert_eq!(crate::peek_kind(&bytes).unwrap(), Kind::PlanRequest);
            let back = decode_plan_request(&bytes).unwrap();
            assert_eq!(back, request);
            // Canonical: re-encoding reproduces the bytes.
            assert_eq!(encode_plan_request(&back), bytes);
        }
    }

    #[test]
    fn plan_request_rejects_defects() {
        let good = PlanRequest {
            m: 32,
            q: 7,
            options: PlanOptions::default(),
            artifact: encode_xmap(&fig4_xmap()),
        };
        // Truncations fail cleanly at every cut.
        let bytes = encode_plan_request(&good);
        for cut in 0..bytes.len() {
            assert!(decode_plan_request(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // q out of range.
        for (m, q) in [(32, 0), (7, 7), (7, 9)] {
            let bad = PlanRequest {
                m,
                q,
                ..good.clone()
            };
            assert!(matches!(
                decode_plan_request(&encode_plan_request(&bad)),
                Err(WireError::Malformed { .. })
            ));
        }
        // Nested artifact of a non-plannable kind.
        let bad = PlanRequest {
            artifact: encode_scan_config(&ScanConfig::uniform(2, 2)),
            ..good.clone()
        };
        assert!(matches!(
            decode_plan_request(&encode_plan_request(&bad)),
            Err(WireError::Malformed { .. })
        ));
        // A seed on a seedless policy is non-canonical: splice a nonzero
        // seed into the encoded default-policy request.
        let mut bytes = encode_plan_request(&good);
        let needle = 77u64.to_le_bytes();
        assert!(!bytes.windows(8).any(|w| w == needle));
        // seed sits after m(8) + q(8) + strategy(1) + policy(1) in the
        // params payload; the payload starts after the 12-byte header and
        // one 12-byte table entry per section (2 sections).
        let seed_off = 12 + 2 * 12 + 18;
        bytes[seed_off..seed_off + 8].copy_from_slice(&needle);
        assert!(matches!(
            decode_plan_request(&bytes),
            Err(WireError::Malformed { .. })
        ));
        // An unknown backend code is rejected; the byte is the last of
        // the params payload (cost_stop sits right before it).
        let mut bytes = encode_plan_request(&good);
        let backend_off = seed_off + 8 + 8 + 1 + 8 + 1;
        assert_eq!(bytes[backend_off], backend_code(BackendId::Hybrid));
        bytes[backend_off] = 99;
        assert!(matches!(
            decode_plan_request(&bytes),
            Err(WireError::Malformed { message, .. }) if message.contains("backend")
        ));
    }

    #[test]
    fn backend_codes_are_pinned() {
        // Persisted inside cache keys and plan-request buffers — the
        // mapping must never change, and hybrid must stay at 0 so
        // default-options requests hash like pre-backend builds.
        assert_eq!(backend_code(BackendId::Hybrid), 0);
        assert_eq!(backend_code(BackendId::MaskingOnly), 1);
        assert_eq!(backend_code(BackendId::CancelingOnly), 2);
        assert_eq!(backend_code(BackendId::Superset), 3);
        assert_eq!(backend_code(BackendId::XCode), 4);
        for code in 0..5u8 {
            let backend = backend_from_code(code).unwrap();
            assert_eq!(backend_code(backend), code);
        }
        assert_eq!(backend_from_code(5), None);
        assert_eq!(backend_from_code(255), None);
    }

    #[test]
    fn strategy_and_policy_codes_are_pinned() {
        // Persisted inside cache keys — the mappings must never change.
        assert_eq!(strategy_code(SplitStrategy::LargestClass), 0);
        assert_eq!(strategy_code(SplitStrategy::BestCost), 1);
        assert_eq!(policy_code(CellSelection::First), 0);
        assert_eq!(policy_code(CellSelection::Seeded(9)), 1);
        assert_eq!(policy_code(CellSelection::GlobalMaxX), 2);
        for code in 0..3u8 {
            let policy = policy_from_code(code, 9).unwrap();
            assert_eq!(policy_code(policy), code);
        }
        assert_eq!(policy_seed(CellSelection::Seeded(9)), 9);
        assert_eq!(policy_seed(CellSelection::First), 0);
        assert_eq!(strategy_from_code(2), None);
        assert_eq!(policy_from_code(3, 0), None);
    }

    #[test]
    fn session_summary_roundtrips() {
        let summary = CancelSummary {
            halts: 3,
            total_control_bits: 96,
            total_x: 17,
            blocks: vec![
                CancelBlockSummary {
                    patterns: (0, 4),
                    num_x: 9,
                    control_bits: 64,
                    combinations: 2,
                },
                CancelBlockSummary {
                    patterns: (4, 8),
                    num_x: 8,
                    control_bits: 32,
                    combinations: 1,
                },
            ],
        };
        let bytes = encode_session_summary(&summary);
        assert_eq!(decode_session_summary(&bytes).unwrap(), summary);
    }
}
