//! Little-endian buffer primitives: the canonical section writer and the
//! strict, panic-free reader every decoder is built on.

use crate::{Kind, WireError, MAGIC, VERSION};

/// Builds one artifact buffer: header, ascending-tag section table, then
/// the section payloads in table order.
pub(crate) struct ArtifactWriter {
    kind: Kind,
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    pub(crate) fn new(kind: Kind) -> Self {
        ArtifactWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Encoders must push tags in ascending order —
    /// that is what makes the encoding canonical (debug-asserted here,
    /// enforced on the decode side for untrusted input).
    pub(crate) fn section(&mut self, tag: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.last().is_none_or(|(t, _)| *t < tag),
            "sections must be appended in ascending tag order"
        );
        self.sections.push((tag, payload));
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(12 + 12 * self.sections.len() + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.code().to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Appends primitives to a section payload, little-endian.
pub(crate) trait PutLe {
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_u128(&mut self, v: u128);
    fn put_f64(&mut self, v: f64);
    fn put_usize(&mut self, v: usize);
}

impl PutLe for Vec<u8> {
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u128(&mut self, v: u128) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }
}

/// A bounds-checked cursor over an untrusted byte slice. Every accessor
/// returns [`WireError::Truncated`] instead of panicking.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, WireError> {
        let b = self.bytes(16)?;
        let mut w = [0u8; 16];
        w.copy_from_slice(b);
        Ok(u128::from_le_bytes(w))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A u64 decoded into `usize`, rejecting values that do not fit the
    /// platform (keeps 32-bit targets panic-free).
    pub(crate) fn length(&mut self, context: &'static str) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed {
            context,
            message: format!("length {v} does not fit this platform"),
        })
    }
}

/// The parsed section table of one artifact: tag-addressed payload
/// slices, decoded strictly (canonical tag order, exact total length).
#[derive(Debug)]
pub(crate) struct Sections<'a> {
    entries: Vec<(u32, &'a [u8])>,
}

impl<'a> Sections<'a> {
    /// Parses the header and section table, expecting `expected` as the
    /// artifact kind and `known_tags` as the exhaustive tag set of that
    /// kind.
    pub(crate) fn parse(
        bytes: &'a [u8],
        expected: Kind,
        known_tags: &[u32],
    ) -> Result<Sections<'a>, WireError> {
        let got = crate::peek_kind(bytes)?;
        if got != expected {
            return Err(WireError::WrongKind { expected, got });
        }
        let mut r = Reader::new(bytes);
        r.bytes(8)?; // magic + version + kind, validated by peek_kind
        let count = r.u32()? as usize;
        let mut table: Vec<(u32, usize)> = Vec::with_capacity(count.min(64));
        let mut prev: Option<u32> = None;
        for _ in 0..count {
            let tag = r.u32()?;
            let len = r.length("section length")?;
            if !known_tags.contains(&tag) {
                return Err(WireError::UnknownSection { tag });
            }
            if prev.is_some_and(|p| p >= tag) {
                return Err(WireError::DuplicateSection { tag });
            }
            prev = Some(tag);
            table.push((tag, len));
        }
        let mut entries = Vec::with_capacity(table.len());
        for (tag, len) in table {
            let payload = r.bytes(len)?;
            entries.push((tag, payload));
        }
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                count: r.remaining(),
            });
        }
        Ok(Sections { entries })
    }

    /// The payload of a required section.
    pub(crate) fn require(&self, tag: u32) -> Result<&'a [u8], WireError> {
        self.get(tag).ok_or(WireError::MissingSection { tag })
    }

    /// The payload of an optional section, if present.
    pub(crate) fn get(&self, tag: u32) -> Option<&'a [u8]> {
        self.entries
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
    }
}

/// Asserts a section reader consumed its payload exactly.
pub(crate) fn expect_drained(r: &Reader<'_>, tag: u32) -> Result<(), WireError> {
    if r.remaining() != 0 {
        return Err(WireError::BadSectionLength { tag });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ArtifactWriter::new(Kind::ScanConfig);
        let mut payload = Vec::new();
        payload.put_u64(7);
        payload.put_u32(3);
        payload.put_u128(1 << 100);
        payload.put_f64(0.5);
        w.section(1, payload);
        let bytes = w.finish();

        let sections = Sections::parse(&bytes, Kind::ScanConfig, &[1]).unwrap();
        let mut r = Reader::new(sections.require(1).unwrap());
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.f64().unwrap(), 0.5);
        expect_drained(&r, 1).unwrap();
    }

    #[test]
    fn non_canonical_tables_rejected() {
        let mut w = ArtifactWriter::new(Kind::ScanConfig);
        w.section(1, vec![1, 2, 3]);
        let mut bytes = w.finish();

        // Unknown tag.
        assert_eq!(
            Sections::parse(&bytes, Kind::ScanConfig, &[2]).unwrap_err(),
            WireError::UnknownSection { tag: 1 }
        );
        // Wrong kind.
        assert_eq!(
            Sections::parse(&bytes, Kind::XMap, &[1]).unwrap_err(),
            WireError::WrongKind {
                expected: Kind::XMap,
                got: Kind::ScanConfig
            }
        );
        // Trailing bytes.
        bytes.push(0);
        assert_eq!(
            Sections::parse(&bytes, Kind::ScanConfig, &[1]).unwrap_err(),
            WireError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn duplicate_sections_rejected() {
        // Hand-build a table with the same tag twice.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&Kind::ScanConfig.code().to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(&0u64.to_le_bytes());
        }
        assert_eq!(
            Sections::parse(&bytes, Kind::ScanConfig, &[1]).unwrap_err(),
            WireError::DuplicateSection { tag: 1 }
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut w = ArtifactWriter::new(Kind::ScanConfig);
        w.section(1, vec![0; 16]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let err = Sections::parse(&bytes[..cut], Kind::ScanConfig, &[1]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }
}
