//! Dense GF(2) matrices.

use crate::BitVec;
use std::fmt;

/// A dense matrix over GF(2), stored as one [`BitVec`] per row.
///
/// Used for the X-dependency matrices of the X-canceling MISR (rows = MISR
/// bits, columns = X symbols) and for generic GF(2) linear algebra.
///
/// # Examples
///
/// ```
/// use xhc_bits::BitMatrix;
///
/// let mut m = BitMatrix::zero(2, 3);
/// m.set(0, 1, true);
/// m.set(1, 2, true);
/// m.xor_rows(1, 0); // row1 ^= row0
/// assert!(m.get(1, 1) && m.get(1, 2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(cols); rows],
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from row bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        Self::from_sized_rows(rows, cols)
    }

    /// Builds a matrix from row bit vectors with an explicit column count
    /// (needed to keep the width of a zero-row matrix).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `cols`.
    pub fn from_sized_rows(rows: Vec<BitVec>, cols: usize) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        BitMatrix { rows, cols }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// The element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// Sets the element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.rows[row].set(col, value);
    }

    /// A view of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, row: usize) -> &BitVec {
        &self.rows[row]
    }

    /// Replaces row `row`.
    ///
    /// # Panics
    ///
    /// Panics if out of range or if the new row has the wrong length.
    pub fn set_row(&mut self, row: usize, value: BitVec) {
        assert_eq!(value.len(), self.cols, "row length mismatch");
        self.rows[row] = value;
    }

    /// XORs row `src` into row `dst` (`dst ^= src`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn xor_rows(&mut self, dst: usize, src: usize) {
        assert!(dst != src, "cannot xor a row into itself");
        let (a, b) = if dst < src {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        a.xor_with(b);
    }

    /// Swaps two rows.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        self.rows.swap(a, b);
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from `num_cols`.
    pub fn push_row(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.rows.push(row);
    }

    /// Whether row `row` is all-zero.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row_is_zero(&self, row: usize) -> bool {
        self.rows[row].none()
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Matrix-vector product over GF(2): returns `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        let mut out = BitVec::zeros(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if row.intersection_count(v) % 2 == 1 {
                out.set(i, true);
            }
        }
        out
    }

    /// The rank of the matrix over GF(2).
    ///
    /// Does not modify `self`; works word-level on a flat scratch copy
    /// (forward elimination only — rank needs no back-substitution).
    pub fn rank(&self) -> usize {
        const WORD_BITS: usize = 64;
        let m = self.rows.len();
        let stride = self.cols.div_ceil(WORD_BITS);
        if m == 0 || stride == 0 {
            return 0;
        }
        let mut data: Vec<u64> = Vec::with_capacity(m * stride);
        for row in &self.rows {
            data.extend_from_slice(row.as_words());
        }

        let mut rank = 0;
        let mut pivot_buf = vec![0u64; stride];
        for col in 0..self.cols {
            let wi = col / WORD_BITS;
            let mask = 1u64 << (col % WORD_BITS);
            let Some(pivot) = (rank..m).find(|&r| data[r * stride + wi] & mask != 0) else {
                continue;
            };
            if pivot != rank {
                for k in 0..stride {
                    data.swap(rank * stride + k, pivot * stride + k);
                }
            }
            pivot_buf.copy_from_slice(&data[rank * stride..(rank + 1) * stride]);
            // Eliminate below the pivot only; rows above cannot regain
            // this column, and rank is unaffected.
            for r in rank + 1..m {
                if data[r * stride + wi] & mask != 0 {
                    let row = &mut data[r * stride..(r + 1) * stride];
                    for (a, b) in row.iter_mut().zip(&pivot_buf) {
                        *a ^= b;
                    }
                }
            }
            rank += 1;
            if rank == m {
                break;
            }
        }
        rank
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{}:", self.rows.len(), self.cols)?;
        for row in self.rows.iter().take(32) {
            writeln!(f, "  {row}")?;
        }
        if self.rows.len() > 32 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_full_rank() {
        let m = BitMatrix::identity(8);
        assert_eq!(m.rank(), 8);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(m.get(i, j), i == j);
            }
        }
    }

    #[test]
    fn zero_has_rank_zero() {
        assert_eq!(BitMatrix::zero(5, 7).rank(), 0);
    }

    #[test]
    fn xor_rows_both_directions() {
        let mut m = BitMatrix::zero(3, 4);
        m.set(0, 0, true);
        m.set(2, 3, true);
        m.xor_rows(2, 0); // row2 ^= row0
        assert!(m.get(2, 0) && m.get(2, 3));
        m.xor_rows(0, 2); // row0 ^= row2 -> row0 = 0001
        assert!(!m.get(0, 0) && m.get(0, 3));
    }

    #[test]
    #[should_panic(expected = "cannot xor a row into itself")]
    fn xor_self_panics() {
        BitMatrix::zero(2, 2).xor_rows(1, 1);
    }

    #[test]
    fn duplicate_rows_reduce_rank() {
        let row = BitVec::from_indices(5, [1, 3]);
        let m = BitMatrix::from_rows(vec![row.clone(), row.clone(), BitVec::zeros(5)]);
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn rank_of_fig3_matrix() {
        // The paper's Fig. 3: 6 MISR bits over 4 X's; 2 X-free rows exist,
        // so the X-dependency matrix has rank 4 (= 6 - 2).
        let rows = vec![
            BitVec::from_indices(4, [0]),       // M1: X1
            BitVec::from_indices(4, [0, 1, 2]), // M2: X1 X2 X3
            BitVec::from_indices(4, [2]),       // M3: X3
            BitVec::from_indices(4, [0]),       // M4: X1
            BitVec::from_indices(4, [0, 2]),    // M5: X1 X3
            BitVec::from_indices(4, [2, 3]),    // M6: X3 X4
        ];
        let m = BitMatrix::from_rows(rows);
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn mul_vec() {
        let m = BitMatrix::from_rows(vec![
            BitVec::from_indices(3, [0, 1]),
            BitVec::from_indices(3, [1, 2]),
        ]);
        let v = BitVec::from_indices(3, [1]);
        let out = m.mul_vec(&v);
        assert!(out.get(0) && out.get(1));
        let v2 = BitVec::from_indices(3, [0, 1]);
        let out2 = m.mul_vec(&v2);
        assert!(!out2.get(0) && out2.get(1));
    }

    #[test]
    fn push_and_set_row() {
        let mut m = BitMatrix::zero(1, 3);
        m.push_row(BitVec::from_indices(3, [2]));
        assert_eq!(m.num_rows(), 2);
        m.set_row(0, BitVec::from_indices(3, [0]));
        assert!(m.get(0, 0));
        assert!(!m.row_is_zero(1));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn push_wrong_len_panics() {
        BitMatrix::zero(1, 3).push_row(BitVec::zeros(4));
    }
}
