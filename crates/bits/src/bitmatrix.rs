//! A packed, read-only bit matrix for word-sweep superset counting.
//!
//! The partition engine's cost-only candidate evaluator views the X map
//! as an incidence matrix — one row per X-capturing cell, one column per
//! test pattern — and answers, for a candidate binary split `(A, B)` of a
//! partition, *how many rows are supersets of `A`* and *how many are
//! supersets of `B`*, using nothing but word-level `AND`/`ANDNOT` and
//! early-exit compares. That pair of counts is exactly what the paper's
//! cost function `L·C·#partitions + m·q·leakedX/(m−q)` needs (a child's
//! masked X total is `#superset-rows × |child|`), so a split candidate
//! can be priced without materialising any partition state.

use crate::bitvec::BitVec;

const WORD_BITS: usize = 64;

/// A dense rows × universe bit matrix packed into `u64` words, row-major.
///
/// Rows are immutable once built; the matrix is constructed once per
/// engine run from the X map's columnar pattern sets and then shared
/// read-only across worker threads.
///
/// # Examples
///
/// ```
/// use xhc_bits::{BitVec, XBitMatrix};
///
/// let rows = [
///     BitVec::from_indices(70, [0, 1, 65]),
///     BitVec::from_indices(70, [0, 65]),
///     BitVec::from_indices(70, [3]),
/// ];
/// let m = XBitMatrix::from_rows(70, rows.iter());
/// assert_eq!(m.num_rows(), 3);
/// assert_eq!(m.stride(), 2);
///
/// // Rows 0 and 1 are supersets of {0, 65}; row 2 is a superset of {3}.
/// let a = BitVec::from_indices(70, [0, 65]);
/// let b = BitVec::from_indices(70, [3]);
/// let word_ids = [0u32, 1];
/// let (na, nb) = m.count_supersets_pair(
///     &[0, 1, 2],
///     &word_ids,
///     a.as_words(),
///     b.as_words(),
/// );
/// assert_eq!((na, nb), (2, 1));
/// ```
#[derive(Debug, Clone)]
pub struct XBitMatrix {
    words: Vec<u64>,
    stride: usize,
    rows: usize,
    universe: usize,
}

impl XBitMatrix {
    /// Packs an iterator of equal-length rows (each a [`BitVec`] over
    /// `universe` bits) into a row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `universe`.
    pub fn from_rows<'a, I>(universe: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let stride = universe.div_ceil(WORD_BITS);
        let mut words = Vec::new();
        let mut n = 0usize;
        for row in rows {
            assert_eq!(
                row.len(),
                universe,
                "row length must match the matrix universe"
            );
            words.extend_from_slice(row.as_words());
            n += 1;
        }
        XBitMatrix {
            words,
            stride,
            rows: n,
            universe,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Bits per row.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Words per row. Scratch buffers passed to the sweep kernels must
    /// hold at least this many words.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The backing words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rows()`.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.stride..(r + 1) * self.stride]
    }

    /// Counts, over the listed rows, how many are supersets of `a` and
    /// how many are supersets of `b` — the two children of a candidate
    /// binary split.
    ///
    /// `word_ids` must list every word index at which `a` or `b` has a
    /// set bit (indices may be a superset of that; each must be
    /// `< stride()`). Words outside `word_ids` are never read, so `a`
    /// and `b` may be scratch buffers holding garbage there — the
    /// no-zeroing contract that makes per-candidate evaluation
    /// allocation-free.
    ///
    /// The subset test per row is `a[w] & !row[w] == 0` over `word_ids`
    /// with early exit once both tests have failed.
    ///
    /// # Panics
    ///
    /// Panics if a row id or word id is out of range (by slice indexing).
    pub fn count_supersets_pair(
        &self,
        row_ids: &[u32],
        word_ids: &[u32],
        a: &[u64],
        b: &[u64],
    ) -> (usize, usize) {
        xhc_trace::counter_add("xbm.superset_calls", 1);
        xhc_trace::counter_add("xbm.rows_tested", row_ids.len() as u64);
        let mut na = 0usize;
        let mut nb = 0usize;
        for &r in row_ids {
            let row = self.row(r as usize);
            let mut a_sub = true;
            let mut b_sub = true;
            for &w in word_ids {
                let w = w as usize;
                let not_row = !row[w];
                a_sub &= a[w] & not_row == 0;
                b_sub &= b[w] & not_row == 0;
                if !(a_sub || b_sub) {
                    break;
                }
            }
            na += usize::from(a_sub);
            nb += usize::from(b_sub);
        }
        (na, nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_supersets(rows: &[BitVec], x: &BitVec) -> usize {
        rows.iter().filter(|r| x.is_subset_of(r)).count()
    }

    #[test]
    fn empty_matrix() {
        let m = XBitMatrix::from_rows(10, std::iter::empty());
        assert_eq!(m.num_rows(), 0);
        assert_eq!(m.stride(), 1);
        let a = BitVec::zeros(10);
        let (na, nb) = m.count_supersets_pair(&[], &[0], a.as_words(), a.as_words());
        assert_eq!((na, nb), (0, 0));
    }

    #[test]
    fn row_roundtrip() {
        let rows = [
            BitVec::from_indices(130, [0, 64, 129]),
            BitVec::from_indices(130, [63, 64, 65]),
        ];
        let m = XBitMatrix::from_rows(130, rows.iter());
        assert_eq!(m.stride(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_words());
        }
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_row_length_panics() {
        let bad = BitVec::zeros(65);
        XBitMatrix::from_rows(64, std::iter::once(&bad));
    }

    #[test]
    fn superset_counts_match_naive_across_word_boundaries() {
        // Universes straddling the word boundary, the kernel's edge zone.
        for universe in [63usize, 64, 65, 127, 128, 129] {
            let mut state = 0x9E3779B97F4A7C15u64 ^ universe as u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let rows: Vec<BitVec> = (0..40)
                .map(|_| BitVec::from_indices(universe, (0..universe).filter(|_| next() % 3 == 0)))
                .collect();
            let m = XBitMatrix::from_rows(universe, rows.iter());
            let word_ids: Vec<u32> = (0..m.stride() as u32).collect();
            let row_ids: Vec<u32> = (0..rows.len() as u32).collect();
            for trial in 0..8 {
                let a = BitVec::from_indices(
                    universe,
                    (0..universe).filter(|_| next() % (3 + trial) == 0),
                );
                let mut b = a.clone();
                b.negate();
                let (na, nb) =
                    m.count_supersets_pair(&row_ids, &word_ids, a.as_words(), b.as_words());
                assert_eq!(na, naive_supersets(&rows, &a), "universe {universe}");
                assert_eq!(nb, naive_supersets(&rows, &b), "universe {universe}");
            }
        }
    }

    #[test]
    fn scratch_garbage_outside_word_ids_is_ignored() {
        // The no-zeroing contract: words not listed in word_ids may hold
        // arbitrary garbage without affecting the counts.
        let rows = [
            BitVec::from_indices(192, [1, 70]),
            BitVec::from_indices(192, [1]),
        ];
        let m = XBitMatrix::from_rows(192, rows.iter());
        let mut a = vec![!0u64; 3];
        let mut b = vec![!0u64; 3];
        // Only word 0 carries real query bits: a = {1}, b = {}.
        a[0] = 1 << 1;
        b[0] = 0;
        let (na, nb) = m.count_supersets_pair(&[0, 1], &[0], &a, &b);
        assert_eq!((na, nb), (2, 2));
    }

    #[test]
    fn restricted_row_ids_only_count_listed_rows() {
        let rows = [
            BitVec::from_indices(64, [5]),
            BitVec::from_indices(64, [5]),
            BitVec::from_indices(64, [5]),
        ];
        let m = XBitMatrix::from_rows(64, rows.iter());
        let a = BitVec::from_indices(64, [5]);
        let empty = BitVec::zeros(64);
        let (na, nb) = m.count_supersets_pair(&[0, 2], &[0], a.as_words(), empty.as_words());
        assert_eq!((na, nb), (2, 2));
    }
}
