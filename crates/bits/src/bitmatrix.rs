//! A packed, read-only bit matrix for word-sweep superset counting.
//!
//! The partition engine's cost-only candidate evaluator views the X map
//! as an incidence matrix — one row per X-capturing cell, one column per
//! test pattern — and answers, for a candidate binary split `(A, B)` of a
//! partition, *how many rows are supersets of `A`* and *how many are
//! supersets of `B`*, using nothing but word-level `AND`/`ANDNOT` and
//! early-exit compares. That pair of counts is exactly what the paper's
//! cost function `L·C·#partitions + m·q·leakedX/(m−q)` needs (a child's
//! masked X total is `#superset-rows × |child|`), so a split candidate
//! can be priced without materialising any partition state.
//!
//! The sweep kernel is written for full-size circuits (CKT-A: 505,050
//! cells × 3,000 patterns): per-row accumulation runs in four explicit
//! `u64` violation lanes (no `unsafe` — shaped so LLVM autovectorizes
//! the contiguous fast path), and [`XBitMatrix::count_supersets_pair_sharded`]
//! splits the row sweep into contiguous bands evaluated on an `xhc-par`
//! pool with a fixed-order partial-count fold, so one candidate's sweep
//! parallelizes without perturbing the counts.

use crate::bitvec::BitVec;

const WORD_BITS: usize = 64;

/// Accumulator width of the unrolled sweep: four independent `u64`
/// violation lanes per query, matching a 256-bit vector register.
const LANES: usize = 4;

/// Per-row subset test over an explicit word-id list, in [`LANES`]-wide
/// violation lanes: lane `k` accumulates `a[w] & !row[w]` over every
/// `LANES`-th word, so `a ⊆ row` iff the OR of all lanes is zero. One
/// early-exit check per lane block (not per word) keeps the
/// bound-pruning exit while leaving the lane ops branch-free.
#[inline]
fn sweep_row_indexed(row: &[u64], word_ids: &[u32], a: &[u64], b: &[u64]) -> (bool, bool) {
    let mut va = [0u64; LANES];
    let mut vb = [0u64; LANES];
    let mut blocks = word_ids.chunks_exact(LANES);
    for block in &mut blocks {
        for k in 0..LANES {
            let w = block[k] as usize;
            let not_row = !row[w];
            va[k] |= a[w] & not_row;
            vb[k] |= b[w] & not_row;
        }
        if (va[0] | va[1] | va[2] | va[3]) != 0 && (vb[0] | vb[1] | vb[2] | vb[3]) != 0 {
            return (false, false);
        }
    }
    let mut ra = va[0] | va[1] | va[2] | va[3];
    let mut rb = vb[0] | vb[1] | vb[2] | vb[3];
    for &w in blocks.remainder() {
        let w = w as usize;
        let not_row = !row[w];
        ra |= a[w] & not_row;
        rb |= b[w] & not_row;
    }
    (ra == 0, rb == 0)
}

/// The contiguous fast path of [`sweep_row_indexed`]: `row`, `a` and `b`
/// are already sliced to the partition's word window, so the lanes read
/// consecutive words — the shape LLVM turns into vector loads. Lane
/// accumulation is identical to the indexed path, so the counts are too.
#[inline]
fn sweep_row_contig(row: &[u64], a: &[u64], b: &[u64]) -> (bool, bool) {
    let mut va = [0u64; LANES];
    let mut vb = [0u64; LANES];
    let mut row_blocks = row.chunks_exact(LANES);
    let mut a_blocks = a.chunks_exact(LANES);
    let mut b_blocks = b.chunks_exact(LANES);
    for ((rw, aw), bw) in (&mut row_blocks).zip(&mut a_blocks).zip(&mut b_blocks) {
        for k in 0..LANES {
            let not_row = !rw[k];
            va[k] |= aw[k] & not_row;
            vb[k] |= bw[k] & not_row;
        }
        if (va[0] | va[1] | va[2] | va[3]) != 0 && (vb[0] | vb[1] | vb[2] | vb[3]) != 0 {
            return (false, false);
        }
    }
    let mut ra = va[0] | va[1] | va[2] | va[3];
    let mut rb = vb[0] | vb[1] | vb[2] | vb[3];
    for ((rw, aw), bw) in row_blocks
        .remainder()
        .iter()
        .zip(a_blocks.remainder())
        .zip(b_blocks.remainder())
    {
        let not_row = !rw;
        ra |= aw & not_row;
        rb |= bw & not_row;
    }
    (ra == 0, rb == 0)
}

/// A dense rows × universe bit matrix packed into `u64` words, row-major.
///
/// Rows are immutable once built; the matrix is constructed once per
/// engine run from the X map's columnar pattern sets and then shared
/// read-only across worker threads.
///
/// # Examples
///
/// ```
/// use xhc_bits::{BitVec, XBitMatrix};
///
/// let rows = [
///     BitVec::from_indices(70, [0, 1, 65]),
///     BitVec::from_indices(70, [0, 65]),
///     BitVec::from_indices(70, [3]),
/// ];
/// let m = XBitMatrix::from_rows(70, rows.iter());
/// assert_eq!(m.num_rows(), 3);
/// assert_eq!(m.stride(), 2);
///
/// // Rows 0 and 1 are supersets of {0, 65}; row 2 is a superset of {3}.
/// let a = BitVec::from_indices(70, [0, 65]);
/// let b = BitVec::from_indices(70, [3]);
/// let word_ids = [0u32, 1];
/// let (na, nb) = m.count_supersets_pair(
///     &[0, 1, 2],
///     &word_ids,
///     a.as_words(),
///     b.as_words(),
/// );
/// assert_eq!((na, nb), (2, 1));
/// ```
#[derive(Debug, Clone)]
pub struct XBitMatrix {
    words: Vec<u64>,
    stride: usize,
    rows: usize,
    universe: usize,
}

impl XBitMatrix {
    /// Packs an iterator of equal-length rows (each a [`BitVec`] over
    /// `universe` bits) into a row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `universe`.
    pub fn from_rows<'a, I>(universe: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let rows = rows.into_iter();
        let mut b = XBitMatrixBuilder::with_capacity(universe, rows.size_hint().0);
        for row in rows {
            b.push_row(row);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Bits per row.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Words per row. Scratch buffers passed to the sweep kernels must
    /// hold at least this many words.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The backing words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rows()`.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.stride..(r + 1) * self.stride]
    }

    /// Counts, over the listed rows, how many are supersets of `a` and
    /// how many are supersets of `b` — the two children of a candidate
    /// binary split.
    ///
    /// `word_ids` must list, in strictly ascending order, every word
    /// index at which `a` or `b` has a set bit (indices may be a
    /// superset of that; each must be `< stride()`). Words outside
    /// `word_ids` are never read, so `a` and `b` may be scratch buffers
    /// holding garbage there — the no-zeroing contract that makes
    /// per-candidate evaluation allocation-free. When the listed ids
    /// form one consecutive run (the common case at full size, where a
    /// partition's pattern words are dense) the sweep takes a contiguous
    /// fast path over word slices.
    ///
    /// The subset test per row is `a[w] & !row[w] == 0` over `word_ids`,
    /// accumulated in four independent violation lanes with an early
    /// exit once both tests have failed.
    ///
    /// # Panics
    ///
    /// Panics if a row id or word id is out of range (by slice indexing).
    pub fn count_supersets_pair(
        &self,
        row_ids: &[u32],
        word_ids: &[u32],
        a: &[u64],
        b: &[u64],
    ) -> (usize, usize) {
        xhc_trace::counter_add("xbm.superset_calls", 1);
        xhc_trace::counter_add("xbm.rows_tested", row_ids.len() as u64);
        self.count_pair_rows(row_ids, word_ids, a, b)
    }

    /// [`XBitMatrix::count_supersets_pair`] with the row sweep split into
    /// `shards` contiguous bands of `row_ids`, evaluated on up to
    /// `threads` `xhc-par` workers.
    ///
    /// Each band contributes an independent `(supersets-of-a,
    /// supersets-of-b)` partial count; the partials are summed in band
    /// order, so the result is bit-identical to the unsharded kernel for
    /// every `shards`/`threads` combination (integer addition over
    /// disjoint row bands is order-insensitive, and the fold order is
    /// fixed anyway). `shards <= 1` degenerates to the unsharded kernel
    /// with no pool involvement.
    pub fn count_supersets_pair_sharded(
        &self,
        row_ids: &[u32],
        word_ids: &[u32],
        a: &[u64],
        b: &[u64],
        shards: usize,
        threads: usize,
    ) -> (usize, usize) {
        let shards = shards.clamp(1, row_ids.len().max(1));
        if shards <= 1 {
            return self.count_supersets_pair(row_ids, word_ids, a, b);
        }
        xhc_trace::counter_add("xbm.superset_calls", 1);
        xhc_trace::counter_add("xbm.rows_tested", row_ids.len() as u64);
        xhc_trace::counter_add("xbm.shards", shards as u64);
        xhc_par::par_shard_reduce_threads(
            threads,
            row_ids.len(),
            shards,
            (0usize, 0usize),
            |band| self.count_pair_rows(&row_ids[band], word_ids, a, b),
            |(na, nb), (pa, pb)| (na + pa, nb + pb),
        )
    }

    /// The shared row loop behind both public sweep entry points.
    /// Emits no trace counters so a sharded call costs the same
    /// disabled-path atomics as an unsharded one.
    fn count_pair_rows(
        &self,
        row_ids: &[u32],
        word_ids: &[u32],
        a: &[u64],
        b: &[u64],
    ) -> (usize, usize) {
        debug_assert!(
            word_ids.windows(2).all(|w| w[0] < w[1]),
            "word_ids must be strictly ascending"
        );
        let mut na = 0usize;
        let mut nb = 0usize;
        // One consecutive run of word ids ⇒ slice out the window once and
        // sweep contiguously (vectorizable); otherwise gather by index.
        let contig = match (word_ids.first(), word_ids.last()) {
            (Some(&lo), Some(&hi)) => (hi - lo) as usize == word_ids.len() - 1,
            _ => false,
        };
        if contig {
            let lo = word_ids[0] as usize;
            let hi = *word_ids.last().expect("non-empty") as usize + 1;
            xhc_trace::counter_add("xbm.lane_words", (hi - lo) as u64 & !(LANES as u64 - 1));
            let aw = &a[lo..hi];
            let bw = &b[lo..hi];
            for &r in row_ids {
                let row = &self.row(r as usize)[lo..hi];
                let (a_sub, b_sub) = sweep_row_contig(row, aw, bw);
                na += usize::from(a_sub);
                nb += usize::from(b_sub);
            }
        } else {
            xhc_trace::counter_add(
                "xbm.lane_words",
                word_ids.len() as u64 & !(LANES as u64 - 1),
            );
            for &r in row_ids {
                let row = self.row(r as usize);
                let (a_sub, b_sub) = sweep_row_indexed(row, word_ids, a, b);
                na += usize::from(a_sub);
                nb += usize::from(b_sub);
            }
        }
        (na, nb)
    }
}

/// Streaming constructor for [`XBitMatrix`]: rows are appended one at a
/// time directly into the packed row-major buffer, reserved once to the
/// expected size — a 505k-row × 3000-pattern matrix builds in one pass
/// with no intermediate row materialisation and no growth reallocations.
///
/// # Examples
///
/// ```
/// use xhc_bits::{BitVec, XBitMatrixBuilder};
///
/// let mut b = XBitMatrixBuilder::with_capacity(70, 2);
/// b.push_row(&BitVec::from_indices(70, [0, 65]));
/// b.push_row(&BitVec::from_indices(70, [3]));
/// let m = b.finish();
/// assert_eq!(m.num_rows(), 2);
/// assert_eq!(m.row(1)[0], 1 << 3);
/// ```
#[derive(Debug)]
pub struct XBitMatrixBuilder {
    words: Vec<u64>,
    stride: usize,
    universe: usize,
    rows: usize,
}

impl XBitMatrixBuilder {
    /// A builder for a matrix over `universe` columns, with backing
    /// storage reserved for `expected_rows` rows up front.
    pub fn with_capacity(universe: usize, expected_rows: usize) -> Self {
        let stride = universe.div_ceil(WORD_BITS);
        XBitMatrixBuilder {
            words: Vec::with_capacity(expected_rows.saturating_mul(stride)),
            stride,
            universe,
            rows: 0,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != universe`.
    pub fn push_row(&mut self, row: &BitVec) {
        assert_eq!(
            row.len(),
            self.universe,
            "row length must match the matrix universe"
        );
        self.push_row_words(row.as_words());
    }

    /// Appends one row given directly as packed words (tail bits beyond
    /// the universe must be zero, as [`BitVec`] guarantees).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != stride` (i.e. `universe.div_ceil(64)`).
    pub fn push_row_words(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.stride,
            "row word count must match the matrix stride"
        );
        self.words.extend_from_slice(words);
        self.rows += 1;
    }

    /// Rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Finishes the matrix, emitting the `xbm.stream_rows` trace counter
    /// with the number of rows streamed in.
    pub fn finish(self) -> XBitMatrix {
        xhc_trace::counter_add("xbm.stream_rows", self.rows as u64);
        XBitMatrix {
            words: self.words,
            stride: self.stride,
            rows: self.rows,
            universe: self.universe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_supersets(rows: &[BitVec], x: &BitVec) -> usize {
        rows.iter().filter(|r| x.is_subset_of(r)).count()
    }

    #[test]
    fn empty_matrix() {
        let m = XBitMatrix::from_rows(10, std::iter::empty());
        assert_eq!(m.num_rows(), 0);
        assert_eq!(m.stride(), 1);
        let a = BitVec::zeros(10);
        let (na, nb) = m.count_supersets_pair(&[], &[0], a.as_words(), a.as_words());
        assert_eq!((na, nb), (0, 0));
    }

    #[test]
    fn row_roundtrip() {
        let rows = [
            BitVec::from_indices(130, [0, 64, 129]),
            BitVec::from_indices(130, [63, 64, 65]),
        ];
        let m = XBitMatrix::from_rows(130, rows.iter());
        assert_eq!(m.stride(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_words());
        }
    }

    #[test]
    fn builder_matches_from_rows() {
        let rows: Vec<BitVec> = (0..9)
            .map(|i| BitVec::from_indices(200, [i, i + 64, 199]))
            .collect();
        let via_iter = XBitMatrix::from_rows(200, rows.iter());
        let mut b = XBitMatrixBuilder::with_capacity(200, rows.len());
        for r in &rows {
            b.push_row_words(r.as_words());
        }
        assert_eq!(b.num_rows(), rows.len());
        let via_builder = b.finish();
        assert_eq!(via_builder.num_rows(), via_iter.num_rows());
        assert_eq!(via_builder.stride(), via_iter.stride());
        for i in 0..rows.len() {
            assert_eq!(via_builder.row(i), via_iter.row(i));
        }
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_row_length_panics() {
        let bad = BitVec::zeros(65);
        XBitMatrix::from_rows(64, std::iter::once(&bad));
    }

    #[test]
    #[should_panic(expected = "row word count must match")]
    fn mismatched_word_count_panics() {
        let mut b = XBitMatrixBuilder::with_capacity(64, 1);
        b.push_row_words(&[0, 0]);
    }

    #[test]
    fn superset_counts_match_naive_across_word_boundaries() {
        // Universes straddling the word boundary, the kernel's edge zone —
        // plus 255/256/257 so the lane remainder (stride % 4) hits every
        // residue on multi-block strides.
        for universe in [63usize, 64, 65, 127, 128, 129, 255, 256, 257] {
            let mut state = 0x9E3779B97F4A7C15u64 ^ universe as u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let rows: Vec<BitVec> = (0..40)
                .map(|_| BitVec::from_indices(universe, (0..universe).filter(|_| next() % 3 == 0)))
                .collect();
            let m = XBitMatrix::from_rows(universe, rows.iter());
            let word_ids: Vec<u32> = (0..m.stride() as u32).collect();
            let row_ids: Vec<u32> = (0..rows.len() as u32).collect();
            for trial in 0..8 {
                let a = BitVec::from_indices(
                    universe,
                    (0..universe).filter(|_| next() % (3 + trial) == 0),
                );
                let mut b = a.clone();
                b.negate();
                let (na, nb) =
                    m.count_supersets_pair(&row_ids, &word_ids, a.as_words(), b.as_words());
                assert_eq!(na, naive_supersets(&rows, &a), "universe {universe}");
                assert_eq!(nb, naive_supersets(&rows, &b), "universe {universe}");
            }
        }
    }

    #[test]
    fn sharded_counts_match_unsharded_at_every_shape() {
        let universe = 257usize;
        let mut state = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<BitVec> = (0..50)
            .map(|_| BitVec::from_indices(universe, (0..universe).filter(|_| next() % 4 == 0)))
            .collect();
        let m = XBitMatrix::from_rows(universe, rows.iter());
        let word_ids: Vec<u32> = (0..m.stride() as u32).collect();
        let row_ids: Vec<u32> = (0..rows.len() as u32).collect();
        let a = BitVec::from_indices(universe, (0..universe).filter(|_| next() % 5 == 0));
        let mut b = a.clone();
        b.negate();
        let want = m.count_supersets_pair(&row_ids, &word_ids, a.as_words(), b.as_words());
        for shards in [1usize, 3, 8, 50, 200] {
            for threads in [1usize, 2, 8] {
                let got = m.count_supersets_pair_sharded(
                    &row_ids,
                    &word_ids,
                    a.as_words(),
                    b.as_words(),
                    shards,
                    threads,
                );
                assert_eq!(got, want, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_garbage_outside_word_ids_is_ignored() {
        // The no-zeroing contract: words not listed in word_ids may hold
        // arbitrary garbage without affecting the counts.
        let rows = [
            BitVec::from_indices(192, [1, 70]),
            BitVec::from_indices(192, [1]),
        ];
        let m = XBitMatrix::from_rows(192, rows.iter());
        let mut a = vec![!0u64; 3];
        let mut b = vec![!0u64; 3];
        // Only word 0 carries real query bits: a = {1}, b = {}.
        a[0] = 1 << 1;
        b[0] = 0;
        let (na, nb) = m.count_supersets_pair(&[0, 1], &[0], &a, &b);
        assert_eq!((na, nb), (2, 2));
    }

    #[test]
    fn non_contiguous_word_ids_take_the_indexed_path() {
        // word_ids {0, 2} with garbage in word 1: only the indexed sweep
        // can honour this, and it must still match the naive counts over
        // the listed words.
        let rows = [
            BitVec::from_indices(192, [5, 130]),
            BitVec::from_indices(192, [5]),
            BitVec::from_indices(192, [130]),
        ];
        let m = XBitMatrix::from_rows(192, rows.iter());
        let mut a = vec![!0u64; 3];
        let mut b = vec![!0u64; 3];
        a[0] = 1 << 5;
        a[2] = 1 << (130 - 128);
        b[0] = 0;
        b[2] = 1 << (130 - 128);
        let (na, nb) = m.count_supersets_pair(&[0, 1, 2], &[0, 2], &a, &b);
        assert_eq!((na, nb), (1, 2));
    }

    #[test]
    fn restricted_row_ids_only_count_listed_rows() {
        let rows = [
            BitVec::from_indices(64, [5]),
            BitVec::from_indices(64, [5]),
            BitVec::from_indices(64, [5]),
        ];
        let m = XBitMatrix::from_rows(64, rows.iter());
        let a = BitVec::from_indices(64, [5]);
        let empty = BitVec::zeros(64);
        let (na, nb) = m.count_supersets_pair(&[0, 2], &[0], a.as_words(), empty.as_words());
        assert_eq!((na, nb), (2, 2));
    }
}
