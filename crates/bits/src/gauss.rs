//! Gaussian elimination over GF(2) with combination tracking.
//!
//! The X-canceling MISR expresses every MISR bit as a linear (GF(2))
//! combination of scan-cell symbols. Its X-dependency matrix has one row per
//! MISR bit and one column per X symbol. Row combinations whose X part
//! eliminates to zero are *X-free*: XORing the corresponding MISR bits
//! yields a signature that depends only on known values (the paper's
//! Fig. 3). This module finds those combinations by reducing the augmented
//! matrix `[D | I]` — the identity part records which original rows were
//! XORed together.

use crate::{BitMatrix, BitVec};

/// The result of a combination-tracking Gaussian elimination.
///
/// Produced by [`eliminate`].
#[derive(Debug, Clone)]
pub struct Elimination {
    /// Row-reduced X-dependency part (same shape as the input).
    pub reduced: BitMatrix,
    /// For every row of `reduced`, the set of *original* rows whose XOR
    /// produced it.
    pub combinations: BitMatrix,
    /// Rank of the input matrix.
    pub rank: usize,
    /// The pivot column of each of the first `rank` reduced rows, in
    /// reduction (strictly ascending) order. This is the rank
    /// *certificate*: an independent checker can confirm the claimed rank
    /// by re-eliminating in exactly this column order.
    pub pivot_cols: Vec<usize>,
}

impl Elimination {
    /// Indices of reduced rows whose X-dependency part is all-zero.
    pub fn zero_rows(&self) -> Vec<usize> {
        (0..self.reduced.num_rows())
            .filter(|&r| self.reduced.row_is_zero(r))
            .collect()
    }
}

const WORD_BITS: usize = 64;

/// The flat working form of the augmented matrix `[D | I]`: `m` rows of
/// `stride` contiguous words (dependency part first, combination part
/// after), reduced in place with word-level row operations.
struct FlatElimination {
    data: Vec<u64>,
    stride: usize,
    dep_words: usize,
    rank: usize,
    pivot_cols: Vec<usize>,
}

impl FlatElimination {
    fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    fn dep_row(&self, r: usize) -> &[u64] {
        &self.data[r * self.stride..r * self.stride + self.dep_words]
    }

    fn comb_row(&self, r: usize) -> &[u64] {
        &self.data[r * self.stride + self.dep_words..(r + 1) * self.stride]
    }
}

/// Traced entry point for the flat reduction. The span lives in this
/// thin wrapper (not in the hot loop) so the guard's drop glue never
/// pessimizes the reduction kernel's codegen when tracing is off.
fn eliminate_flat(matrix: &BitMatrix) -> FlatElimination {
    let mut span = xhc_trace::span("gauss.eliminate")
        .arg("rows", matrix.num_rows() as u64)
        .arg("cols", matrix.num_cols() as u64);
    let flat = eliminate_flat_kernel(matrix);
    span.set_arg("rank", flat.rank as u64);
    flat
}

/// Gauss–Jordan reduction of `[matrix | I]` with word-level pivot probes
/// and one batched XOR per row update (dependency and combination parts
/// share a cache-contiguous row, so a row operation is a single pass).
///
/// Kept out-of-line so the traced wrapper's span guard (a `Drop` type)
/// cannot leak unwind edges into this loop's codegen.
#[inline(never)]
fn eliminate_flat_kernel(matrix: &BitMatrix) -> FlatElimination {
    let m = matrix.num_rows();
    let cols = matrix.num_cols();
    let dep_words = cols.div_ceil(WORD_BITS);
    let comb_words = m.div_ceil(WORD_BITS);
    let stride = dep_words + comb_words;
    let mut data = vec![0u64; m * stride];
    for (r, row) in matrix.iter_rows().enumerate() {
        data[r * stride..r * stride + dep_words].copy_from_slice(row.as_words());
        data[r * stride + dep_words + r / WORD_BITS] |= 1u64 << (r % WORD_BITS);
    }

    let mut rank = 0;
    let mut pivot_cols = Vec::with_capacity(m.min(cols));
    let mut pivot_buf = vec![0u64; stride];
    for col in 0..cols {
        let wi = col / WORD_BITS;
        let mask = 1u64 << (col % WORD_BITS);
        let Some(pivot) = (rank..m).find(|&r| data[r * stride + wi] & mask != 0) else {
            continue;
        };
        if pivot != rank {
            for k in 0..stride {
                data.swap(rank * stride + k, pivot * stride + k);
            }
        }
        pivot_buf.copy_from_slice(&data[rank * stride..(rank + 1) * stride]);
        for r in 0..m {
            if r != rank && data[r * stride + wi] & mask != 0 {
                let row = &mut data[r * stride..(r + 1) * stride];
                for (a, b) in row.iter_mut().zip(&pivot_buf) {
                    *a ^= b;
                }
            }
        }
        rank += 1;
        pivot_cols.push(col);
        if rank == m {
            break;
        }
    }

    FlatElimination {
        data,
        stride,
        dep_words,
        rank,
        pivot_cols,
    }
}

/// Row-reduces `matrix` over GF(2), tracking row combinations.
///
/// Returns the reduced matrix together with, for each reduced row, the set
/// of original row indices that were XORed to produce it, and the rank.
///
/// The reduction is a full Gauss–Jordan pass (pivots are eliminated above
/// and below), so zero rows — if any — are exactly the last
/// `num_rows - rank` rows.
///
/// # Examples
///
/// ```
/// use xhc_bits::{BitMatrix, gauss::eliminate};
///
/// let mut d = BitMatrix::zero(3, 2);
/// d.set(0, 0, true);
/// d.set(1, 0, true); // row1 == row0 -> one zero combination exists
/// d.set(2, 1, true);
/// let elim = eliminate(&d);
/// assert_eq!(elim.rank, 2);
/// assert_eq!(elim.zero_rows().len(), 1);
/// ```
pub fn eliminate(matrix: &BitMatrix) -> Elimination {
    let m = matrix.num_rows();
    let cols = matrix.num_cols();
    let flat = eliminate_flat(matrix);
    let reduced = BitMatrix::from_sized_rows(
        (0..m)
            .map(|r| BitVec::from_words(flat.dep_row(r).to_vec(), cols))
            .collect(),
        cols,
    );
    let combinations = BitMatrix::from_sized_rows(
        (0..m)
            .map(|r| BitVec::from_words(flat.comb_row(r).to_vec(), m))
            .collect(),
        m,
    );
    Elimination {
        reduced,
        combinations,
        rank: flat.rank,
        pivot_cols: flat.pivot_cols,
    }
}

/// Finds all independent X-free row combinations of `dependency`.
///
/// Each returned [`BitVec`] has one bit per input row; the set bits name the
/// rows (MISR bits) whose XOR is free of every X column. The number of
/// combinations is `num_rows - rank(dependency)`; they form a basis of the
/// left null space, so any X-free combination is a XOR of the returned ones.
///
/// # Examples
///
/// See the crate-level example, which reproduces the paper's Fig. 3.
pub fn x_free_combinations(dependency: &BitMatrix) -> Vec<BitVec> {
    x_free_combinations_limited(dependency, usize::MAX)
}

/// Like [`x_free_combinations`] but stops after `max` combinations, in the
/// same (reduction) order.
///
/// The time-multiplexed canceling session only streams `q` combinations
/// per halt, so it never needs the full null-space basis materialised;
/// this variant skips building the unused [`BitVec`] rows.
pub fn x_free_combinations_limited(dependency: &BitMatrix, max: usize) -> Vec<BitVec> {
    let flat = eliminate_flat(dependency);
    let m = flat.num_rows();
    let mut out = Vec::new();
    for r in 0..m {
        if out.len() >= max {
            break;
        }
        if flat.dep_row(r).iter().all(|&w| w == 0) {
            out.push(BitVec::from_words(flat.comb_row(r).to_vec(), m));
        }
    }
    out
}

/// Verifies that `combination` (one bit per row of `dependency`) XORs to an
/// all-zero X-dependency vector.
///
/// # Panics
///
/// Panics if `combination.len() != dependency.num_rows()`.
pub fn is_x_free(dependency: &BitMatrix, combination: &BitVec) -> bool {
    assert_eq!(
        combination.len(),
        dependency.num_rows(),
        "combination length must equal the number of rows"
    );
    let mut acc = BitVec::zeros(dependency.num_cols());
    for row in combination.iter_ones() {
        acc.xor_with(dependency.row(row));
    }
    acc.none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_matrix() -> BitMatrix {
        // Rows M1..M6, columns X1..X4 (paper Fig. 3 left-hand matrix).
        BitMatrix::from_rows(vec![
            BitVec::from_indices(4, [0]),
            BitVec::from_indices(4, [0, 1, 2]),
            BitVec::from_indices(4, [2]),
            BitVec::from_indices(4, [0]),
            BitVec::from_indices(4, [0, 2]),
            BitVec::from_indices(4, [2, 3]),
        ])
    }

    #[test]
    fn fig3_yields_two_x_free_rows() {
        let combos = x_free_combinations(&fig3_matrix());
        assert_eq!(combos.len(), 2, "paper finds exactly 2 X-free rows");
        for c in &combos {
            assert!(is_x_free(&fig3_matrix(), c));
            assert!(c.any());
        }
    }

    #[test]
    fn fig3_combinations_span_paper_answer() {
        // The paper reports M1^M3^M5 and M1^M4 as X-free. Our basis may
        // differ, but both paper combinations must be X-free, and each must
        // be expressible over our basis (here: equal to one basis vector or
        // the XOR of the two).
        let dep = fig3_matrix();
        let paper1 = BitVec::from_indices(6, [0, 2, 4]); // M1^M3^M5
        let paper2 = BitVec::from_indices(6, [0, 3]); // M1^M4
        assert!(is_x_free(&dep, &paper1));
        assert!(is_x_free(&dep, &paper2));

        let basis = x_free_combinations(&dep);
        let mut both = basis[0].clone();
        both.xor_with(&basis[1]);
        let candidates = [basis[0].clone(), basis[1].clone(), both];
        assert!(candidates.contains(&paper1) || is_x_free(&dep, &paper1));
        assert!(candidates.contains(&paper2) || is_x_free(&dep, &paper2));
    }

    #[test]
    fn full_rank_matrix_has_no_combos() {
        let m = BitMatrix::identity(4);
        assert!(x_free_combinations(&m).is_empty());
    }

    #[test]
    fn zero_matrix_all_rows_free() {
        let m = BitMatrix::zero(3, 5);
        let combos = x_free_combinations(&m);
        assert_eq!(combos.len(), 3);
        // Singleton combinations of each row.
        for c in &combos {
            assert_eq!(c.count_ones(), 1);
        }
    }

    #[test]
    fn elimination_reports_rank_and_zero_rows_at_bottom() {
        let m = BitMatrix::from_rows(vec![
            BitVec::from_indices(3, [0]),
            BitVec::from_indices(3, [0]),
            BitVec::from_indices(3, [1]),
            BitVec::from_indices(3, [0, 1]),
        ]);
        let e = eliminate(&m);
        assert_eq!(e.rank, 2);
        assert_eq!(e.zero_rows(), vec![2, 3]);
        // Combination rows must reproduce the reduced rows when applied to
        // the original matrix.
        for r in 0..4 {
            let mut acc = BitVec::zeros(3);
            for orig in e.combinations.row(r).iter_ones() {
                acc.xor_with(m.row(orig));
            }
            assert_eq!(&acc, e.reduced.row(r));
        }
    }

    #[test]
    fn pivot_cols_certify_the_rank() {
        // One pivot column per unit of rank, strictly ascending, and each
        // pivot column has exactly one set bit in the reduced matrix (the
        // Gauss–Jordan pass clears it above and below).
        for m in [fig3_matrix(), BitMatrix::identity(4), BitMatrix::zero(3, 5)] {
            let e = eliminate(&m);
            assert_eq!(e.pivot_cols.len(), e.rank);
            assert!(e.pivot_cols.windows(2).all(|w| w[0] < w[1]));
            for (row, &col) in e.pivot_cols.iter().enumerate() {
                assert!(col < m.num_cols());
                assert!(e.reduced.get(row, col), "pivot ({row},{col}) must be set");
                let ones = (0..m.num_rows()).filter(|&r| e.reduced.get(r, col)).count();
                assert_eq!(ones, 1, "pivot column {col} must be a unit column");
            }
        }
    }

    #[test]
    fn combination_count_matches_nullity() {
        // num_rows - rank == number of X-free combinations, always.
        let m = fig3_matrix();
        assert_eq!(x_free_combinations(&m).len(), m.num_rows() - m.rank());
    }

    #[test]
    #[should_panic(expected = "combination length")]
    fn is_x_free_checks_length() {
        is_x_free(&BitMatrix::zero(3, 2), &BitVec::zeros(4));
    }
}
