//! Sets of test-pattern indices.

use crate::BitVec;
use std::fmt;

/// A subset of the test-pattern universe `{0, 1, …, n-1}`.
///
/// The pattern-partitioning algorithm manipulates sets of pattern indices:
/// the X-set of a scan cell (patterns under which it captures X), the
/// member set of a partition, and their intersections. `PatternSet` wraps a
/// [`BitVec`] whose length is the number of test patterns applied, giving
/// the operations domain-appropriate names.
///
/// # Examples
///
/// ```
/// use xhc_bits::PatternSet;
///
/// // Fig. 4: the first scan cell in SC1 captures X under P1, P4, P5, P6
/// // (patterns are 0-indexed here).
/// let xset = PatternSet::from_patterns(8, [0, 3, 4, 5]);
/// let partition = PatternSet::all(8);
/// let (with_x, without_x) = partition.split_by(&xset);
/// assert_eq!(with_x.card(), 4);
/// assert_eq!(without_x.card(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PatternSet {
    bits: BitVec,
}

impl PatternSet {
    /// The empty set over a universe of `universe` patterns.
    pub fn empty(universe: usize) -> Self {
        PatternSet {
            bits: BitVec::zeros(universe),
        }
    }

    /// The full set `{0, …, universe-1}`.
    pub fn all(universe: usize) -> Self {
        PatternSet {
            bits: BitVec::ones(universe),
        }
    }

    /// A set containing the given pattern indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= universe`.
    pub fn from_patterns<I: IntoIterator<Item = usize>>(universe: usize, patterns: I) -> Self {
        PatternSet {
            bits: BitVec::from_indices(universe, patterns),
        }
    }

    /// Builds a set from a raw bit vector (one bit per pattern).
    pub fn from_bits(bits: BitVec) -> Self {
        PatternSet { bits }
    }

    /// The underlying bit vector.
    pub fn as_bits(&self) -> &BitVec {
        &self.bits
    }

    /// Consumes the set, returning the underlying bit vector.
    pub fn into_bits(self) -> BitVec {
        self.bits
    }

    /// Size of the pattern universe.
    pub fn universe(&self) -> usize {
        self.bits.len()
    }

    /// Number of patterns in the set (cardinality).
    pub fn card(&self) -> usize {
        self.bits.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.none()
    }

    /// Whether pattern `p` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `p >= universe`.
    pub fn contains(&self, p: usize) -> bool {
        self.bits.get(p)
    }

    /// Adds pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= universe`.
    pub fn insert(&mut self, p: usize) {
        self.bits.set(p, true);
    }

    /// Removes pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= universe`.
    pub fn remove(&mut self, p: usize) {
        self.bits.set(p, false);
    }

    /// Iterator over member pattern indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_ones()
    }

    /// `|self ∩ other|` without materialising the intersection.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn intersection_card(&self, other: &PatternSet) -> usize {
        self.bits.intersection_count(&other.bits)
    }

    /// The intersection `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn intersection(&self, other: &PatternSet) -> PatternSet {
        let mut bits = self.bits.clone();
        bits.intersect_with(&other.bits);
        PatternSet { bits }
    }

    /// The difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn difference(&self, other: &PatternSet) -> PatternSet {
        let mut bits = self.bits.clone();
        bits.difference_with(&other.bits);
        PatternSet { bits }
    }

    /// The union `self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn union(&self, other: &PatternSet) -> PatternSet {
        let mut bits = self.bits.clone();
        bits.union_with(&other.bits);
        PatternSet { bits }
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn is_subset_of(&self, other: &PatternSet) -> bool {
        self.bits.is_subset_of(&other.bits)
    }

    /// Whether the two sets share no pattern.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn is_disjoint_from(&self, other: &PatternSet) -> bool {
        self.bits.is_disjoint_from(&other.bits)
    }

    /// Splits `self` by a pivot set: returns `(self ∩ pivot, self \ pivot)`.
    ///
    /// This is the elementary binary-partitioning step of the paper's
    /// Algorithm 1: a partition is split into the patterns under which the
    /// selected scan cell captures X and the rest.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn split_by(&self, pivot: &PatternSet) -> (PatternSet, PatternSet) {
        (self.intersection(pivot), self.difference(pivot))
    }
}

impl fmt::Debug for PatternSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PatternSet{{")?;
        let mut first = true;
        for (count, p) in self.iter().enumerate() {
            if count >= 16 {
                write!(f, ", …")?;
                break;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}} ({}/{})", self.card(), self.universe())
    }
}

impl FromIterator<usize> for PatternSet {
    /// Collects pattern indices into a set whose universe is just large
    /// enough to hold the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let universe = indices.iter().max().map_or(0, |m| m + 1);
        PatternSet::from_patterns(universe, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = PatternSet::empty(8);
        assert!(e.is_empty());
        assert_eq!(e.universe(), 8);

        let a = PatternSet::all(8);
        assert_eq!(a.card(), 8);
        assert!(a.contains(7));
    }

    #[test]
    fn membership_mutation() {
        let mut s = PatternSet::empty(10);
        s.insert(3);
        s.insert(7);
        assert!(s.contains(3));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.card(), 1);
    }

    #[test]
    fn algebra() {
        let a = PatternSet::from_patterns(8, [0, 3, 4, 5]);
        let b = PatternSet::from_patterns(8, [0, 1, 3]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![0, 1, 3, 4, 5]);
        assert_eq!(a.intersection_card(&b), 2);
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(a.difference(&b).is_disjoint_from(&b));
    }

    #[test]
    fn split_partitions_universe() {
        // The Fig. 5 first partitioning: pivot = X-set of SC1 cell 1.
        let whole = PatternSet::all(8);
        let pivot = PatternSet::from_patterns(8, [0, 3, 4, 5]);
        let (p1, p2) = whole.split_by(&pivot);
        assert_eq!(p1.iter().collect::<Vec<_>>(), vec![0, 3, 4, 5]);
        assert_eq!(p2.iter().collect::<Vec<_>>(), vec![1, 2, 6, 7]);
        assert!(p1.is_disjoint_from(&p2));
        assert_eq!(p1.card() + p2.card(), whole.card());
    }

    #[test]
    fn collect_from_iterator() {
        let s: PatternSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 9]);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = PatternSet::from_patterns(8, [1, 2]);
        let d = format!("{s:?}");
        assert!(d.contains("PatternSet"));
        assert!(d.contains("(2/8)"));
    }
}
