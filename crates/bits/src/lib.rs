//! Word-packed bit vectors, pattern sets and GF(2) linear algebra.
//!
//! This crate is the arithmetic substrate of the `xhybrid` workspace. It
//! provides:
//!
//! * [`BitVec`] — a growable, word-packed vector of bits with the set
//!   operations the partitioning algorithm needs (union, intersection,
//!   difference, subset tests, rank queries);
//! * [`PatternSet`] — a newtype over [`BitVec`] representing a subset of the
//!   test-pattern universe, the currency of the pattern-partitioning
//!   algorithm;
//! * [`BitMatrix`] — a dense GF(2) matrix with row XOR operations;
//! * [`XBitMatrix`] — a packed cells × patterns incidence matrix with
//!   word-sweep superset-counting kernels, the substrate of the partition
//!   engine's cost-only split evaluator;
//! * [`gauss`] — Gaussian elimination over GF(2) with combination tracking,
//!   used by the X-canceling MISR to find X-free signature combinations
//!   (the paper's Fig. 3).
//!
//! # Examples
//!
//! Finding X-free combinations of MISR bits:
//!
//! ```
//! use xhc_bits::{BitMatrix, gauss::x_free_combinations};
//!
//! // 6 MISR bits, 4 X symbols (the paper's Fig. 3 dependency matrix).
//! let mut dep = BitMatrix::zero(6, 4);
//! for (row, cols) in [
//!     (0, vec![0]),          // M1: X1
//!     (1, vec![0, 1, 2]),    // M2: X1 X2 X3
//!     (2, vec![2]),          // M3: X3
//!     (3, vec![0]),          // M4: X1
//!     (4, vec![0, 2]),       // M5: X1 X3
//!     (5, vec![2, 3]),       // M6: X3 X4
//! ] {
//!     for c in cols {
//!         dep.set(row, c, true);
//!     }
//! }
//! let combos = x_free_combinations(&dep);
//! assert_eq!(combos.len(), 2); // rank 4 over 6 rows -> 2 X-free combos
//! for combo in &combos {
//!     // Each combination of rows XORs to the zero X-dependency vector.
//!     let mut acc = vec![false; 4];
//!     for row in combo.iter_ones() {
//!         for c in 0..4 {
//!             acc[c] ^= dep.get(row, c);
//!         }
//!     }
//!     assert!(acc.iter().all(|&b| !b));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
mod bitvec;
mod matrix;
mod pattern_set;

pub mod gauss;

pub use bitmatrix::{XBitMatrix, XBitMatrixBuilder};
pub use bitvec::BitVec;
pub use matrix::BitMatrix;
pub use pattern_set::PatternSet;
