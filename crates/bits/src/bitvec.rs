//! A growable, word-packed vector of bits.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length, word-packed vector of bits.
///
/// `BitVec` is the workhorse of the workspace: pattern sets, mask words,
/// matrix rows and fault-detection flags are all bit vectors. Bits beyond
/// `len` are kept zero as an internal invariant so that word-level
/// operations (`count_ones`, subset tests, …) never see garbage.
///
/// # Examples
///
/// ```
/// use xhc_bits::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates a bit vector from an iterator of `bool`s.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = BitVec::zeros(0);
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Creates a bit vector of `len` bits with the given indices set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut v = BitVec::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    /// Creates a bit vector of `len` bits backed by the given words
    /// (little-endian bit order within each word). Bits beyond `len` in
    /// the last word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not exactly `len.div_ceil(64)`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count must match bit length"
        );
        let mut v = BitVec { words, len };
        v.mask_tail();
        v
    }

    /// The backing words (64 bits each, little-endian bit order; bits
    /// beyond `len` are zero). The word-level GF(2) kernels build on this.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of backing words (`len.div_ceil(64)`).
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Iterator over the indices of nonzero backing words, ascending.
    ///
    /// A partition's word mask: the sweep kernels of
    /// [`XBitMatrix`](crate::XBitMatrix) restrict their per-row subset
    /// tests to these indices, since any subset of this vector is zero
    /// everywhere else.
    pub fn nonzero_word_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .map(|(i, _)| i)
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit, growing the vector by one.
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.len += 1;
        if self.words.len() * WORD_BITS < self.len {
            self.words.push(0);
        }
        self.set(i, bit);
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let w = index / WORD_BITS;
        let b = index % WORD_BITS;
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips the bit at `index`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn toggle(&mut self, index: usize) -> bool {
        let v = !self.get(index);
        self.set(index, v);
        v
    }

    /// Sets every bit to zero.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Whether no bit is set.
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over all bits as `bool`s, ascending by index.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// In-place bitwise OR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersect_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise XOR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place difference: clears every bit that is set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn difference_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place bitwise NOT (within `len` bits).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Number of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersection_count(&self, other: &BitVec) -> usize {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self` and `other` share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn is_disjoint_from(&self, other: &BitVec) -> bool {
        self.check_len(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    fn check_len(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bit vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        // When len is a multiple of WORD_BITS the tail is already exact.
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec`], produced by
/// [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());

        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.any());
        // Tail bits beyond len must be masked off.
        assert_eq!(o.count_zeros(), 0);
    }

    #[test]
    fn set_get_toggle() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert!(!v.toggle(0));
        assert!(v.toggle(1));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn push_grows() {
        let mut v = BitVec::zeros(0);
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(v.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn iter_ones_crosses_words() {
        let v = BitVec::from_indices(200, [0, 63, 64, 65, 199]);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
        assert_eq!(v.first_one(), Some(0));
    }

    #[test]
    fn set_operations() {
        let a = BitVec::from_indices(100, [1, 2, 3, 70]);
        let b = BitVec::from_indices(100, [2, 3, 4, 71]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 71]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1, 70]);

        let mut x = a.clone();
        x.xor_with(&b);
        assert_eq!(x.iter_ones().collect::<Vec<_>>(), vec![1, 4, 70, 71]);

        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        let small = BitVec::from_indices(100, [2, 3]);
        let big = BitVec::from_indices(100, [1, 2, 3, 4]);
        let other = BitVec::from_indices(100, [50, 60]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_disjoint_from(&other));
        assert!(!small.is_disjoint_from(&big));
        // Every set is a subset of itself and disjoint from the empty set.
        assert!(big.is_subset_of(&big));
        assert!(big.is_disjoint_from(&BitVec::zeros(100)));
    }

    #[test]
    fn negate_masks_tail() {
        let mut v = BitVec::zeros(67);
        v.negate();
        assert_eq!(v.count_ones(), 67);
        v.negate();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits = [true, false, true, true, false];
        let v: BitVec = bits.iter().copied().collect();
        assert_eq!(v.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn display_and_debug() {
        let v = BitVec::from_indices(5, [0, 4]);
        assert_eq!(v.to_string(), "10001");
        assert!(format!("{v:?}").contains("BitVec[5;"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = BitVec::zeros(10);
        a.union_with(&BitVec::zeros(11));
    }
}
