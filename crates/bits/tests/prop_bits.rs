//! Randomized invariant tests for the GF(2) substrate (deterministic
//! seeded loops; the invariants must hold for *any* input).

use xhc_bits::{gauss, BitMatrix, BitVec, PatternSet};
use xhc_prng::XhcRng;

const CASES: u64 = 64;

fn random_bitvec(rng: &mut XhcRng, len: usize) -> BitVec {
    BitVec::from_bools((0..len).map(|_| rng.gen_bool(0.5)))
}

fn random_matrix(rng: &mut XhcRng, rows: usize, cols: usize) -> BitMatrix {
    BitMatrix::from_rows((0..rows).map(|_| random_bitvec(rng, cols)).collect())
}

fn random_pattern_set(rng: &mut XhcRng, universe: usize, max_card: usize) -> PatternSet {
    let card = rng.gen_range(0..max_card);
    PatternSet::from_patterns(universe, (0..card).map(|_| rng.gen_index(universe)))
}

#[test]
fn union_card_is_inclusion_exclusion() {
    let mut rng = XhcRng::seed_from_u64(0x3B17);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 150);
        let b = random_bitvec(&mut rng, 150);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(
            u.count_ones(),
            a.count_ones() + b.count_ones() - a.intersection_count(&b)
        );
    }
}

#[test]
fn xor_twice_is_identity() {
    let mut rng = XhcRng::seed_from_u64(0x3B18);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 200);
        let b = random_bitvec(&mut rng, 200);
        let mut x = a.clone();
        x.xor_with(&b);
        x.xor_with(&b);
        assert_eq!(x, a);
    }
}

#[test]
fn negate_complements_count() {
    let mut rng = XhcRng::seed_from_u64(0x3B19);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 131);
        let ones = a.count_ones();
        let mut n = a.clone();
        n.negate();
        assert_eq!(n.count_ones(), 131 - ones);
        assert!(n.is_disjoint_from(&a));
    }
}

#[test]
fn iter_ones_matches_get() {
    let mut rng = XhcRng::seed_from_u64(0x3B1A);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 100);
        let from_iter: Vec<usize> = a.iter_ones().collect();
        let from_get: Vec<usize> = (0..100).filter(|&i| a.get(i)).collect();
        assert_eq!(from_iter, from_get);
    }
}

#[test]
fn subset_iff_difference_empty() {
    let mut rng = XhcRng::seed_from_u64(0x3B1B);
    for case in 0..CASES {
        let a = random_bitvec(&mut rng, 90);
        // Mix in actual subsets: random vectors of 90 bits are almost
        // never subsets of each other, so exercise both branches.
        let b = if case % 2 == 0 {
            let mut b = random_bitvec(&mut rng, 90);
            b.union_with(&a);
            b
        } else {
            random_bitvec(&mut rng, 90)
        };
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(a.is_subset_of(&b), d.none());
    }
}

#[test]
fn split_by_is_a_partition() {
    let mut rng = XhcRng::seed_from_u64(0x3B1C);
    for _ in 0..CASES {
        let s = random_pattern_set(&mut rng, 64, 40);
        let p = random_pattern_set(&mut rng, 64, 40);
        let (inside, outside) = s.split_by(&p);
        assert!(inside.is_disjoint_from(&outside));
        assert_eq!(inside.union(&outside), s.clone());
        assert!(inside.is_subset_of(&p));
        assert!(outside.is_disjoint_from(&p));
    }
}

#[test]
fn rank_is_at_most_min_dim() {
    let mut rng = XhcRng::seed_from_u64(0x3B1D);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 8, 5);
        assert!(m.rank() <= 5);
        assert!(m.rank() <= 8);
    }
}

#[test]
fn x_free_combination_count_is_nullity() {
    let mut rng = XhcRng::seed_from_u64(0x3B1E);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 10, 6);
        let combos = gauss::x_free_combinations(&m);
        assert_eq!(combos.len(), 10 - m.rank());
        for c in &combos {
            assert!(gauss::is_x_free(&m, c));
            assert!(c.any(), "combinations must be non-trivial");
        }
    }
}

#[test]
fn x_free_combinations_are_independent() {
    let mut rng = XhcRng::seed_from_u64(0x3B1F);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 9, 4);
        // Stack the combination vectors as rows; they must be linearly
        // independent, i.e. full rank.
        let combos = gauss::x_free_combinations(&m);
        if !combos.is_empty() {
            let stack = BitMatrix::from_rows(combos.clone());
            assert_eq!(stack.rank(), combos.len());
        }
    }
}

#[test]
fn elimination_preserves_row_space_dimension() {
    let mut rng = XhcRng::seed_from_u64(0x3B20);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 7, 7);
        let e = gauss::eliminate(&m);
        assert_eq!(e.rank, m.rank());
        assert_eq!(e.reduced.rank(), m.rank());
    }
}
