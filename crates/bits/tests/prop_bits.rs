//! Property-based tests for the GF(2) substrate.

use proptest::prelude::*;
use xhc_bits::{gauss, BitMatrix, BitVec, PatternSet};

fn arb_bitvec(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools)
}

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    prop::collection::vec(arb_bitvec(cols), rows).prop_map(BitMatrix::from_rows)
}

proptest! {
    #[test]
    fn union_card_is_inclusion_exclusion(a in arb_bitvec(150), b in arb_bitvec(150)) {
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(
            u.count_ones(),
            a.count_ones() + b.count_ones() - a.intersection_count(&b)
        );
    }

    #[test]
    fn xor_twice_is_identity(a in arb_bitvec(200), b in arb_bitvec(200)) {
        let mut x = a.clone();
        x.xor_with(&b);
        x.xor_with(&b);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn negate_complements_count(a in arb_bitvec(131)) {
        let ones = a.count_ones();
        let mut n = a.clone();
        n.negate();
        prop_assert_eq!(n.count_ones(), 131 - ones);
        prop_assert!(n.is_disjoint_from(&a));
    }

    #[test]
    fn iter_ones_matches_get(a in arb_bitvec(100)) {
        let from_iter: Vec<usize> = a.iter_ones().collect();
        let from_get: Vec<usize> = (0..100).filter(|&i| a.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
    }

    #[test]
    fn subset_iff_difference_empty(a in arb_bitvec(90), b in arb_bitvec(90)) {
        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert_eq!(a.is_subset_of(&b), d.none());
    }

    #[test]
    fn split_by_is_a_partition(
        members in prop::collection::btree_set(0usize..64, 0..40),
        pivot in prop::collection::btree_set(0usize..64, 0..40),
    ) {
        let s = PatternSet::from_patterns(64, members.iter().copied());
        let p = PatternSet::from_patterns(64, pivot.iter().copied());
        let (inside, outside) = s.split_by(&p);
        prop_assert!(inside.is_disjoint_from(&outside));
        prop_assert_eq!(inside.union(&outside), s.clone());
        prop_assert!(inside.is_subset_of(&p));
        prop_assert!(outside.is_disjoint_from(&p));
    }

    #[test]
    fn rank_is_at_most_min_dim(m in arb_matrix(8, 5)) {
        prop_assert!(m.rank() <= 5);
        prop_assert!(m.rank() <= 8);
    }

    #[test]
    fn x_free_combination_count_is_nullity(m in arb_matrix(10, 6)) {
        let combos = gauss::x_free_combinations(&m);
        prop_assert_eq!(combos.len(), 10 - m.rank());
        for c in &combos {
            prop_assert!(gauss::is_x_free(&m, c));
            prop_assert!(c.any(), "combinations must be non-trivial");
        }
    }

    #[test]
    fn x_free_combinations_are_independent(m in arb_matrix(9, 4)) {
        // Stack the combination vectors as rows; they must be linearly
        // independent, i.e. full rank.
        let combos = gauss::x_free_combinations(&m);
        if !combos.is_empty() {
            let stack = BitMatrix::from_rows(combos.clone());
            prop_assert_eq!(stack.rank(), combos.len());
        }
    }

    #[test]
    fn elimination_preserves_row_space_dimension(m in arb_matrix(7, 7)) {
        let e = gauss::eliminate(&m);
        prop_assert_eq!(e.rank, m.rank());
        prop_assert_eq!(e.reduced.rank(), m.rank());
    }
}
