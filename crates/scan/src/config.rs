//! Scan-chain topology.

use std::fmt;

/// Identifier of a scan cell: which chain it is on and its position within
/// that chain.
///
/// Position 0 is the cell closest to scan-in; the cell at position
/// `length - 1` reaches the compactor first during unload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Chain index.
    pub chain: u32,
    /// Position within the chain (0 = closest to scan-in).
    pub position: u32,
}

impl CellId {
    /// Creates a cell id.
    pub fn new(chain: usize, position: usize) -> Self {
        CellId {
            chain: chain as u32,
            position: position as u32,
        }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SC{}[{}]", self.chain + 1, self.position)
    }
}

/// The scan topology of a design: how many chains and how long each is.
///
/// Chains may be ragged (different lengths); control-bit accounting for
/// X-masking uses the *longest* chain length, exactly as the paper's
/// formula does.
///
/// # Examples
///
/// ```
/// use xhc_scan::ScanConfig;
///
/// // The paper's Fig. 4 configuration: 5 chains of 3 cells.
/// let cfg = ScanConfig::uniform(5, 3);
/// assert_eq!(cfg.total_cells(), 15);
/// assert_eq!(cfg.max_chain_len(), 3);
/// assert_eq!(cfg.num_chains(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanConfig {
    lengths: Vec<usize>,
    offsets: Vec<usize>,
    total: usize,
}

impl ScanConfig {
    /// A configuration with per-chain lengths.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or any chain has length 0.
    pub fn new(lengths: Vec<usize>) -> Self {
        assert!(!lengths.is_empty(), "need at least one scan chain");
        assert!(
            lengths.iter().all(|&l| l > 0),
            "every chain needs at least one cell"
        );
        let mut offsets = Vec::with_capacity(lengths.len());
        let mut total = 0;
        for &l in &lengths {
            offsets.push(total);
            total += l;
        }
        ScanConfig {
            lengths,
            offsets,
            total,
        }
    }

    /// `chains` chains of `length` cells each.
    ///
    /// # Panics
    ///
    /// Panics if `chains == 0` or `length == 0`.
    pub fn uniform(chains: usize, length: usize) -> Self {
        ScanConfig::new(vec![length; chains])
    }

    /// A configuration for `total_cells` cells balanced over `chains`
    /// chains (the first `total_cells % chains` chains get one extra cell).
    ///
    /// # Panics
    ///
    /// Panics if `chains == 0` or `total_cells < chains`.
    pub fn balanced(total_cells: usize, chains: usize) -> Self {
        assert!(chains > 0, "need at least one scan chain");
        assert!(
            total_cells >= chains,
            "need at least one cell per chain ({total_cells} cells, {chains} chains)"
        );
        let base = total_cells / chains;
        let extra = total_cells % chains;
        ScanConfig::new((0..chains).map(|i| base + usize::from(i < extra)).collect())
    }

    /// Number of scan chains.
    pub fn num_chains(&self) -> usize {
        self.lengths.len()
    }

    /// Length of chain `chain`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn chain_len(&self, chain: usize) -> usize {
        self.lengths[chain]
    }

    /// The longest chain length (the per-pattern shift cycle count and the
    /// `L` of the paper's control-bit formula).
    pub fn max_chain_len(&self) -> usize {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Total number of scan cells.
    pub fn total_cells(&self) -> usize {
        self.total
    }

    /// Flattened (linear) index of a cell, chain-major.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range; see
    /// [`try_linear_index`](Self::try_linear_index) for the fallible
    /// form.
    pub fn linear_index(&self, cell: CellId) -> usize {
        match self.try_linear_index(cell) {
            Ok(index) => index,
            Err(e) => panic!("{e}"),
        }
    }

    /// Flattened (linear) index of a cell, chain-major, or a typed
    /// [`crate::ScanError`] if the cell is outside the topology.
    pub fn try_linear_index(&self, cell: CellId) -> Result<usize, crate::ScanError> {
        let chain = cell.chain as usize;
        let pos = cell.position as usize;
        if chain >= self.lengths.len() {
            return Err(crate::ScanError::ChainOutOfRange {
                cell,
                num_chains: self.lengths.len(),
            });
        }
        if pos >= self.lengths[chain] {
            return Err(crate::ScanError::PositionOutOfRange {
                cell,
                chain_len: self.lengths[chain],
            });
        }
        Ok(self.offsets[chain] + pos)
    }

    /// Inverse of [`linear_index`](Self::linear_index).
    ///
    /// # Panics
    ///
    /// Panics if `index >= total_cells`.
    pub fn cell_at(&self, index: usize) -> CellId {
        assert!(index < self.total, "cell index {index} out of range");
        // offsets is sorted; find the chain containing index.
        let chain = match self.offsets.binary_search(&index) {
            Ok(c) => c,
            Err(c) => c - 1,
        };
        CellId::new(chain, index - self.offsets[chain])
    }

    /// Iterator over all cells, chain-major.
    pub fn iter_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.lengths.len())
            .flat_map(move |c| (0..self.lengths[c]).map(move |p| CellId::new(c, p)))
    }

    /// The per-pattern mask-word size for X-masking: one bit per cell slot,
    /// `max_chain_len * num_chains` (unused slots of short chains included,
    /// as the ATE streams a full word per shift cycle).
    pub fn mask_word_bits(&self) -> usize {
        self.max_chain_len() * self.num_chains()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let cfg = ScanConfig::uniform(5, 3);
        assert_eq!(cfg.num_chains(), 5);
        assert_eq!(cfg.chain_len(4), 3);
        assert_eq!(cfg.total_cells(), 15);
        assert_eq!(cfg.mask_word_bits(), 15);
    }

    #[test]
    fn balanced_distributes_remainder() {
        let cfg = ScanConfig::balanced(10, 3);
        assert_eq!(
            (0..3).map(|c| cfg.chain_len(c)).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        assert_eq!(cfg.total_cells(), 10);
        assert_eq!(cfg.max_chain_len(), 4);
    }

    #[test]
    fn ckt_profiles_shapes() {
        // The Table-1-derived configurations.
        let a = ScanConfig::balanced(505_050, 1000);
        assert_eq!(a.total_cells(), 505_050);
        assert_eq!(a.max_chain_len(), 506);
        let b = ScanConfig::balanced(36_075, 75);
        assert_eq!(b.max_chain_len(), 481);
        // 97,643 = 203 * 481 exactly.
        let c = ScanConfig::balanced(97_643, 203);
        assert_eq!(c.max_chain_len(), 481);
    }

    #[test]
    fn linear_index_roundtrip() {
        let cfg = ScanConfig::new(vec![3, 1, 4]);
        for (i, cell) in cfg.iter_cells().enumerate() {
            assert_eq!(cfg.linear_index(cell), i);
            assert_eq!(cfg.cell_at(i), cell);
        }
        assert_eq!(cfg.iter_cells().count(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn linear_index_checks_position() {
        ScanConfig::new(vec![3, 1]).linear_index(CellId::new(1, 1));
    }

    #[test]
    fn try_linear_index_reports_typed_errors() {
        use crate::ScanError;
        let cfg = ScanConfig::new(vec![3, 1]);
        assert_eq!(cfg.try_linear_index(CellId::new(1, 0)), Ok(3));
        assert_eq!(
            cfg.try_linear_index(CellId::new(2, 0)),
            Err(ScanError::ChainOutOfRange {
                cell: CellId::new(2, 0),
                num_chains: 2
            })
        );
        assert_eq!(
            cfg.try_linear_index(CellId::new(1, 1)),
            Err(ScanError::PositionOutOfRange {
                cell: CellId::new(1, 1),
                chain_len: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "at least one scan chain")]
    fn empty_config_panics() {
        ScanConfig::new(vec![]);
    }

    #[test]
    fn display_matches_paper_naming() {
        // The paper writes "the first scan cell in SC1".
        assert_eq!(CellId::new(0, 0).to_string(), "SC1[0]");
        assert_eq!(CellId::new(4, 2).to_string(), "SC5[2]");
    }
}
