//! Cycle-level scan unload streams.
//!
//! The harness's [`crate::ScanHarness::run`] abstracts shifting away (a
//! direct state load is behaviourally equivalent for capture). For the
//! compactor, however, the *order* in which captured bits arrive matters:
//! the MISR sees one bit per chain per cycle, cell nearest scan-out first,
//! with short chains lead-aligned so every chain finishes together. This
//! module materialises that stream; `xhc-misr`'s symbolic simulation uses
//! the identical order, which is verified by a cross-crate test.

use crate::config::CellId;
use crate::response::ResponseMatrix;
use xhc_logic::Trit;

/// The scan-cell arriving at the compactor from `chain` on unload cycle
/// `cycle` (0-based), or `None` while a short chain's data has not
/// reached the output yet.
///
/// Unload takes `max_chain_len` cycles; cycle `t` presents, for a chain of
/// length `len` with lead `max_len - len`, the cell at position
/// `len - 1 - (t - lead)`.
///
/// # Panics
///
/// Panics if `chain` or `cycle` is out of range.
pub fn unload_cell(config: &crate::ScanConfig, chain: usize, cycle: usize) -> Option<CellId> {
    let max_len = config.max_chain_len();
    assert!(cycle < max_len, "cycle {cycle} out of range");
    let len = config.chain_len(chain);
    let lead = max_len - len;
    if cycle < lead {
        return None;
    }
    Some(CellId::new(chain, len - 1 - (cycle - lead)))
}

/// The full unload stream of one captured pattern:
/// `stream[cycle][chain]` is the [`Trit`] presented to compactor input
/// `chain` on that cycle (`None` while a short chain is still leading).
///
/// # Panics
///
/// Panics if `pattern` is out of range.
pub fn unload_stream(responses: &ResponseMatrix, pattern: usize) -> Vec<Vec<Option<Trit>>> {
    let config = responses.config();
    let max_len = config.max_chain_len();
    (0..max_len)
        .map(|cycle| {
            (0..config.num_chains())
                .map(|chain| {
                    unload_cell(config, chain, cycle).map(|cell| responses.get(pattern, cell))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScanConfig, XMapBuilder};

    #[test]
    fn every_cell_streams_exactly_once() {
        let config = ScanConfig::new(vec![3, 1, 4]);
        let mut seen = std::collections::BTreeSet::new();
        for cycle in 0..config.max_chain_len() {
            for chain in 0..config.num_chains() {
                if let Some(cell) = unload_cell(&config, chain, cycle) {
                    assert!(seen.insert(cell), "{cell} streamed twice");
                }
            }
        }
        assert_eq!(seen.len(), config.total_cells());
    }

    #[test]
    fn nearest_scan_out_exits_first() {
        let config = ScanConfig::uniform(2, 3);
        // Cycle 0: position 2 (closest to scan-out); cycle 2: position 0.
        assert_eq!(unload_cell(&config, 0, 0), Some(CellId::new(0, 2)));
        assert_eq!(unload_cell(&config, 0, 2), Some(CellId::new(0, 0)));
    }

    #[test]
    fn short_chains_lead_with_none() {
        let config = ScanConfig::new(vec![4, 2]);
        assert_eq!(unload_cell(&config, 1, 0), None);
        assert_eq!(unload_cell(&config, 1, 1), None);
        assert_eq!(unload_cell(&config, 1, 2), Some(CellId::new(1, 1)));
        assert_eq!(unload_cell(&config, 1, 3), Some(CellId::new(1, 0)));
        // All chains finish together on the last cycle.
        assert_eq!(unload_cell(&config, 0, 3), Some(CellId::new(0, 0)));
    }

    #[test]
    fn stream_values_match_matrix() {
        let config = ScanConfig::uniform(2, 2);
        let mut b = XMapBuilder::new(config.clone(), 1);
        b.add_x(CellId::new(1, 0), 0).unwrap();
        let xmap = b.finish();
        let mut resp = ResponseMatrix::filled(config.clone(), 1, Trit::Zero);
        resp.set(0, CellId::new(0, 1), Trit::One);
        resp.set(0, CellId::new(1, 0), Trit::X);

        let stream = unload_stream(&resp, 0);
        assert_eq!(stream.len(), 2);
        // Cycle 0: positions 1 of each chain.
        assert_eq!(stream[0], vec![Some(Trit::One), Some(Trit::Zero)]);
        // Cycle 1: positions 0.
        assert_eq!(stream[1], vec![Some(Trit::Zero), Some(Trit::X)]);
        let _ = xmap;
    }

    #[test]
    #[should_panic(expected = "cycle 5 out of range")]
    fn cycle_bound_checked() {
        unload_cell(&ScanConfig::uniform(1, 5), 0, 5);
    }
}
