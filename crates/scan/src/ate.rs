//! ATE (automatic test equipment) channel and cycle accounting.

use crate::config::ScanConfig;

/// Tester configuration: how many channels stream data to the chip.
///
/// The paper's experiments use 32 tester channels. Control bits (mask
/// words, selective-XOR selects) are streamed over these channels, so the
/// cycle cost of a control-bit volume is `ceil(bits / channels)`.
///
/// # Examples
///
/// ```
/// use xhc_scan::AteConfig;
///
/// let ate = AteConfig::new(32);
/// assert_eq!(ate.transfer_cycles(64), 2);
/// assert_eq!(ate.transfer_cycles(65), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AteConfig {
    channels: usize,
}

impl AteConfig {
    /// A tester with `channels` parallel channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "need at least one tester channel");
        AteConfig { channels }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Cycles needed to stream `bits` control bits.
    pub fn transfer_cycles(&self, bits: usize) -> usize {
        bits.div_ceil(self.channels)
    }

    /// Baseline scan test cycles for `num_patterns` patterns on `config`:
    /// one shift cycle per cell of the longest chain per pattern, plus one
    /// capture cycle per pattern, plus the final unload.
    pub fn scan_cycles(&self, config: &ScanConfig, num_patterns: usize) -> usize {
        let per_pattern = config.max_chain_len() + 1;
        num_patterns * per_pattern + config.max_chain_len()
    }
}

impl Default for AteConfig {
    /// The paper's 32-channel tester.
    fn default() -> Self {
        AteConfig::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycles_round_up() {
        let ate = AteConfig::new(32);
        assert_eq!(ate.transfer_cycles(0), 0);
        assert_eq!(ate.transfer_cycles(1), 1);
        assert_eq!(ate.transfer_cycles(32), 1);
        assert_eq!(ate.transfer_cycles(33), 2);
    }

    #[test]
    fn default_is_paper_config() {
        assert_eq!(AteConfig::default().channels(), 32);
    }

    #[test]
    fn scan_cycles_formula() {
        let cfg = ScanConfig::uniform(5, 3);
        let ate = AteConfig::default();
        // 8 patterns: 8 * (3 shift + 1 capture) + 3 final unload.
        assert_eq!(ate.scan_cycles(&cfg, 8), 8 * 4 + 3);
    }

    #[test]
    #[should_panic(expected = "at least one tester channel")]
    fn zero_channels_panics() {
        AteConfig::new(0);
    }
}
