//! Plain-text serialization of X maps.
//!
//! A small line-oriented format so workloads can be exchanged with other
//! tools (or dumped from a real ATPG flow and analyzed here):
//!
//! ```text
//! xmap v1
//! chains 3 3 3 3 3
//! patterns 8
//! x 0 : 0 3 4 5
//! x 11 : 0 1 2 3 4 6 7
//! ```
//!
//! `chains` lists per-chain lengths; each `x` line gives a linear cell
//! index and the pattern indices under which it captures X. Lines starting
//! with `#` are comments.

use crate::config::ScanConfig;
use crate::xmap::{XMap, XMapBuilder};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from [`read_xmap`].
#[derive(Debug)]
pub enum ReadXMapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or not `xmap v1`.
    BadHeader(String),
    /// A structural line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `chains` or `patterns` declaration is missing.
    MissingDeclaration(&'static str),
}

impl fmt::Display for ReadXMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadXMapError::Io(e) => write!(f, "i/o error: {e}"),
            ReadXMapError::BadHeader(got) => {
                write!(f, "expected header `xmap v1`, got `{got}`")
            }
            ReadXMapError::BadLine { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ReadXMapError::MissingDeclaration(what) => {
                write!(f, "missing `{what}` declaration")
            }
        }
    }
}

impl std::error::Error for ReadXMapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadXMapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadXMapError {
    fn from(e: std::io::Error) -> Self {
        ReadXMapError::Io(e)
    }
}

/// Writes an X map in the `xmap v1` text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use xhc_scan::{read_xmap, write_xmap, CellId, ScanConfig, XMapBuilder};
///
/// let cfg = ScanConfig::uniform(2, 3);
/// let mut b = XMapBuilder::new(cfg, 4);
/// b.add_x(CellId::new(0, 1), 2).unwrap();
/// let xmap = b.finish();
///
/// let mut buf = Vec::new();
/// write_xmap(&mut buf, &xmap)?;
/// let back = read_xmap(&buf[..])?;
/// assert_eq!(back, xmap);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_xmap<W: Write>(mut w: W, xmap: &XMap) -> std::io::Result<()> {
    writeln!(w, "xmap v1")?;
    write!(w, "chains")?;
    for chain in 0..xmap.config().num_chains() {
        write!(w, " {}", xmap.config().chain_len(chain))?;
    }
    writeln!(w)?;
    writeln!(w, "patterns {}", xmap.num_patterns())?;
    for (cell, xs) in xmap.iter() {
        write!(w, "x {} :", xmap.config().linear_index(cell))?;
        for p in xs.iter() {
            write!(w, " {p}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads an X map in the `xmap v1` text format. A `&[u8]` or `File` can
/// be passed directly; pass `&mut reader` to keep ownership.
///
/// # Errors
///
/// Returns [`ReadXMapError`] on malformed input or I/O failure.
pub fn read_xmap<R: Read>(r: R) -> Result<XMap, ReadXMapError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| ReadXMapError::BadHeader(String::new()))?;
    let header = header?;
    if header.trim() != "xmap v1" {
        return Err(ReadXMapError::BadHeader(header));
    }

    let mut lengths: Option<Vec<usize>> = None;
    let mut patterns: Option<usize> = None;
    let mut entries: Vec<(usize, Vec<usize>, usize)> = Vec::new(); // (cell, pats, line)

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("chains") => {
                let parsed: Result<Vec<usize>, _> = tokens.map(str::parse).collect();
                lengths = Some(parsed.map_err(|e| ReadXMapError::BadLine {
                    line: line_no,
                    message: format!("bad chain length: {e}"),
                })?);
            }
            Some("patterns") => {
                let v = tokens
                    .next()
                    .ok_or_else(|| ReadXMapError::BadLine {
                        line: line_no,
                        message: "missing pattern count".into(),
                    })?
                    .parse()
                    .map_err(|e| ReadXMapError::BadLine {
                        line: line_no,
                        message: format!("bad pattern count: {e}"),
                    })?;
                patterns = Some(v);
            }
            Some("x") => {
                let cell: usize = tokens
                    .next()
                    .ok_or_else(|| ReadXMapError::BadLine {
                        line: line_no,
                        message: "missing cell index".into(),
                    })?
                    .parse()
                    .map_err(|e| ReadXMapError::BadLine {
                        line: line_no,
                        message: format!("bad cell index: {e}"),
                    })?;
                match tokens.next() {
                    Some(":") => {}
                    other => {
                        return Err(ReadXMapError::BadLine {
                            line: line_no,
                            message: format!("expected `:` after cell index, got {other:?}"),
                        })
                    }
                }
                let pats: Result<Vec<usize>, _> = tokens.map(str::parse).collect();
                let pats = pats.map_err(|e| ReadXMapError::BadLine {
                    line: line_no,
                    message: format!("bad pattern index: {e}"),
                })?;
                entries.push((cell, pats, line_no));
            }
            Some(other) => {
                return Err(ReadXMapError::BadLine {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                })
            }
            None => {}
        }
    }

    let lengths = lengths.ok_or(ReadXMapError::MissingDeclaration("chains"))?;
    let patterns = patterns.ok_or(ReadXMapError::MissingDeclaration("patterns"))?;
    if lengths.is_empty() || lengths.contains(&0) {
        return Err(ReadXMapError::BadLine {
            line: 2,
            message: "chains must be non-empty with positive lengths".into(),
        });
    }
    let config = ScanConfig::new(lengths);
    let mut builder = XMapBuilder::new(config.clone(), patterns);
    for (cell, pats, line_no) in entries {
        if cell >= config.total_cells() {
            return Err(ReadXMapError::BadLine {
                line: line_no,
                message: format!("cell index {cell} out of range"),
            });
        }
        for p in pats {
            if p >= patterns {
                return Err(ReadXMapError::BadLine {
                    line: line_no,
                    message: format!("pattern index {p} out of range"),
                });
            }
            builder.add_x_unchecked(config.cell_at(cell), p);
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CellId;

    fn sample_map() -> XMap {
        let cfg = ScanConfig::new(vec![3, 2, 3]);
        let mut b = XMapBuilder::new(cfg, 6);
        b.add_x(CellId::new(0, 0), 0).unwrap();
        b.add_x(CellId::new(0, 0), 3).unwrap();
        b.add_x(CellId::new(2, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn roundtrip() {
        let xmap = sample_map();
        let mut buf = Vec::new();
        write_xmap(&mut buf, &xmap).unwrap();
        let back = read_xmap(&buf[..]).unwrap();
        assert_eq!(back, xmap);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "xmap v1\n# comment\n\nchains 2 2\npatterns 3\n# more\nx 1 : 0 2\n";
        let xmap = read_xmap(text.as_bytes()).unwrap();
        assert_eq!(xmap.total_x(), 2);
        assert_eq!(xmap.config().num_chains(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_xmap("xmap v2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadXMapError::BadHeader(_)));
        assert!(err.to_string().contains("xmap v1"));
    }

    #[test]
    fn missing_declarations_rejected() {
        let err = read_xmap("xmap v1\npatterns 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadXMapError::MissingDeclaration("chains")));
        let err = read_xmap("xmap v1\nchains 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadXMapError::MissingDeclaration("patterns")));
    }

    #[test]
    fn out_of_range_rejected() {
        let text = "xmap v1\nchains 2\npatterns 3\nx 5 : 0\n";
        let err = read_xmap(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let text = "xmap v1\nchains 2\npatterns 3\nx 1 : 7\n";
        let err = read_xmap(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let text = "xmap v1\nchains 2\npatterns 3\nbogus 1\n";
        let err = read_xmap(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn empty_map_roundtrips() {
        let cfg = ScanConfig::uniform(1, 1);
        let xmap = XMapBuilder::new(cfg, 2).finish();
        let mut buf = Vec::new();
        write_xmap(&mut buf, &xmap).unwrap();
        let back = read_xmap(&buf[..]).unwrap();
        assert_eq!(back.total_x(), 0);
    }
}
