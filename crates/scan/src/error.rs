//! Typed errors for scan-domain construction paths.

use std::fmt;

use crate::CellId;

/// An out-of-range reference into a scan topology or X map — the typed,
/// panic-free counterpart of the `assert!`s in the infallible
/// constructors (mirroring how the wire decoders report malformed input
/// instead of panicking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanError {
    /// The cell names a chain the topology does not have.
    ChainOutOfRange {
        /// The offending cell.
        cell: CellId,
        /// Number of chains in the topology.
        num_chains: usize,
    },
    /// The cell's position exceeds its chain's length.
    PositionOutOfRange {
        /// The offending cell.
        cell: CellId,
        /// Length of the named chain.
        chain_len: usize,
    },
    /// The pattern index exceeds the X map's pattern count.
    PatternOutOfRange {
        /// The offending pattern index.
        pattern: usize,
        /// Number of patterns in the map.
        num_patterns: usize,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScanError::ChainOutOfRange { cell, num_chains } => write!(
                f,
                "chain {} out of range: the topology has {num_chains} chains",
                cell.chain
            ),
            ScanError::PositionOutOfRange { cell, chain_len } => write!(
                f,
                "position {} out of range for chain {} (length {chain_len})",
                cell.position, cell.chain
            ),
            ScanError::PatternOutOfRange {
                pattern,
                num_patterns,
            } => write!(
                f,
                "pattern {pattern} out of range: the map has {num_patterns} patterns"
            ),
        }
    }
}

impl std::error::Error for ScanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = ScanError::ChainOutOfRange {
            cell: CellId::new(7, 0),
            num_chains: 5,
        };
        assert_eq!(
            e.to_string(),
            "chain 7 out of range: the topology has 5 chains"
        );
        let e = ScanError::PositionOutOfRange {
            cell: CellId::new(1, 9),
            chain_len: 3,
        };
        assert_eq!(
            e.to_string(),
            "position 9 out of range for chain 1 (length 3)"
        );
        let e = ScanError::PatternOutOfRange {
            pattern: 8,
            num_patterns: 8,
        };
        assert_eq!(
            e.to_string(),
            "pattern 8 out of range: the map has 8 patterns"
        );
    }
}
