//! Sparse X-location maps.

use crate::config::{CellId, ScanConfig};
use std::collections::BTreeMap;
use xhc_bits::PatternSet;

/// The sparse X-location map: for every scan cell that captures at least
/// one X, the set of patterns under which it does.
///
/// All control-bit and test-time accounting in the paper is a function of
/// X locations only — non-X values never enter the formulas. `XMap` is
/// therefore the working representation for industrial-scale analysis
/// (e.g. CKT-A: 505,050 cells × 3,000 patterns stays small because only
/// X-capturing cells are stored).
///
/// Storage is columnar: two parallel, linear-index-sorted arrays (cell
/// indices and their X pattern sets). The correlation kernel walks them
/// as flat slices — no tree traversal on the hot path — and addresses
/// individual entries by *position* (see [`XMap::entry`]), which is what
/// lets a partition split rescan only the cells that were X-active in the
/// parent partition.
///
/// # Examples
///
/// ```
/// use xhc_scan::{ScanConfig, XMapBuilder, CellId};
///
/// let cfg = ScanConfig::uniform(5, 3);
/// let mut b = XMapBuilder::new(cfg, 8);
/// b.add_x(CellId::new(0, 0), 0)?;
/// b.add_x(CellId::new(0, 0), 3)?;
/// let xmap = b.finish();
/// assert_eq!(xmap.total_x(), 2);
/// assert_eq!(xmap.x_count(CellId::new(0, 0)), 2);
/// # Ok::<(), xhc_scan::ScanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XMap {
    config: ScanConfig,
    num_patterns: usize,
    /// Linear indices of X-capturing cells, ascending.
    cells: Vec<u32>,
    /// X pattern set of `cells[i]`.
    xsets: Vec<PatternSet>,
    /// Cached `Σ xsets[i].card()`.
    total_x: usize,
}

impl XMap {
    /// Builds a map by asking `is_x(pattern, cell)` for every entry.
    ///
    /// Only use for small configurations (it enumerates the full matrix);
    /// large workloads should use [`XMapBuilder`].
    pub fn from_fn<F: FnMut(usize, CellId) -> bool>(
        config: ScanConfig,
        num_patterns: usize,
        mut is_x: F,
    ) -> Self {
        let mut b = XMapBuilder::new(config, num_patterns);
        let cells: Vec<CellId> = b.config().iter_cells().collect();
        for cell in cells {
            for p in 0..num_patterns {
                if is_x(p, cell) {
                    b.add_x_unchecked(cell, p);
                }
            }
        }
        b.finish()
    }

    /// The scan topology.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Number of patterns in the universe.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of cells that capture at least one X.
    pub fn num_x_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total number of X's over all cells and patterns.
    pub fn total_x(&self) -> usize {
        self.total_x
    }

    /// The entry at `pos` (positions `0..num_x_cells()`, ascending by
    /// linear cell index): the cell's linear index and its X pattern set.
    ///
    /// Positional addressing is the kernel-facing API: an analysis
    /// records the entry positions that were active in a partition, and a
    /// split re-reads exactly those.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= num_x_cells()`.
    pub fn entry(&self, pos: usize) -> (usize, &PatternSet) {
        (self.cells[pos] as usize, &self.xsets[pos])
    }

    /// The entry position of the cell with linear index `idx`, if it
    /// captures any X (binary search).
    pub fn find_entry(&self, idx: usize) -> Option<usize> {
        if idx > u32::MAX as usize {
            return None;
        }
        self.cells.binary_search(&(idx as u32)).ok()
    }

    /// The X pattern set of the cell with linear index `idx`, if any.
    pub fn xset_linear(&self, idx: usize) -> Option<&PatternSet> {
        self.find_entry(idx).map(|pos| &self.xsets[pos])
    }

    /// Fraction of response bits that are X.
    pub fn x_density(&self) -> f64 {
        let bits = self.config.total_cells() * self.num_patterns;
        if bits == 0 {
            return 0.0;
        }
        self.total_x() as f64 / bits as f64
    }

    /// Number of X's captured by `cell` over all patterns.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn x_count(&self, cell: CellId) -> usize {
        self.xset_linear(self.config.linear_index(cell))
            .map_or(0, PatternSet::card)
    }

    /// The X pattern set of `cell`, if it captures any X.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn xset(&self, cell: CellId) -> Option<&PatternSet> {
        self.xset_linear(self.config.linear_index(cell))
    }

    /// Number of X's `cell` captures within the given pattern subset.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range or the subset universe differs
    /// from `num_patterns`.
    pub fn x_count_in(&self, cell: CellId, patterns: &PatternSet) -> usize {
        self.xset(cell)
            .map_or(0, |xs| xs.intersection_card(patterns))
    }

    /// Total X's within the given pattern subset, over all cells.
    ///
    /// # Panics
    ///
    /// Panics if the subset universe differs from `num_patterns`.
    pub fn total_x_in(&self, patterns: &PatternSet) -> usize {
        self.xsets
            .iter()
            .map(|xs| xs.intersection_card(patterns))
            .sum()
    }

    /// Whether `cell` captures an X under `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_x(&self, pattern: usize, cell: CellId) -> bool {
        assert!(
            pattern < self.num_patterns,
            "pattern {pattern} out of range"
        );
        self.xset(cell).is_some_and(|xs| xs.contains(pattern))
    }

    /// Iterator over `(cell, X pattern set)` for X-capturing cells, in
    /// linear-index order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &PatternSet)> {
        self.cells
            .iter()
            .zip(&self.xsets)
            .map(|(&idx, xs)| (self.config.cell_at(idx as usize), xs))
    }

    /// Packs the map into a cells × patterns [`xhc_bits::XBitMatrix`]:
    /// row `pos` is the X pattern set of [`XMap::entry`]`(pos)`, so the
    /// matrix's row ids coincide with the map's entry positions and with
    /// the active-entry lists a correlation analysis records.
    ///
    /// Built once per partition-engine run; the cost-only split
    /// evaluator then prices every candidate with word sweeps over these
    /// rows instead of materialising child partitions.
    pub fn to_bitmatrix(&self) -> xhc_bits::XBitMatrix {
        // Streamed straight out of the columnar xsets array with the full
        // row count reserved up front: one pass, no intermediate row
        // materialisation, no growth reallocations — a 505k × 3000 matrix
        // (CKT-A) packs in a single allocation.
        let mut b = xhc_bits::XBitMatrixBuilder::with_capacity(self.num_patterns, self.xsets.len());
        for xs in &self.xsets {
            b.push_row_words(xs.as_bits().as_words());
        }
        b.finish()
    }

    /// Number of X's per pattern (indexed by pattern).
    pub fn x_per_pattern(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_patterns];
        for xs in &self.xsets {
            for p in xs.iter() {
                counts[p] += 1;
            }
        }
        counts
    }
}

/// Incremental builder for [`XMap`], used by workload generators and the
/// scan capture harness.
#[derive(Debug, Clone)]
pub struct XMapBuilder {
    config: ScanConfig,
    num_patterns: usize,
    xsets: BTreeMap<usize, PatternSet>,
}

impl XMapBuilder {
    /// Creates a builder for the given topology and pattern count.
    pub fn new(config: ScanConfig, num_patterns: usize) -> Self {
        XMapBuilder {
            config,
            num_patterns,
            xsets: BTreeMap::new(),
        }
    }

    /// The scan topology.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Records that `cell` captures an X under `pattern`. Idempotent.
    ///
    /// Returns a typed [`ScanError`](crate::ScanError) when the cell or
    /// pattern is outside the map — panic-free, like the wire decoders.
    /// Generators whose coordinates are correct by construction can use
    /// [`add_x_unchecked`](Self::add_x_unchecked) instead.
    pub fn add_x(&mut self, cell: CellId, pattern: usize) -> Result<(), crate::ScanError> {
        if pattern >= self.num_patterns {
            return Err(crate::ScanError::PatternOutOfRange {
                pattern,
                num_patterns: self.num_patterns,
            });
        }
        let idx = self.config.try_linear_index(cell)?;
        self.xsets
            .entry(idx)
            .or_insert_with(|| PatternSet::empty(self.num_patterns))
            .insert(pattern);
        Ok(())
    }

    /// Infallible [`add_x`](Self::add_x) for generators whose coordinates
    /// are in range by construction.
    ///
    /// # Panics
    ///
    /// Panics if the cell or pattern is out of range.
    pub fn add_x_unchecked(&mut self, cell: CellId, pattern: usize) {
        if let Err(e) = self.add_x(cell, pattern) {
            panic!("{e}");
        }
    }

    /// Records a whole X pattern set for `cell`, unioning with anything
    /// already recorded.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range or the set universe differs.
    pub fn add_xset(&mut self, cell: CellId, patterns: &PatternSet) {
        assert_eq!(
            patterns.universe(),
            self.num_patterns,
            "pattern-set universe mismatch"
        );
        let idx = self.config.linear_index(cell);
        match self.xsets.entry(idx) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(patterns.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let merged = o.get().union(patterns);
                o.insert(merged);
            }
        }
    }

    /// Finalises the map into its columnar form, dropping cells whose
    /// recorded set ended up empty.
    pub fn finish(self) -> XMap {
        let mut cells = Vec::with_capacity(self.xsets.len());
        let mut xsets = Vec::with_capacity(self.xsets.len());
        let mut total_x = 0;
        // BTreeMap iteration is ascending by key, so the columnar arrays
        // come out sorted by linear index.
        for (idx, xs) in self.xsets {
            if xs.is_empty() {
                continue;
            }
            total_x += xs.card();
            cells.push(u32::try_from(idx).expect("linear cell index fits in u32"));
            xsets.push(xs);
        }
        XMap {
            config: self.config,
            num_patterns: self.num_patterns,
            cells,
            xsets,
            total_x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_xmap() -> XMap {
        // The paper's Fig. 4 X map: 8 patterns (0-indexed P1..P8 -> 0..7),
        // 5 chains × 3 cells.
        //   SC1[0]: X under P1,P4,P5,P6
        //   SC2[0]: X under P1,P4,P5,P6
        //   SC3[0]: X under P1,P4,P5,P6
        //   SC2[2]: X under P1,P5
        //   SC4[2]: X under P1,P2,P3,P4,P5,P7,P8 (7 X's)
        //   SC5[1]: X under P1,P2,P4,P5,P7,P8 (6 X's)
        //   SC5[2]: X under P6 (1 X)
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn fig4_totals() {
        let m = fig4_xmap();
        // 3 cells * 4 + 2 + 7 + 6 + 1 = 28 X's, as the paper counts.
        assert_eq!(m.total_x(), 28);
        assert_eq!(m.num_x_cells(), 7);
        assert!((m.x_density() - 28.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn per_cell_counts_match_fig4() {
        let m = fig4_xmap();
        assert_eq!(m.x_count(CellId::new(0, 0)), 4);
        assert_eq!(m.x_count(CellId::new(1, 2)), 2);
        assert_eq!(m.x_count(CellId::new(3, 2)), 7);
        assert_eq!(m.x_count(CellId::new(4, 1)), 6);
        assert_eq!(m.x_count(CellId::new(4, 2)), 1);
        assert_eq!(m.x_count(CellId::new(0, 1)), 0);
    }

    #[test]
    fn restricted_counts() {
        let m = fig4_xmap();
        // Partition 1 of Fig. 5: patterns {P1, P4, P5, P6} = {0,3,4,5}.
        let part1 = PatternSet::from_patterns(8, [0, 3, 4, 5]);
        assert_eq!(m.x_count_in(CellId::new(0, 0), &part1), 4);
        assert_eq!(m.x_count_in(CellId::new(3, 2), &part1), 3);
        assert_eq!(m.x_count_in(CellId::new(4, 1), &part1), 3);
        assert_eq!(m.x_count_in(CellId::new(4, 2), &part1), 1);
        // Partition 2: {P2, P3, P7, P8} = {1,2,6,7}.
        let part2 = PatternSet::from_patterns(8, [1, 2, 6, 7]);
        assert_eq!(m.x_count_in(CellId::new(3, 2), &part2), 4);
        assert_eq!(m.x_count_in(CellId::new(4, 1), &part2), 3);
        assert_eq!(m.x_count_in(CellId::new(0, 0), &part2), 0);
        assert_eq!(m.total_x_in(&part2), 7);
    }

    #[test]
    fn is_x_and_iteration() {
        let m = fig4_xmap();
        assert!(m.is_x(0, CellId::new(0, 0)));
        assert!(!m.is_x(1, CellId::new(0, 0)));
        let cells: Vec<CellId> = m.iter().map(|(c, _)| c).collect();
        assert_eq!(cells.len(), 7);
        // Linear order: chain-major.
        assert!(cells.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn x_per_pattern_sums_to_total() {
        let m = fig4_xmap();
        let per = m.x_per_pattern();
        assert_eq!(per.iter().sum::<usize>(), 28);
        // P6 (index 5): SC1[0], SC2[0], SC3[0], SC5[2] -> 4 X's.
        assert_eq!(per[5], 4);
    }

    #[test]
    fn add_xset_unions() {
        let cfg = ScanConfig::uniform(1, 1);
        let mut b = XMapBuilder::new(cfg, 4);
        b.add_x(CellId::new(0, 0), 0).unwrap();
        b.add_xset(CellId::new(0, 0), &PatternSet::from_patterns(4, [2, 3]));
        let m = b.finish();
        assert_eq!(m.x_count(CellId::new(0, 0)), 3);
    }

    #[test]
    fn empty_cells_dropped_at_finish() {
        let cfg = ScanConfig::uniform(1, 2);
        let mut b = XMapBuilder::new(cfg, 4);
        b.add_xset(CellId::new(0, 0), &PatternSet::empty(4));
        let m = b.finish();
        assert_eq!(m.num_x_cells(), 0);
        assert_eq!(m.total_x(), 0);
        assert_eq!(m.x_density(), 0.0);
    }
}
