//! Scan-chain infrastructure: topology, pattern application and captured
//! responses.
//!
//! This crate connects gate-level circuits (`xhc-logic`) to the X-handling
//! compactor architectures (`xhc-misr`, `xhc-core`). It provides:
//!
//! * [`ScanConfig`] / [`CellId`] — chain topology, chain-major linear cell
//!   indexing, the paper's `L` (longest chain length) and `C` (chain
//!   count);
//! * [`ScanHarness`] / [`TestPattern`] — load–capture application of scan
//!   patterns to a netlist, with unmapped (shadow) flops re-entering every
//!   pattern uninitialized;
//! * [`ResponseMatrix`] — dense captured responses;
//! * [`XMap`] / [`XMapBuilder`] — the sparse X-location map that all of the
//!   paper's control-bit and test-time accounting operates on;
//! * [`AteConfig`] — tester channel/cycle accounting.
//!
//! # Examples
//!
//! ```
//! use xhc_scan::{ScanConfig, XMapBuilder, CellId};
//!
//! // Record the paper's Fig. 4 cell with 7 X's.
//! let cfg = ScanConfig::uniform(5, 3);
//! let mut b = XMapBuilder::new(cfg, 8);
//! for p in [0, 1, 2, 3, 4, 6, 7] {
//!     b.add_x(CellId::new(3, 2), p).unwrap();
//! }
//! let xmap = b.finish();
//! assert_eq!(xmap.x_count(CellId::new(3, 2)), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ate;
mod config;
mod error;
mod harness;
mod io;
mod response;
mod stream;
mod xmap;

pub use ate::AteConfig;
pub use config::{CellId, ScanConfig};
pub use error::ScanError;
pub use harness::{HarnessError, ScanHarness, TestPattern};
pub use io::{read_xmap, write_xmap, ReadXMapError};
pub use response::ResponseMatrix;
pub use stream::{unload_cell, unload_stream};
pub use xmap::{XMap, XMapBuilder};
