//! Scan test application over a gate-level netlist.

use crate::config::{CellId, ScanConfig};
use crate::response::ResponseMatrix;
use xhc_logic::{Netlist, Simulator, Trit};

/// A test pattern: the values scanned into the chains plus the primary
/// input vector applied during the capture cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPattern {
    /// Scan-load values, one per scan cell in linear (chain-major) order.
    pub scan_load: Vec<Trit>,
    /// Primary input values for the capture cycle.
    pub inputs: Vec<Trit>,
}

impl TestPattern {
    /// An all-zero pattern for the given shape.
    pub fn zeros(num_cells: usize, num_inputs: usize) -> Self {
        TestPattern {
            scan_load: vec![Trit::Zero; num_cells],
            inputs: vec![Trit::Zero; num_inputs],
        }
    }
}

/// Errors from constructing a [`ScanHarness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The scan topology has a different cell count than the mapping.
    CellCountMismatch {
        /// Cells in the `ScanConfig`.
        config_cells: usize,
        /// Flop indices supplied.
        mapped_flops: usize,
    },
    /// A mapped flop index is out of range for the netlist.
    FlopOutOfRange(usize),
    /// The same flop appears twice in the mapping.
    DuplicateFlop(usize),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::CellCountMismatch {
                config_cells,
                mapped_flops,
            } => write!(
                f,
                "scan config has {config_cells} cells but {mapped_flops} flops were mapped"
            ),
            HarnessError::FlopOutOfRange(i) => write!(f, "flop index {i} out of range"),
            HarnessError::DuplicateFlop(i) => write!(f, "flop index {i} mapped twice"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Applies scan test patterns to a netlist and collects captured responses.
///
/// The harness binds a [`ScanConfig`] to a netlist by mapping every scan
/// cell (chain-major) to a flop index. Pattern application is the standard
/// load–capture flow:
///
/// 1. the scan-load values are written into the mapped flops (equivalent to
///    shifting them in),
/// 2. every *unmapped* flop is reset to its power-up value — uninitialized
///    shadow registers therefore re-enter each pattern as `X`, which is the
///    paper's first X source,
/// 3. the primary inputs are applied, the combinational logic evaluated and
///    one capture clock pulsed,
/// 4. the mapped flops' new states are the captured response.
///
/// # Examples
///
/// ```
/// use xhc_logic::samples;
/// use xhc_scan::{ScanConfig, ScanHarness, TestPattern};
/// use xhc_logic::Trit;
///
/// let (netlist, scan_flops) = samples::x_prone_sequential();
/// let cfg = ScanConfig::uniform(2, 2); // 4 scan cells
/// let harness = ScanHarness::new(&netlist, cfg, scan_flops)?;
/// let pattern = TestPattern {
///     scan_load: vec![Trit::Zero; 4],
///     inputs: vec![Trit::One, Trit::One, Trit::Zero],
/// };
/// let responses = harness.run(&[pattern]);
/// assert_eq!(responses.num_patterns(), 1);
/// # Ok::<(), xhc_scan::HarnessError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScanHarness<'a> {
    netlist: &'a Netlist,
    config: ScanConfig,
    /// cell linear index -> flop index
    mapping: Vec<usize>,
}

impl<'a> ScanHarness<'a> {
    /// Binds `config`'s cells (chain-major order) to the given flop
    /// indices.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] if the counts disagree, an index is out of
    /// range, or a flop is mapped twice.
    pub fn new(
        netlist: &'a Netlist,
        config: ScanConfig,
        flop_indices: Vec<usize>,
    ) -> Result<Self, HarnessError> {
        if config.total_cells() != flop_indices.len() {
            return Err(HarnessError::CellCountMismatch {
                config_cells: config.total_cells(),
                mapped_flops: flop_indices.len(),
            });
        }
        let mut seen = vec![false; netlist.num_flops()];
        for &f in &flop_indices {
            if f >= netlist.num_flops() {
                return Err(HarnessError::FlopOutOfRange(f));
            }
            if seen[f] {
                return Err(HarnessError::DuplicateFlop(f));
            }
            seen[f] = true;
        }
        Ok(ScanHarness {
            netlist,
            config,
            mapping: flop_indices,
        })
    }

    /// The scan topology.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// The netlist under test.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The flop index bound to a scan cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn flop_of(&self, cell: CellId) -> usize {
        self.mapping[self.config.linear_index(cell)]
    }

    /// Applies one pattern, returning the captured values in linear cell
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the pattern shape does not match the design.
    pub fn apply(&self, sim: &mut Simulator<'_>, pattern: &TestPattern) -> Vec<Trit> {
        self.apply_forced(sim, pattern, &[])
    }

    /// Like [`apply`](Self::apply), but forces nodes during the capture
    /// evaluation — the hook fault simulation uses to inject stuck-at
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if the pattern shape does not match the design.
    pub fn apply_forced(
        &self,
        sim: &mut Simulator<'_>,
        pattern: &TestPattern,
        forced: &[(xhc_logic::NodeId, Trit)],
    ) -> Vec<Trit> {
        assert_eq!(
            pattern.scan_load.len(),
            self.config.total_cells(),
            "scan load length mismatch"
        );
        // Reset everything (shadow flops back to X), then scan-load.
        sim.reset();
        for (cell_idx, &flop) in self.mapping.iter().enumerate() {
            sim.set_flop_state(flop, pattern.scan_load[cell_idx]);
        }
        sim.eval_forced(&pattern.inputs, forced);
        sim.clock();
        self.mapping
            .iter()
            .map(|&flop| sim.flop_state(flop))
            .collect()
    }

    /// Applies a pattern list and collects the dense response matrix.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's shape does not match the design.
    pub fn run(&self, patterns: &[TestPattern]) -> ResponseMatrix {
        let mut sim = Simulator::new(self.netlist);
        let rows: Vec<Vec<Trit>> = patterns.iter().map(|p| self.apply(&mut sim, p)).collect();
        ResponseMatrix::from_rows(self.config.clone(), &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_logic::samples;

    #[test]
    fn x_prone_circuit_produces_x_responses() {
        let (netlist, scan_flops) = samples::x_prone_sequential();
        let cfg = ScanConfig::uniform(2, 2);
        let harness = ScanHarness::new(&netlist, cfg, scan_flops).unwrap();

        // Pattern with tri-states disabled (floating bus) and shadow X.
        let p0 = TestPattern {
            scan_load: vec![Trit::Zero; 4],
            inputs: vec![Trit::One, Trit::One, Trit::Zero],
        };
        // Pattern with q0 enabled (driving bus) -> known bus value.
        let p1 = TestPattern {
            scan_load: vec![Trit::One, Trit::Zero, Trit::Zero, Trit::Zero],
            inputs: vec![Trit::One, Trit::Zero, Trit::Zero],
        };
        let resp = harness.run(&[p0, p1]);
        assert_eq!(resp.num_patterns(), 2);
        assert!(resp.total_x() > 0, "X sources must corrupt some captures");
        // p1 drives the bus with in0=1 -> d0 = 1 ^ 0 = 1, known.
        assert_eq!(resp.get(1, CellId::new(0, 0)), Trit::One);
    }

    #[test]
    fn shadow_flops_re_enter_as_x_every_pattern() {
        let (netlist, scan_flops) = samples::x_prone_sequential();
        let cfg = ScanConfig::uniform(4, 1);
        let harness = ScanHarness::new(&netlist, cfg, scan_flops).unwrap();
        // q1 captures shadow & in0; with in0=1 this is X for every pattern,
        // proving the shadow register resets to X between patterns.
        let p = TestPattern {
            scan_load: vec![Trit::Zero; 4],
            inputs: vec![Trit::One, Trit::Zero, Trit::Zero],
        };
        let resp = harness.run(&[p.clone(), p.clone(), p]);
        for pat in 0..3 {
            assert_eq!(resp.get(pat, CellId::new(1, 0)), Trit::X);
        }
    }

    #[test]
    fn mapping_validation() {
        let (netlist, mut scan_flops) = samples::x_prone_sequential();
        let cfg = ScanConfig::uniform(2, 2);
        assert!(matches!(
            ScanHarness::new(&netlist, cfg.clone(), vec![0, 1]),
            Err(HarnessError::CellCountMismatch { .. })
        ));
        assert!(matches!(
            ScanHarness::new(&netlist, cfg.clone(), vec![0, 1, 2, 99]),
            Err(HarnessError::FlopOutOfRange(99))
        ));
        scan_flops[1] = scan_flops[0];
        assert!(matches!(
            ScanHarness::new(&netlist, cfg, scan_flops),
            Err(HarnessError::DuplicateFlop(_))
        ));
    }

    #[test]
    fn flop_of_follows_mapping() {
        let (netlist, scan_flops) = samples::x_prone_sequential();
        let cfg = ScanConfig::uniform(2, 2);
        let expect = scan_flops.clone();
        let harness = ScanHarness::new(&netlist, cfg, scan_flops).unwrap();
        assert_eq!(harness.flop_of(CellId::new(0, 0)), expect[0]);
        assert_eq!(harness.flop_of(CellId::new(1, 1)), expect[3]);
    }
}
