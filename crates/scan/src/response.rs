//! Dense captured-response storage.

use crate::config::{CellId, ScanConfig};
use xhc_logic::Trit;

/// A dense matrix of captured responses: one [`Trit`] per (pattern, cell).
///
/// Suitable for circuit-derived workloads (up to a few million entries).
/// For industrial-scale X analysis use the sparse [`crate::XMap`], obtained
/// via [`ResponseMatrix::to_xmap`].
///
/// # Examples
///
/// ```
/// use xhc_scan::{ResponseMatrix, ScanConfig, CellId};
/// use xhc_logic::Trit;
///
/// let cfg = ScanConfig::uniform(2, 3);
/// let mut resp = ResponseMatrix::filled(cfg, 4, Trit::Zero);
/// resp.set(1, CellId::new(0, 2), Trit::X);
/// assert_eq!(resp.get(1, CellId::new(0, 2)), Trit::X);
/// assert_eq!(resp.total_x(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMatrix {
    config: ScanConfig,
    num_patterns: usize,
    // 0 = Zero, 1 = One, 2 = X; one byte per value keeps access cheap.
    data: Vec<u8>,
}

fn encode(t: Trit) -> u8 {
    match t {
        Trit::Zero => 0,
        Trit::One => 1,
        Trit::X => 2,
    }
}

fn decode(b: u8) -> Trit {
    match b {
        0 => Trit::Zero,
        1 => Trit::One,
        _ => Trit::X,
    }
}

impl ResponseMatrix {
    /// Creates a matrix with every entry set to `fill`.
    pub fn filled(config: ScanConfig, num_patterns: usize, fill: Trit) -> Self {
        let data = vec![encode(fill); num_patterns * config.total_cells()];
        ResponseMatrix {
            config,
            num_patterns,
            data,
        }
    }

    /// Builds a matrix from per-pattern captured vectors (linear cell
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from `config.total_cells()`.
    pub fn from_rows(config: ScanConfig, rows: &[Vec<Trit>]) -> Self {
        let total = config.total_cells();
        let mut data = Vec::with_capacity(rows.len() * total);
        for row in rows {
            assert_eq!(row.len(), total, "response row length mismatch");
            data.extend(row.iter().map(|&t| encode(t)));
        }
        ResponseMatrix {
            config,
            num_patterns: rows.len(),
            data,
        }
    }

    /// The scan topology.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Number of captured patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The value captured by `cell` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, pattern: usize, cell: CellId) -> Trit {
        assert!(
            pattern < self.num_patterns,
            "pattern {pattern} out of range"
        );
        decode(self.data[pattern * self.config.total_cells() + self.config.linear_index(cell)])
    }

    /// Sets the value captured by `cell` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, pattern: usize, cell: CellId, value: Trit) {
        assert!(
            pattern < self.num_patterns,
            "pattern {pattern} out of range"
        );
        let idx = pattern * self.config.total_cells() + self.config.linear_index(cell);
        self.data[idx] = encode(value);
    }

    /// The value at a linear cell index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get_linear(&self, pattern: usize, cell_index: usize) -> Trit {
        assert!(
            pattern < self.num_patterns,
            "pattern {pattern} out of range"
        );
        assert!(
            cell_index < self.config.total_cells(),
            "cell index {cell_index} out of range"
        );
        decode(self.data[pattern * self.config.total_cells() + cell_index])
    }

    /// Total number of X entries.
    pub fn total_x(&self) -> usize {
        self.data.iter().filter(|&&b| b == 2).count()
    }

    /// Fraction of entries that are X (the paper's "X-density").
    pub fn x_density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.total_x() as f64 / self.data.len() as f64
    }

    /// Converts to the sparse X-location representation.
    pub fn to_xmap(&self) -> crate::XMap {
        crate::XMap::from_fn(self.config.clone(), self.num_patterns, |p, cell| {
            self.get(p, cell).is_x()
        })
    }

    /// One pattern's captured values in linear cell order.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    pub fn row(&self, pattern: usize) -> Vec<Trit> {
        assert!(
            pattern < self.num_patterns,
            "pattern {pattern} out of range"
        );
        let total = self.config.total_cells();
        self.data[pattern * total..(pattern + 1) * total]
            .iter()
            .map(|&b| decode(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_mutate() {
        let cfg = ScanConfig::uniform(2, 2);
        let mut m = ResponseMatrix::filled(cfg, 3, Trit::One);
        assert_eq!(m.total_x(), 0);
        m.set(0, CellId::new(1, 1), Trit::X);
        m.set(2, CellId::new(0, 0), Trit::Zero);
        assert_eq!(m.get(0, CellId::new(1, 1)), Trit::X);
        assert_eq!(m.get(2, CellId::new(0, 0)), Trit::Zero);
        assert_eq!(m.total_x(), 1);
        assert!((m.x_density() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_and_row_roundtrip() {
        let cfg = ScanConfig::uniform(1, 3);
        let rows = vec![
            vec![Trit::Zero, Trit::One, Trit::X],
            vec![Trit::X, Trit::X, Trit::One],
        ];
        let m = ResponseMatrix::from_rows(cfg, &rows);
        assert_eq!(m.num_patterns(), 2);
        assert_eq!(m.row(0), rows[0]);
        assert_eq!(m.row(1), rows[1]);
        assert_eq!(m.total_x(), 3);
    }

    #[test]
    fn to_xmap_matches() {
        let cfg = ScanConfig::uniform(2, 2);
        let mut m = ResponseMatrix::filled(cfg, 2, Trit::Zero);
        m.set(0, CellId::new(0, 1), Trit::X);
        m.set(1, CellId::new(0, 1), Trit::X);
        m.set(1, CellId::new(1, 0), Trit::X);
        let xmap = m.to_xmap();
        assert_eq!(xmap.total_x(), 3);
        assert_eq!(xmap.x_count(CellId::new(0, 1)), 2);
        assert_eq!(xmap.x_count(CellId::new(1, 0)), 1);
        assert_eq!(xmap.x_count(CellId::new(0, 0)), 0);
    }

    #[test]
    #[should_panic(expected = "pattern 3 out of range")]
    fn pattern_bound_checked() {
        let cfg = ScanConfig::uniform(1, 1);
        ResponseMatrix::filled(cfg, 3, Trit::Zero).get(3, CellId::new(0, 0));
    }
}
