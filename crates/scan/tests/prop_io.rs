//! Randomized tests for the `xmap v1` text format: any map round-trips,
//! and truncated input never panics (deterministic seeded loops).

use xhc_prng::XhcRng;
use xhc_scan::{read_xmap, write_xmap, CellId, ScanConfig, XMapBuilder};

fn random_lengths(rng: &mut XhcRng, max_chains: usize, max_len: usize) -> Vec<usize> {
    let chains = rng.gen_range(1..max_chains);
    (0..chains).map(|_| rng.gen_range(1..max_len)).collect()
}

#[test]
fn any_map_roundtrips() {
    let mut rng = XhcRng::seed_from_u64(0x10A1);
    for _ in 0..64 {
        let config = ScanConfig::new(random_lengths(&mut rng, 5, 6));
        let patterns = rng.gen_range(1..16);
        let mut b = XMapBuilder::new(config.clone(), patterns);
        for _ in 0..rng.gen_range(0..60) {
            let cell = rng.gen_index(config.total_cells());
            b.add_x(config.cell_at(cell), rng.gen_index(patterns))
                .unwrap();
        }
        let xmap = b.finish();

        let mut buf = Vec::new();
        write_xmap(&mut buf, &xmap).expect("write to vec cannot fail");
        let back = read_xmap(&buf[..]).expect("own output must parse");
        assert_eq!(back, xmap);
    }
}

#[test]
fn truncated_input_never_panics() {
    let mut rng = XhcRng::seed_from_u64(0x10A2);
    for _ in 0..64 {
        let config = ScanConfig::new(random_lengths(&mut rng, 3, 4));
        let mut b = XMapBuilder::new(config.clone(), 5);
        b.add_x(config.cell_at(0), 0).unwrap();
        b.add_x(CellId::new(0, 0), 4).unwrap();
        let xmap = b.finish();
        let mut buf = Vec::new();
        write_xmap(&mut buf, &xmap).expect("write to vec cannot fail");
        let cut = rng.gen_index(buf.len() + 1);
        // Truncated input either parses to *some* map or errors cleanly.
        let _ = read_xmap(&buf[..cut]);
    }
}
