//! Property tests for the `xmap v1` text format: any map round-trips.

use proptest::prelude::*;
use xhc_scan::{read_xmap, write_xmap, CellId, ScanConfig, XMapBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_map_roundtrips(
        lengths in prop::collection::vec(1usize..6, 1..5),
        entries in prop::collection::vec((0usize..20, 0usize..15), 0..60),
        patterns in 1usize..16,
    ) {
        let config = ScanConfig::new(lengths);
        let mut b = XMapBuilder::new(config.clone(), patterns);
        for (cell, pattern) in entries {
            let cell = cell % config.total_cells();
            b.add_x(config.cell_at(cell), pattern % patterns);
        }
        let xmap = b.finish();

        let mut buf = Vec::new();
        write_xmap(&mut buf, &xmap).expect("write to vec cannot fail");
        let back = read_xmap(&buf[..]).expect("own output must parse");
        prop_assert_eq!(back, xmap);
    }

    #[test]
    fn truncated_input_never_panics(
        lengths in prop::collection::vec(1usize..4, 1..3),
        cut in 0usize..200,
    ) {
        let config = ScanConfig::new(lengths);
        let mut b = XMapBuilder::new(config.clone(), 5);
        b.add_x(config.cell_at(0), 0);
        b.add_x(CellId::new(0, 0), 4);
        let xmap = b.finish();
        let mut buf = Vec::new();
        write_xmap(&mut buf, &xmap).expect("write to vec cannot fail");
        let cut = cut.min(buf.len());
        // Truncated input either parses to *some* map or errors cleanly.
        let _ = read_xmap(&buf[..cut]);
    }
}
