//! Property suite for plan certificates: every engine-produced plan's
//! certificate verifies (at any thread count, bit-identically), and any
//! single-field mutation of a valid certificate is rejected with the
//! typed error naming the violated invariant.

use xhc_core::{PartitionEngine, PartitionOutcome, PlanOptions};
use xhc_logic::Trit;
use xhc_misr::{CancelSession, Taps, XCancelConfig};
use xhc_scan::{CellId, ResponseMatrix, ScanConfig, XMap, XMapBuilder};
use xhc_verify::{certify_plan, check, verify, PlanCertificate, VerifyError};
use xhc_wire::{decode_certificate, encode_certificate, encode_plan};
use xhc_workload::WorkloadSpec;

fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

/// Responses with an X wherever the map says, known-zero elsewhere.
fn responses_for(xmap: &XMap) -> ResponseMatrix {
    let scan = xmap.config().clone();
    let mut resp = ResponseMatrix::filled(scan, xmap.num_patterns(), Trit::Zero);
    for (cell, xset) in xmap.iter() {
        for p in xset.as_bits().iter_ones() {
            resp.set(p, cell, Trit::X);
        }
    }
    resp
}

fn plan_and_certify(
    xmap: &XMap,
    cancel: XCancelConfig,
    threads: usize,
    blocks: bool,
) -> (PartitionOutcome, Vec<u8>, PlanCertificate) {
    let opts = PlanOptions {
        threads,
        ..PlanOptions::default()
    };
    let outcome = PartitionEngine::with_options(cancel, opts).run(xmap);
    let plan_bytes = encode_plan(&outcome, xmap.num_patterns());
    let session = blocks.then(|| {
        let session =
            CancelSession::new(xmap.config().clone(), cancel, Taps::default_for(cancel.m()));
        session.run(&responses_for(xmap))
    });
    let cert = certify_plan(xmap, cancel, &outcome, &plan_bytes, session.as_ref());
    (outcome, plan_bytes, cert)
}

#[test]
fn engine_certificates_verify_at_every_thread_count() {
    let specs = [
        WorkloadSpec::default(),
        WorkloadSpec {
            num_patterns: 96,
            total_cells: 600,
            num_chains: 8,
            x_density: 0.03,
            ..WorkloadSpec::default()
        },
    ];
    for spec in specs {
        let xmap = spec.generate();
        let cancel = XCancelConfig::new(32, 7);
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1, 2, 8] {
            let (outcome, plan_bytes, cert) = plan_and_certify(&xmap, cancel, threads, false);
            assert_eq!(
                verify(&cert, &outcome, &plan_bytes, &xmap, cancel),
                vec![],
                "threads={threads}"
            );
            // Thread-count invariance carries through to the certificate:
            // the encoded witness is bit-identical at every width.
            let bytes = encode_certificate(&cert);
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(r, &bytes, "threads={threads}"),
            }
        }
    }
}

#[test]
fn session_block_certificates_verify_and_roundtrip() {
    let xmap = fig4_xmap();
    let cancel = XCancelConfig::new(10, 2);
    let (outcome, plan_bytes, cert) = plan_and_certify(&xmap, cancel, 1, true);
    let blocks = cert.blocks.as_ref().expect("session blocks embedded");
    assert!(!blocks.is_empty());
    check(&cert, &outcome, &plan_bytes, &xmap, cancel).unwrap();

    // The wire trip preserves the verdict.
    let decoded = decode_certificate(&encode_certificate(&cert)).unwrap();
    assert_eq!(decoded, cert);
    check(&decoded, &outcome, &plan_bytes, &xmap, cancel).unwrap();
}

/// Applies `mutate` to a fresh valid certificate and asserts the checker
/// rejects it with an error for which `names_invariant` holds.
fn assert_rejected(
    label: &str,
    base: &(PartitionOutcome, Vec<u8>, PlanCertificate),
    xmap: &XMap,
    cancel: XCancelConfig,
    mutate: impl FnOnce(&mut PlanCertificate),
    names_invariant: impl Fn(&VerifyError) -> bool,
) {
    let (outcome, plan_bytes, cert) = base;
    let mut mutated = cert.clone();
    mutate(&mut mutated);
    let errors = verify(&mutated, outcome, plan_bytes, xmap, cancel);
    assert!(!errors.is_empty(), "{label}: mutation must be rejected");
    assert!(
        errors.iter().any(&names_invariant),
        "{label}: no error names the violated invariant, got {errors:?}"
    );
    // And the fail-fast form rejects too.
    assert!(check(&mutated, outcome, plan_bytes, xmap, cancel).is_err());
}

#[test]
fn every_single_field_mutation_is_rejected_with_a_typed_error() {
    let xmap = fig4_xmap();
    let cancel = XCancelConfig::new(10, 2);
    let base = plan_and_certify(&xmap, cancel, 1, true);
    assert!(
        check(&base.2, &base.0, &base.1, &xmap, cancel).is_ok(),
        "baseline certificate must be valid"
    );
    // The fig4 plan has 3 partitions and a known leak, so every mutated
    // field below is exercised against real nonzero accounting.
    assert!(base.2.partitions.iter().any(|p| p.leaked_x > 0));

    assert_rejected(
        "plan_hash",
        &base,
        &xmap,
        cancel,
        |c| c.plan_hash ^= 1,
        |e| matches!(e, VerifyError::PlanHashMismatch { .. }),
    );
    assert_rejected(
        "num_patterns",
        &base,
        &xmap,
        cancel,
        |c| c.num_patterns += 1,
        |e| matches!(e, VerifyError::PatternCountMismatch { .. }),
    );
    assert_rejected(
        "num_partitions",
        &base,
        &xmap,
        cancel,
        |c| c.num_partitions += 1,
        |e| matches!(e, VerifyError::PartitionCountMismatch { .. }),
    );
    assert_rejected(
        "mask_bits",
        &base,
        &xmap,
        cancel,
        |c| c.mask_bits += 1,
        |e| matches!(e, VerifyError::MaskWidthMismatch { .. }),
    );
    assert_rejected(
        "total_x",
        &base,
        &xmap,
        cancel,
        |c| c.total_x -= 1,
        |e| matches!(e, VerifyError::TotalXMismatch { .. }),
    );
    assert_rejected(
        "m",
        &base,
        &xmap,
        cancel,
        |c| c.m += 1,
        |e| matches!(e, VerifyError::CancelParamMismatch { .. }),
    );
    assert_rejected(
        "q",
        &base,
        &xmap,
        cancel,
        |c| c.q += 1,
        |e| matches!(e, VerifyError::CancelParamMismatch { .. }),
    );
    assert_rejected(
        "assignment",
        &base,
        &xmap,
        cancel,
        |c| {
            let old = c.assignment[0];
            c.assignment[0] = (old + 1) % c.num_partitions as u32;
        },
        |e| {
            matches!(
                e,
                VerifyError::AssignmentOutsidePartition { pattern: 0, .. }
                    | VerifyError::PartitionCardinalityMismatch { .. }
            )
        },
    );
    assert_rejected(
        "patterns",
        &base,
        &xmap,
        cancel,
        |c| c.partitions[0].patterns += 1,
        |e| {
            matches!(
                e,
                VerifyError::PartitionCardinalityMismatch { partition: 0, .. }
            )
        },
    );
    assert_rejected(
        "masked_x",
        &base,
        &xmap,
        cancel,
        |c| c.partitions[0].masked_x += 1,
        |e| matches!(e, VerifyError::MaskedXMismatch { partition: 0, .. }),
    );
    let leaky = base
        .2
        .partitions
        .iter()
        .position(|p| p.leaked_x > 0)
        .unwrap();
    assert_rejected(
        "leaked_x",
        &base,
        &xmap,
        cancel,
        |c| c.partitions[leaky].leaked_x -= 1,
        |e| matches!(e, VerifyError::LeakedXMismatch { .. }),
    );
    assert_rejected(
        "mask_cells",
        &base,
        &xmap,
        cancel,
        |c| c.partitions[0].mask_cells += 1,
        |e| matches!(e, VerifyError::MaskCellsMismatch { partition: 0, .. }),
    );
    assert_rejected(
        "cancel_bits",
        &base,
        &xmap,
        cancel,
        |c| c.partitions[leaky].cancel_bits += 0.5,
        |e| matches!(e, VerifyError::PartitionCancelBitsMismatch { .. }),
    );
    assert_rejected(
        "histogram",
        &base,
        &xmap,
        cancel,
        |c| {
            let hist = &mut c.partitions[0].histogram;
            assert!(!hist.is_empty());
            hist[0].1 += 1;
        },
        |e| matches!(e, VerifyError::HistogramMismatch { partition: 0 }),
    );
    // The histogram-sum invariant fires on its own when the histogram
    // stays self-consistent but disagrees with the masked/leaked split.
    {
        let (outcome, plan_bytes, cert) = &base;
        let mut mutated = cert.clone();
        let hist = &mut mutated.partitions[0].histogram;
        hist[0].0 += 1; // shifts sum(x_count * cells) off masked + leaked
        let errors = verify(&mutated, outcome, plan_bytes, &xmap, cancel);
        assert!(errors
            .iter()
            .any(|e| matches!(e, VerifyError::HistogramSumMismatch { partition: 0, .. })));
    }

    // Block-certificate mutations.
    let rank_block = base
        .2
        .blocks
        .as_ref()
        .unwrap()
        .iter()
        .position(|b| b.rank > 0)
        .expect("fig4 session has a ranked block");
    assert_rejected(
        "block rank",
        &base,
        &xmap,
        cancel,
        |c| c.blocks.as_mut().unwrap()[rank_block].rank -= 1,
        |e| matches!(e, VerifyError::BlockRankMismatch { .. }),
    );
    assert_rejected(
        "block pivots",
        &base,
        &xmap,
        cancel,
        |c| {
            let pivots = &mut c.blocks.as_mut().unwrap()[rank_block].pivot_cols;
            let last = pivots.last_mut().unwrap();
            *last += 1;
        },
        |e| matches!(e, VerifyError::BlockPivotMismatch { .. }),
    );
    assert_rejected(
        "block combinations",
        &base,
        &xmap,
        cancel,
        |c| c.blocks.as_mut().unwrap()[rank_block].combinations += 1,
        |e| matches!(e, VerifyError::BlockCombinationCountMismatch { .. }),
    );
    assert_rejected(
        "block control bits",
        &base,
        &xmap,
        cancel,
        |c| c.blocks.as_mut().unwrap()[rank_block].control_bits += 1,
        |e| matches!(e, VerifyError::BlockControlBitsMismatch { .. }),
    );
    assert_rejected(
        "block dependency",
        &base,
        &xmap,
        cancel,
        |c| {
            // Zeroing the matrix provably drops the rank to 0, so the
            // claimed (nonzero) rank certificate can no longer hold. (A
            // single bit flip may legitimately preserve rank and pivots —
            // the embedded matrix *is* the ground truth being certified.)
            let b = &mut c.blocks.as_mut().unwrap()[rank_block];
            b.dependency.iter_mut().for_each(|w| *w = 0);
        },
        |e| {
            matches!(
                e,
                VerifyError::BlockRankMismatch { .. } | VerifyError::BlockPivotMismatch { .. }
            )
        },
    );
    assert_rejected(
        "block shape",
        &base,
        &xmap,
        cancel,
        |c| {
            c.blocks.as_mut().unwrap()[rank_block].dependency.push(0);
        },
        |e| matches!(e, VerifyError::BlockShapeMismatch { .. }),
    );
}

#[test]
fn certificate_is_bound_to_its_exact_plan() {
    // A certificate for one plan must not validate a different plan, even
    // a structurally compatible one: the content-hash link pins it.
    let xmap = fig4_xmap();
    let cancel = XCancelConfig::new(10, 2);
    let (_, _, cert) = plan_and_certify(&xmap, cancel, 1, false);

    let other = PartitionEngine::with_options(
        cancel,
        PlanOptions {
            max_rounds: Some(1),
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    let other_bytes = encode_plan(&other, xmap.num_patterns());
    let errors = verify(&cert, &other, &other_bytes, &xmap, cancel);
    assert!(errors
        .iter()
        .any(|e| matches!(e, VerifyError::PlanHashMismatch { .. })));
}
