//! Certificate emission: folds an engine outcome (and optionally a cancel
//! session report) into the witness the checker validates.
//!
//! Unlike the checker, the emitter is allowed to lean on workspace
//! primitives — it runs next to the engine and its output is *claims*,
//! not judgements. Anything it gets wrong, [`crate::verify`] rejects.

use std::collections::BTreeMap;

use xhc_core::PartitionOutcome;
use xhc_misr::{SessionReport, XCancelConfig};
use xhc_scan::XMap;
use xhc_wire::{content_hash, BlockCertificate, PartitionAccount, PlanCertificate};

/// Builds the certificate for a partition plan.
///
/// `plan_bytes` must be the canonical wire encoding of `outcome` (from
/// [`xhc_wire::encode_plan`]); its [`content_hash`] becomes the
/// certificate's plan link. Pass a [`SessionReport`] to embed per-block
/// Gauss rank certificates.
///
/// # Panics
///
/// Panics if the outcome's partitions do not form a disjoint cover of the
/// map's patterns (an engine invariant) or if mask widths disagree with
/// the scan topology.
pub fn certify_plan(
    xmap: &XMap,
    cancel: XCancelConfig,
    outcome: &PartitionOutcome,
    plan_bytes: &[u8],
    session: Option<&SessionReport>,
) -> PlanCertificate {
    let num_patterns = xmap.num_patterns();
    let num_partitions = outcome.partitions.len();
    assert_eq!(
        outcome.masks.len(),
        num_partitions,
        "one mask word per partition"
    );

    // Pattern -> partition assignment (the cover witness).
    let mut assignment = vec![u32::MAX; num_patterns];
    for (i, part) in outcome.partitions.iter().enumerate() {
        assert_eq!(part.as_bits().len(), num_patterns, "partition universe");
        for p in part.as_bits().iter_ones() {
            assert_eq!(assignment[p], u32::MAX, "partitions must be disjoint");
            assignment[p] = i as u32;
        }
    }
    assert!(
        assignment.iter().all(|&a| a != u32::MAX),
        "partitions must cover every pattern"
    );

    // One pass over the X map: restricted per-partition X counts feed the
    // histograms and the masked/leaked split.
    let mut masked = vec![0usize; num_partitions];
    let mut leaked = vec![0usize; num_partitions];
    let mut hists: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); num_partitions];
    let mut counts = vec![0usize; num_partitions];
    let mut touched: Vec<usize> = Vec::new();
    for pos in 0..xmap.num_x_cells() {
        let (cell, xset) = xmap.entry(pos);
        for p in xset.as_bits().iter_ones() {
            let a = assignment[p] as usize;
            if counts[a] == 0 {
                touched.push(a);
            }
            counts[a] += 1;
        }
        for &a in &touched {
            let c = counts[a];
            counts[a] = 0;
            *hists[a].entry(c).or_insert(0) += 1;
            if outcome.masks[a].masks(cell) {
                masked[a] += c;
            } else {
                leaked[a] += c;
            }
        }
        touched.clear();
    }

    let partitions: Vec<PartitionAccount> = (0..num_partitions)
        .map(|i| PartitionAccount {
            patterns: outcome.partitions[i].card(),
            masked_x: masked[i],
            leaked_x: leaked[i],
            mask_cells: outcome.masks[i].count(),
            cancel_bits: cancel.control_bits(leaked[i]),
            histogram: hists[i].iter().map(|(&c, &n)| (c, n)).collect(),
        })
        .collect();

    PlanCertificate {
        plan_hash: content_hash(plan_bytes),
        num_patterns,
        num_partitions,
        mask_bits: xmap.config().mask_word_bits(),
        total_x: xmap.total_x(),
        m: cancel.m(),
        q: cancel.q(),
        assignment,
        partitions,
        blocks: session.map(certify_blocks),
    }
}

/// Extracts per-block Gauss rank certificates from a cancel session run.
pub fn certify_blocks(report: &SessionReport) -> Vec<BlockCertificate> {
    report
        .blocks
        .iter()
        .map(|b| {
            let mut dependency = Vec::new();
            for r in 0..b.dependency.num_rows() {
                dependency.extend_from_slice(b.dependency.row(r).as_words());
            }
            BlockCertificate {
                patterns: b.patterns,
                num_x: b.num_x,
                rank: b.rank,
                pivot_cols: b.pivot_cols.clone(),
                combinations: b.combinations.len(),
                control_bits: b.control_bits,
                dependency,
            }
        })
        .collect()
}
