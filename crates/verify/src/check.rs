//! The engine-independent certificate checker.
//!
//! Everything here is deliberately naive: raw little-endian word access
//! for set membership, a plain popcount loop for cardinalities, a
//! textbook Gaussian elimination for block ranks. The point is not speed
//! (though one linear pass keeps it far cheaper than planning) but
//! *independence* — none of the engine's incremental bookkeeping can leak
//! a correlated bug into the verdict.

use std::collections::BTreeMap;
use std::fmt;

use xhc_core::PartitionOutcome;
use xhc_misr::XCancelConfig;
use xhc_scan::XMap;
use xhc_wire::{content_hash, PlanCertificate};

/// A violated certificate invariant.
///
/// Each variant names the invariant it guards, with the claimed and
/// recomputed values, so a rejection pinpoints the lie: a mutated
/// certificate field yields the variant that certifies *that* field.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The certificate's plan link does not hash the presented plan.
    PlanHashMismatch {
        /// Hash the certificate claims.
        claimed: u64,
        /// [`content_hash`] of the presented plan bytes.
        actual: u64,
    },
    /// The certificate and the X map disagree on the pattern universe.
    PatternCountMismatch {
        /// Universe the certificate claims.
        claimed: usize,
        /// The X map's pattern count.
        actual: usize,
    },
    /// The certificate and the plan disagree on the partition count.
    PartitionCountMismatch {
        /// Count the certificate claims.
        claimed: usize,
        /// The plan's partition count.
        actual: usize,
    },
    /// The certificate's mask width is not the scan topology's.
    MaskWidthMismatch {
        /// Width the certificate claims.
        claimed: usize,
        /// `ScanConfig::mask_word_bits()` of the X map.
        actual: usize,
    },
    /// The certificate's total X count is not the X map's.
    TotalXMismatch {
        /// Total the certificate claims.
        claimed: usize,
        /// The X map's total.
        actual: usize,
    },
    /// The certificate's (m, q) is not the configuration being checked.
    CancelParamMismatch {
        /// (m, q) the certificate claims.
        claimed: (usize, usize),
        /// (m, q) of the supplied [`XCancelConfig`].
        actual: (usize, usize),
    },
    /// A pattern's assigned partition does not contain it in the plan.
    AssignmentOutsidePartition {
        /// The pattern.
        pattern: usize,
        /// The partition the certificate assigns it to.
        partition: usize,
    },
    /// A partition's cardinality claims disagree (certificate claim,
    /// assignment fiber size and plan-bitmap popcount must all match —
    /// together with per-pattern membership this witnesses that the
    /// plan's partitions are a disjoint cover).
    PartitionCardinalityMismatch {
        /// The partition.
        partition: usize,
        /// Cardinality the certificate claims.
        claimed: usize,
        /// Patterns the assignment maps to this partition.
        fiber: usize,
        /// Popcount of the plan's partition bitmap.
        popcount: usize,
    },
    /// A plan mask hides a cell that is not X under the whole partition
    /// (it would destroy observed response bits).
    MaskUnsafe {
        /// The partition.
        partition: usize,
        /// Linear index of the unsafely masked cell.
        cell: usize,
    },
    /// A partition's claimed X-class histogram is not the recomputed one.
    HistogramMismatch {
        /// The partition.
        partition: usize,
    },
    /// A partition's histogram does not sum to its masked + leaked X's.
    HistogramSumMismatch {
        /// The partition.
        partition: usize,
        /// `sum(x_count * cells)` over the claimed histogram.
        histogram_x: usize,
        /// Claimed `masked_x + leaked_x`.
        accounted_x: usize,
    },
    /// A partition's claimed masked-X count is wrong.
    MaskedXMismatch {
        /// The partition.
        partition: usize,
        /// Count the certificate claims.
        claimed: usize,
        /// Recomputed count.
        actual: usize,
    },
    /// A partition's claimed leaked-X count is wrong.
    LeakedXMismatch {
        /// The partition.
        partition: usize,
        /// Count the certificate claims.
        claimed: usize,
        /// Recomputed count.
        actual: usize,
    },
    /// A partition's claimed mask population is wrong.
    MaskCellsMismatch {
        /// The partition.
        partition: usize,
        /// Population the certificate claims.
        claimed: usize,
        /// Popcount of the plan's mask word.
        actual: usize,
    },
    /// A partition's claimed cancel bits are not `m·q·leaked/(m−q)`.
    PartitionCancelBitsMismatch {
        /// The partition.
        partition: usize,
        /// Bits the certificate claims.
        claimed: f64,
        /// Recomputed bits.
        actual: f64,
    },
    /// The plan's claimed masking bits are not `mask_bits · #partitions`.
    MaskingBitsMismatch {
        /// Bits the plan's cost record claims.
        claimed: u128,
        /// Recomputed bits.
        actual: u128,
    },
    /// The plan's claimed canceling bits are not `m·q·leakedX/(m−q)`.
    CancelingBitsMismatch {
        /// Bits the plan's cost record claims.
        claimed: f64,
        /// Recomputed bits.
        actual: f64,
    },
    /// An integer field of the plan's cost record is wrong.
    CostFieldMismatch {
        /// Which field (`"masked_x"`, `"leaked_x"`, `"num_partitions"`).
        field: &'static str,
        /// Value the plan's cost record claims.
        claimed: usize,
        /// Recomputed value.
        actual: usize,
    },
    /// A block's dependency matrix does not have `m` rows of
    /// `num_x.div_ceil(64)` words.
    BlockShapeMismatch {
        /// The block.
        block: usize,
        /// Words the shape requires.
        expected_words: usize,
        /// Words present.
        actual_words: usize,
    },
    /// A block's claimed rank is not the dependency matrix's GF(2) rank.
    BlockRankMismatch {
        /// The block.
        block: usize,
        /// Rank the certificate claims.
        claimed: usize,
        /// Rank of the checker's own elimination.
        actual: usize,
    },
    /// A block's claimed pivot columns are not the elimination's.
    BlockPivotMismatch {
        /// The block.
        block: usize,
    },
    /// A block's combination count is not `min(m − rank, q)`.
    BlockCombinationCountMismatch {
        /// The block.
        block: usize,
        /// Count the certificate claims.
        claimed: usize,
        /// `min(m − rank, q)` for the verified rank.
        expected: usize,
    },
    /// A block's control bits are not `m` per combination.
    BlockControlBitsMismatch {
        /// The block.
        block: usize,
        /// Bits the certificate claims.
        claimed: usize,
        /// `m · combinations`.
        actual: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyError::*;
        match self {
            PlanHashMismatch { claimed, actual } => write!(
                f,
                "certificate is linked to plan {claimed:016x}, presented plan hashes to {actual:016x}"
            ),
            PatternCountMismatch { claimed, actual } => {
                write!(f, "certificate claims {claimed} patterns, X map has {actual}")
            }
            PartitionCountMismatch { claimed, actual } => {
                write!(f, "certificate claims {claimed} partitions, plan has {actual}")
            }
            MaskWidthMismatch { claimed, actual } => {
                write!(f, "certificate claims {claimed}-bit mask words, topology needs {actual}")
            }
            TotalXMismatch { claimed, actual } => {
                write!(f, "certificate claims {claimed} total X's, X map has {actual}")
            }
            CancelParamMismatch { claimed, actual } => write!(
                f,
                "certificate claims (m, q) = {claimed:?}, checking against {actual:?}"
            ),
            AssignmentOutsidePartition { pattern, partition } => write!(
                f,
                "pattern {pattern} is assigned to partition {partition}, which does not contain it"
            ),
            PartitionCardinalityMismatch {
                partition,
                claimed,
                fiber,
                popcount,
            } => write!(
                f,
                "partition {partition} cardinality disagrees: claimed {claimed}, \
                 assignment fiber {fiber}, bitmap popcount {popcount}"
            ),
            MaskUnsafe { partition, cell } => write!(
                f,
                "partition {partition} masks cell {cell}, which is not X under the whole partition"
            ),
            HistogramMismatch { partition } => {
                write!(f, "partition {partition} X-class histogram does not match the X map")
            }
            HistogramSumMismatch {
                partition,
                histogram_x,
                accounted_x,
            } => write!(
                f,
                "partition {partition} histogram sums to {histogram_x} X's, \
                 accounting claims {accounted_x}"
            ),
            MaskedXMismatch {
                partition,
                claimed,
                actual,
            } => write!(
                f,
                "partition {partition} claims {claimed} masked X's, recomputed {actual}"
            ),
            LeakedXMismatch {
                partition,
                claimed,
                actual,
            } => write!(
                f,
                "partition {partition} claims {claimed} leaked X's, recomputed {actual}"
            ),
            MaskCellsMismatch {
                partition,
                claimed,
                actual,
            } => write!(
                f,
                "partition {partition} claims a {claimed}-cell mask, mask word has {actual}"
            ),
            PartitionCancelBitsMismatch {
                partition,
                claimed,
                actual,
            } => write!(
                f,
                "partition {partition} claims {claimed} cancel bits, formula gives {actual}"
            ),
            MaskingBitsMismatch { claimed, actual } => {
                write!(f, "plan claims {claimed} masking bits, L·C·#partitions = {actual}")
            }
            CancelingBitsMismatch { claimed, actual } => {
                write!(f, "plan claims {claimed} canceling bits, m·q·leakedX/(m−q) = {actual}")
            }
            CostFieldMismatch {
                field,
                claimed,
                actual,
            } => write!(f, "plan cost field {field} claims {claimed}, recomputed {actual}"),
            BlockShapeMismatch {
                block,
                expected_words,
                actual_words,
            } => write!(
                f,
                "block {block} dependency matrix has {actual_words} words, shape needs {expected_words}"
            ),
            BlockRankMismatch {
                block,
                claimed,
                actual,
            } => write!(f, "block {block} claims rank {claimed}, elimination finds {actual}"),
            BlockPivotMismatch { block } => {
                write!(f, "block {block} pivot columns do not match the elimination")
            }
            BlockCombinationCountMismatch {
                block,
                claimed,
                expected,
            } => write!(
                f,
                "block {block} claims {claimed} combinations, min(m − rank, q) = {expected}"
            ),
            BlockControlBitsMismatch {
                block,
                claimed,
                actual,
            } => write!(
                f,
                "block {block} claims {claimed} control bits, m per combination gives {actual}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Tests bit `index` of a little-endian packed word slice.
fn bit(words: &[u64], index: usize) -> bool {
    (words[index / 64] >> (index % 64)) & 1 == 1
}

/// Population count of a packed word slice.
fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// GF(2) row-echelon rank and pivot columns of an `m × num_cols` matrix
/// packed as `m` rows of `wpr` words. Pivot columns — the columns at
/// which the rank increases scanning left to right — are a property of
/// the column space, so any elimination order reproduces them.
fn echelon_rank(words: &[u64], m: usize, wpr: usize, num_cols: usize) -> (usize, Vec<usize>) {
    let mut rows: Vec<Vec<u64>> = (0..m)
        .map(|r| words[r * wpr..(r + 1) * wpr].to_vec())
        .collect();
    let mut rank = 0usize;
    let mut pivots = Vec::new();
    for col in 0..num_cols {
        if rank == m {
            break;
        }
        let wi = col / 64;
        let mask = 1u64 << (col % 64);
        let Some(pivot_row) = (rank..m).find(|&r| rows[r][wi] & mask != 0) else {
            continue;
        };
        rows.swap(rank, pivot_row);
        let pivot = rows[rank].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && row[wi] & mask != 0 {
                for (w, p) in row.iter_mut().zip(&pivot) {
                    *w ^= p;
                }
            }
        }
        pivots.push(col);
        rank += 1;
    }
    (rank, pivots)
}

/// Validates a certificate against its plan and X map, collecting every
/// violated invariant (for lint-style reporting).
///
/// An empty result means the certificate — and with it the plan's cover,
/// accounting and cost claims — checks out. Structural mismatches that
/// make further passes meaningless (wrong pattern universe or partition
/// count) short-circuit.
pub fn verify(
    cert: &PlanCertificate,
    plan: &PartitionOutcome,
    plan_bytes: &[u8],
    xmap: &XMap,
    cancel: XCancelConfig,
) -> Vec<VerifyError> {
    let mut errors = Vec::new();

    // Pass 1: the plan link.
    let actual_hash = content_hash(plan_bytes);
    if cert.plan_hash != actual_hash {
        errors.push(VerifyError::PlanHashMismatch {
            claimed: cert.plan_hash,
            actual: actual_hash,
        });
    }

    // Pass 2: shape. Universe or partition-count disagreement poisons
    // every later pass, so bail out on those.
    let num_patterns = xmap.num_patterns();
    let num_partitions = plan.partitions.len();
    if cert.num_patterns != num_patterns {
        errors.push(VerifyError::PatternCountMismatch {
            claimed: cert.num_patterns,
            actual: num_patterns,
        });
    }
    if cert.num_partitions != num_partitions || cert.partitions.len() != num_partitions {
        errors.push(VerifyError::PartitionCountMismatch {
            claimed: cert.num_partitions.max(cert.partitions.len()),
            actual: num_partitions,
        });
    }
    if cert.assignment.len() != cert.num_patterns {
        errors.push(VerifyError::PatternCountMismatch {
            claimed: cert.assignment.len(),
            actual: num_patterns,
        });
    }
    if !errors.iter().all(|e| {
        !matches!(
            e,
            VerifyError::PatternCountMismatch { .. } | VerifyError::PartitionCountMismatch { .. }
        )
    }) {
        return errors;
    }
    let mask_bits = xmap.config().mask_word_bits();
    if cert.mask_bits != mask_bits {
        errors.push(VerifyError::MaskWidthMismatch {
            claimed: cert.mask_bits,
            actual: mask_bits,
        });
    }
    let total_x = xmap.total_x();
    if cert.total_x != total_x {
        errors.push(VerifyError::TotalXMismatch {
            claimed: cert.total_x,
            actual: total_x,
        });
    }
    if (cert.m, cert.q) != (cancel.m(), cancel.q()) {
        errors.push(VerifyError::CancelParamMismatch {
            claimed: (cert.m, cert.q),
            actual: (cancel.m(), cancel.q()),
        });
    }

    // Pass 3: the cover witness. Each pattern's assigned partition must
    // contain it in the plan; then fiber sizes, bitmap popcounts and the
    // claimed cardinalities must agree. Membership gives bitmap ⊇ fiber
    // per partition; equal sizes upgrade that to equality, and because
    // the fibers partition the universe by construction, so do the
    // plan's pattern sets: a disjoint cover.
    let mut fibers = vec![0usize; num_partitions];
    for (p, &a) in cert.assignment.iter().enumerate() {
        let a = a as usize;
        if a >= num_partitions {
            errors.push(VerifyError::AssignmentOutsidePartition {
                pattern: p,
                partition: a,
            });
            continue;
        }
        let words = plan.partitions[a].as_bits().as_words();
        if p / 64 >= words.len() || !bit(words, p) {
            errors.push(VerifyError::AssignmentOutsidePartition {
                pattern: p,
                partition: a,
            });
            continue;
        }
        fibers[a] += 1;
    }
    for (i, &fiber) in fibers.iter().enumerate() {
        let pop = popcount(plan.partitions[i].as_bits().as_words());
        let claimed = cert.partitions[i].patterns;
        if claimed != fiber || pop != fiber {
            errors.push(VerifyError::PartitionCardinalityMismatch {
                partition: i,
                claimed,
                fiber,
                popcount: pop,
            });
        }
    }

    // Pass 4: accounting. One linear pass over the X map recomputes every
    // per-partition histogram and masked/leaked split from the assignment
    // alone, checking mask safety on the way.
    let mut masked = vec![0usize; num_partitions];
    let mut leaked = vec![0usize; num_partitions];
    let mut hists: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); num_partitions];
    let mut counts = vec![0usize; num_partitions];
    let mut touched: Vec<usize> = Vec::new();
    for pos in 0..xmap.num_x_cells() {
        let (cell, xset) = xmap.entry(pos);
        let words = xset.as_bits().as_words();
        for (wi, &word) in words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let p = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let a = cert.assignment[p] as usize;
                if a >= num_partitions {
                    continue; // already reported in pass 3
                }
                if counts[a] == 0 {
                    touched.push(a);
                }
                counts[a] += 1;
            }
        }
        for &a in &touched {
            let c = counts[a];
            counts[a] = 0;
            *hists[a].entry(c).or_insert(0) += 1;
            if bit(plan.masks[a].as_bits().as_words(), cell) {
                masked[a] += c;
                if c != fibers[a] {
                    errors.push(VerifyError::MaskUnsafe { partition: a, cell });
                }
            } else {
                leaked[a] += c;
            }
        }
        touched.clear();
    }
    for (i, acc) in cert.partitions.iter().enumerate() {
        let actual: Vec<(usize, usize)> = hists[i].iter().map(|(&c, &n)| (c, n)).collect();
        if acc.histogram != actual {
            errors.push(VerifyError::HistogramMismatch { partition: i });
        }
        let histogram_x: usize = acc.histogram.iter().map(|&(c, n)| c * n).sum();
        if histogram_x != acc.masked_x + acc.leaked_x {
            errors.push(VerifyError::HistogramSumMismatch {
                partition: i,
                histogram_x,
                accounted_x: acc.masked_x + acc.leaked_x,
            });
        }
        if acc.masked_x != masked[i] {
            errors.push(VerifyError::MaskedXMismatch {
                partition: i,
                claimed: acc.masked_x,
                actual: masked[i],
            });
        }
        if acc.leaked_x != leaked[i] {
            errors.push(VerifyError::LeakedXMismatch {
                partition: i,
                claimed: acc.leaked_x,
                actual: leaked[i],
            });
        }
        let mask_pop = popcount(plan.masks[i].as_bits().as_words());
        if acc.mask_cells != mask_pop {
            errors.push(VerifyError::MaskCellsMismatch {
                partition: i,
                claimed: acc.mask_cells,
                actual: mask_pop,
            });
        }
    }

    // Pass 5: the cost model, recomputed with the exact expression shapes
    // the paper (and the engine) uses so agreement is bit-for-bit.
    let m = cancel.m();
    let q = cancel.q();
    let masked_total: usize = masked.iter().sum();
    let leaked_total: usize = leaked.iter().sum();
    for (i, acc) in cert.partitions.iter().enumerate() {
        let actual = m as f64 * q as f64 * leaked[i] as f64 / (m - q) as f64;
        if acc.cancel_bits != actual {
            errors.push(VerifyError::PartitionCancelBitsMismatch {
                partition: i,
                claimed: acc.cancel_bits,
                actual,
            });
        }
    }
    let masking_actual = mask_bits as u128 * num_partitions as u128;
    if plan.cost.masking_bits != masking_actual {
        errors.push(VerifyError::MaskingBitsMismatch {
            claimed: plan.cost.masking_bits,
            actual: masking_actual,
        });
    }
    let canceling_actual = m as f64 * q as f64 * leaked_total as f64 / (m - q) as f64;
    if plan.cost.canceling_bits != canceling_actual {
        errors.push(VerifyError::CancelingBitsMismatch {
            claimed: plan.cost.canceling_bits,
            actual: canceling_actual,
        });
    }
    for (field, claimed, actual) in [
        ("masked_x", plan.cost.masked_x, masked_total),
        ("leaked_x", plan.cost.leaked_x, leaked_total),
        ("num_partitions", plan.cost.num_partitions, num_partitions),
    ] {
        if claimed != actual {
            errors.push(VerifyError::CostFieldMismatch {
                field,
                claimed,
                actual,
            });
        }
    }

    // Pass 6: block rank certificates, re-eliminated from scratch.
    if let Some(blocks) = &cert.blocks {
        for (bi, b) in blocks.iter().enumerate() {
            let wpr = b.num_x.div_ceil(64);
            let expected_words = m * wpr;
            if b.dependency.len() != expected_words {
                errors.push(VerifyError::BlockShapeMismatch {
                    block: bi,
                    expected_words,
                    actual_words: b.dependency.len(),
                });
                continue;
            }
            let (rank, pivots) = echelon_rank(&b.dependency, m, wpr, b.num_x);
            if b.rank != rank {
                errors.push(VerifyError::BlockRankMismatch {
                    block: bi,
                    claimed: b.rank,
                    actual: rank,
                });
            }
            if b.pivot_cols != pivots {
                errors.push(VerifyError::BlockPivotMismatch { block: bi });
            }
            let expected_combos = (m - rank).min(q);
            if b.combinations != expected_combos {
                errors.push(VerifyError::BlockCombinationCountMismatch {
                    block: bi,
                    claimed: b.combinations,
                    expected: expected_combos,
                });
            }
            let control_actual = m * b.combinations;
            if b.control_bits != control_actual {
                errors.push(VerifyError::BlockControlBitsMismatch {
                    block: bi,
                    claimed: b.control_bits,
                    actual: control_actual,
                });
            }
        }
    }

    errors
}

/// Like [`verify`] but fail-fast: `Ok(())` or the first violation.
///
/// # Errors
///
/// Returns the first [`VerifyError`] the linear pass finds.
pub fn check(
    cert: &PlanCertificate,
    plan: &PartitionOutcome,
    plan_bytes: &[u8],
    xmap: &XMap,
    cancel: XCancelConfig,
) -> Result<(), VerifyError> {
    match verify(cert, plan, plan_bytes, xmap, cancel)
        .into_iter()
        .next()
    {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echelon_rank_matches_known_matrices() {
        // Identity 4x4 packed one word per row.
        let identity: Vec<u64> = vec![1, 2, 4, 8];
        assert_eq!(echelon_rank(&identity, 4, 1, 4), (4, vec![0, 1, 2, 3]));

        // Zero matrix.
        let zero = vec![0u64; 3];
        assert_eq!(echelon_rank(&zero, 3, 1, 5), (0, vec![]));

        // Dependent rows: r2 = r0 ^ r1, pivots at the first two columns.
        let dep: Vec<u64> = vec![0b011, 0b110, 0b101];
        let (rank, pivots) = echelon_rank(&dep, 3, 1, 3);
        assert_eq!(rank, 2);
        assert_eq!(pivots, vec![0, 1]);
    }

    #[test]
    fn errors_render() {
        let errors = [
            VerifyError::PlanHashMismatch {
                claimed: 1,
                actual: 2,
            },
            VerifyError::MaskUnsafe {
                partition: 0,
                cell: 3,
            },
            VerifyError::BlockPivotMismatch { block: 1 },
            VerifyError::CostFieldMismatch {
                field: "masked_x",
                claimed: 1,
                actual: 2,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
