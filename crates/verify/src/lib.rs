//! `xhc-verify`: plan certificates and their engine-independent checker.
//!
//! The partition engine is the trusted-computing-base problem of this
//! workspace: its incremental split evaluator, pruning bounds and scratch
//! reuse are exactly the kind of optimized code where an accounting bug
//! would silently misreport control-bit savings. Instead of trusting it,
//! every plan can travel with a [`PlanCertificate`] — a witness of the
//! claims the plan makes — and this crate's checker re-validates the
//! witness against the plan and its X map in one linear pass, **sharing
//! no code with the engine**: its own popcounts, its own word-level set
//! membership, its own Gaussian elimination, `#![forbid(unsafe_code)]`,
//! and no imports from `xhc-core`'s planning internals (the only
//! `xhc-core` items used are the plain-data [`PartitionOutcome`] and
//! [`HybridCost`](xhc_core::HybridCost) structs the wire layer already
//! exposes).
//!
//! # What is certified
//!
//! * **Cover** — the certificate's pattern→partition assignment is walked
//!   once; combined with per-partition popcounts it witnesses that the
//!   plan's pattern sets are a disjoint cover of the pattern universe.
//! * **Accounting** — per-partition X-class histograms, masked/leaked X
//!   splits and mask-cell counts are recomputed from the X map alone and
//!   compared field by field; mask safety (a masked cell is X under the
//!   *entire* partition) falls out of the same pass.
//! * **Cost** — the paper's §4 cost model (`L·C·#partitions` masking bits
//!   plus `m·q·leakedX/(m−q)` canceling bits) is recomputed with the same
//!   expression shape the engine uses, so agreement is bit-exact, and
//!   compared against the plan's claimed [`HybridCost`](xhc_core::HybridCost).
//! * **Rank** — optional per-block Gauss certificates (dependency matrix,
//!   claimed rank, pivot columns) are re-eliminated by the checker's own
//!   naive elimination and must reproduce rank and pivots exactly.
//!
//! # Examples
//!
//! ```
//! use xhc_core::{PartitionEngine, PlanOptions};
//! use xhc_misr::XCancelConfig;
//! use xhc_scan::{CellId, ScanConfig, XMapBuilder};
//! use xhc_verify::{certify_plan, check};
//!
//! let mut b = XMapBuilder::new(ScanConfig::uniform(5, 3), 8);
//! for p in [0, 3, 4, 5] {
//!     b.add_x(CellId::new(0, 0), p).unwrap();
//! }
//! let xmap = b.finish();
//!
//! let cancel = XCancelConfig::new(10, 2);
//! let outcome = PartitionEngine::with_options(cancel, PlanOptions::default()).run(&xmap);
//! let plan_bytes = xhc_wire::encode_plan(&outcome, xmap.num_patterns());
//!
//! let cert = certify_plan(&xmap, cancel, &outcome, &plan_bytes, None);
//! check(&cert, &outcome, &plan_bytes, &xmap, cancel).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod emit;

pub use check::{check, verify, VerifyError};
pub use emit::{certify_blocks, certify_plan};

// Re-exported so downstream users (lint, serve, the CLI) need only this
// crate to certify and check.
pub use xhc_core::PartitionOutcome;
pub use xhc_wire::{BlockCertificate, PartitionAccount, PlanCertificate};
