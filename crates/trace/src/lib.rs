//! Dependency-free structured tracing for the xhybrid workspace.
//!
//! The partition engine's headline numbers — control-bit volume and
//! normalized test time — are per-round aggregates; this crate makes the
//! *inside* of a run observable: where candidate evaluation time goes,
//! how often the bound pruner fires, which pivot each round chose, and
//! where the canceling session halts. It provides
//!
//! * **spans** — named intervals with monotonic-nanosecond timestamps and
//!   small integer arguments, recorded via an RAII [`Span`] guard,
//! * **counters** — named cumulative sums for hot paths too cheap to
//!   span (e.g. the packed bit-matrix kernel's row sweeps),
//! * **histograms** — a log-bucket [`Histogram`] used by the text
//!   summary for per-span duration percentiles,
//! * a per-thread **ring buffer** so recording never takes a lock; the
//!   runtime drains it deterministically at join points
//!   ([`flush_thread`], called by `xhc-par` when a worker finishes), and
//! * two exporters: [`Trace::to_chrome_json`] (load the file in
//!   `chrome://tracing` / Perfetto) and [`Trace::summary`] (human text).
//!
//! # Zero cost when disabled
//!
//! Tracing is off unless a [`TraceSession`] is active. Every recording
//! entry point starts with one relaxed atomic load ([`enabled`]); when
//! it is `false`, [`span`] returns an inert guard without reading the
//! clock and [`counter_add`] returns immediately. The workspace bench
//! gate runs with tracing compiled in but disabled and is the standing
//! proof that this path stays free.
//!
//! # Sessions are process-global
//!
//! One session records at a time ([`TraceSession::begin`] returns `None`
//! while another is active). While a session is recording, *any* thread
//! that hits an instrumented path contributes events; in a concurrent
//! server this means a trace can include activity from neighbouring
//! requests — by design, exactly what a timeline viewer wants.
//!
//! # Examples
//!
//! ```
//! let session = xhc_trace::TraceSession::begin().expect("no other session");
//! {
//!     let _span = xhc_trace::span("demo.work").arg("items", 3);
//!     xhc_trace::counter_add("demo.items", 3);
//! }
//! let trace = session.finish();
//! assert_eq!(trace.spans("demo.work").count(), 1);
//! assert_eq!(trace.counter("demo.items"), Some(3));
//! assert!(trace.to_chrome_json().starts_with('['));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity in events. A full ring overwrites the oldest
/// event and counts it in [`Trace::dropped`].
const RING_CAPACITY: usize = 1 << 14;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATS_ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATS: Mutex<Vec<(&'static str, u64)>> = Mutex::new(Vec::new());
static GENERATION: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static SINK: Mutex<Sink> = Mutex::new(Sink::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether a trace session is currently recording.
///
/// One relaxed atomic load — the entire cost of instrumentation on a
/// disabled path. Instrumented code may use this to skip argument
/// computation that only feeds a span.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the process trace epoch (the first call
/// into this crate's clock).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One recorded interval: a named span with start, duration, the small
/// integer arguments attached while it was open, and the recording
/// thread's trace-local id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name (static, dot-separated by convention, e.g.
    /// `partition.round`).
    pub name: &'static str,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace-local id of the recording thread (stable within a process,
    /// dense, starts at 1).
    pub tid: u32,
    /// Attached `key = value` arguments, in attachment order.
    pub args: Vec<(&'static str, u64)>,
}

struct ThreadBuf {
    generation: u64,
    tid: u32,
    events: Vec<Event>,
    /// Oldest-event index once the ring is full.
    write: usize,
    dropped: u64,
    counters: Vec<(&'static str, u64)>,
}

impl ThreadBuf {
    fn new() -> ThreadBuf {
        ThreadBuf {
            generation: 0,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            write: 0,
            dropped: 0,
            counters: Vec::new(),
        }
    }

    /// Discards anything recorded under an older session.
    fn sync_generation(&mut self) {
        let current = GENERATION.load(Ordering::Relaxed);
        if self.generation != current {
            self.generation = current;
            self.events.clear();
            self.write = 0;
            self.dropped = 0;
            self.counters.clear();
        }
    }

    fn push(&mut self, event: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.write] = event;
            self.write = (self.write + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn bump(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Events in recording order (oldest first, honouring ring wrap).
    fn drain_events(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.write..]);
        out.extend_from_slice(&self.events[..self.write]);
        self.events.clear();
        self.write = 0;
        out
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

struct Sink {
    events: Vec<Event>,
    counters: Vec<(&'static str, u64)>,
    dropped: u64,
}

impl Sink {
    const fn new() -> Sink {
        Sink {
            events: Vec::new(),
            counters: Vec::new(),
            dropped: 0,
        }
    }

    fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
        self.dropped = 0;
    }

    fn merge_counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 += delta,
            None => self.counters.push((name, delta)),
        }
    }
}

fn sink() -> MutexGuard<'static, Sink> {
    SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An open span. Records one [`Event`] covering its lifetime when
/// dropped; inert (no clock read, no allocation) when tracing is
/// disabled.
#[must_use = "a span records its duration when dropped; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
    live: bool,
}

/// Opens a span named `name`, closing (and recording) when the returned
/// guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span {
            name,
            start_ns: now_ns(),
            args: Vec::new(),
            live: true,
        }
    } else {
        Span {
            name,
            start_ns: 0,
            args: Vec::new(),
            live: false,
        }
    }
}

impl Span {
    /// Attaches a `key = value` argument (builder form).
    #[inline]
    pub fn arg(mut self, key: &'static str, value: u64) -> Span {
        self.set_arg(key, value);
        self
    }

    /// Attaches a `key = value` argument to an already-bound span —
    /// useful for results only known near the end of the interval.
    #[inline]
    pub fn set_arg(&mut self, key: &'static str, value: u64) {
        if self.live {
            self.args.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end_ns = now_ns();
        let event = Event {
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            tid: 0,
            args: std::mem::take(&mut self.args),
        };
        BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.sync_generation();
            let tid = buf.tid;
            buf.push(Event { tid, ..event });
        });
    }
}

/// Adds `delta` to the named cumulative counter. Two relaxed loads and
/// an early return when both tracing and process stats are disabled; no
/// lock on that path.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if stats_enabled() {
        stat_add(name, delta);
    }
    if !enabled() {
        return;
    }
    BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.sync_generation();
        buf.bump(name, delta);
    });
}

/// Whether the process-lifetime stats registry is collecting.
#[inline]
pub fn stats_enabled() -> bool {
    STATS_ENABLED.load(Ordering::Relaxed)
}

/// Turns on the process-lifetime stats registry.
///
/// Session counters vanish with their [`TraceSession`]; a long-running
/// daemon that wants to *export* counters (the serve `--push-metrics`
/// path) needs totals that survive across — and outside of — sessions.
/// Once enabled, every [`counter_add`] also accumulates into the
/// registry, unconditionally and process-wide, readable at any time via
/// [`stats_snapshot`]. Idempotent; there is deliberately no disable —
/// monotonic totals are the exporter contract.
pub fn enable_stats() {
    STATS_ENABLED.store(true, Ordering::Relaxed);
}

/// Adds `delta` to a process-lifetime stat directly, without touching
/// session counters. Works whether or not [`enable_stats`] was called —
/// use for values that only make sense as exported totals (e.g. queue
/// shed counts) rather than per-run trace data.
pub fn stat_add(name: &'static str, delta: u64) {
    let mut stats = STATS.lock().unwrap_or_else(|p| p.into_inner());
    match stats.iter_mut().find(|(n, _)| *n == name) {
        Some(entry) => entry.1 += delta,
        None => stats.push((name, delta)),
    }
}

/// A point-in-time copy of the process-lifetime stats, sorted by name.
/// Empty until something calls [`stat_add`] (directly or via
/// [`counter_add`] after [`enable_stats`]).
pub fn stats_snapshot() -> Vec<(&'static str, u64)> {
    let stats = STATS.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = stats.clone();
    out.sort_by_key(|&(name, _)| name);
    out
}

/// Moves the calling thread's buffered events and counters into the
/// global sink.
///
/// `xhc-par` calls this at the end of every worker closure, so parallel
/// sections drain deterministically at their join points; code that
/// spawns threads outside `xhc-par` must call it before the thread
/// exits, or the thread's events are discarded. A no-op when nothing is
/// buffered.
pub fn flush_thread() {
    BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.sync_generation();
        if buf.events.is_empty() && buf.counters.is_empty() && buf.dropped == 0 {
            return;
        }
        let events = buf.drain_events();
        let counters = std::mem::take(&mut buf.counters);
        let dropped = std::mem::replace(&mut buf.dropped, 0);
        let mut sink = sink();
        sink.events.extend(events);
        for (name, delta) in counters {
            sink.merge_counter(name, delta);
        }
        sink.dropped += dropped;
    });
}

/// An exclusive recording session. At most one exists per process;
/// [`TraceSession::begin`] hands out the claim and
/// [`TraceSession::finish`] releases it and returns the collected
/// [`Trace`].
#[derive(Debug)]
pub struct TraceSession {
    start_ns: u64,
    finished: bool,
}

impl TraceSession {
    /// Starts recording. Returns `None` if another session is active
    /// (callers should proceed untraced rather than block).
    pub fn begin() -> Option<TraceSession> {
        if ACTIVE
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // A new generation invalidates whatever unflushed leftovers idle
        // threads still hold from earlier sessions.
        GENERATION.fetch_add(1, Ordering::Relaxed);
        sink().clear();
        let start_ns = now_ns();
        ENABLED.store(true, Ordering::Relaxed);
        Some(TraceSession {
            start_ns,
            finished: false,
        })
    }

    /// Stops recording, flushes the calling thread, and returns the
    /// collected trace. Events are sorted by `(start_ns, tid, name)` so
    /// equal inputs yield byte-identical exports; counters are merged
    /// across threads and sorted by name.
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        ENABLED.store(false, Ordering::Relaxed);
        flush_thread();
        let end_ns = now_ns();
        let (mut events, mut counters, dropped) = {
            let mut sink = sink();
            (
                std::mem::take(&mut sink.events),
                std::mem::take(&mut sink.counters),
                std::mem::replace(&mut sink.dropped, 0),
            )
        };
        ACTIVE.store(false, Ordering::Release);
        events.sort_by(|a, b| (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name)));
        counters.sort_by_key(|&(name, _)| name);
        Trace {
            start_ns: self.start_ns,
            end_ns,
            events,
            counters,
            dropped,
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            ENABLED.store(false, Ordering::Relaxed);
            ACTIVE.store(false, Ordering::Release);
        }
    }
}

/// A finished recording: every event and merged counter a session
/// collected, ready for export.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Session start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Session end, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// All events, sorted by `(start_ns, tid, name)`.
    pub events: Vec<Event>,
    /// Merged counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Events overwritten because a thread's ring buffer filled between
    /// drains.
    pub dropped: u64,
}

impl Trace {
    /// Session wall time in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The events with the given span name, in time order.
    pub fn spans<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// The merged value of the named counter, if it was ever bumped.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the trace in the Chrome Trace Event format (a JSON
    /// array of complete `"ph":"X"` events plus `"ph":"C"` counter
    /// samples), loadable in `chrome://tracing` or Perfetto.
    ///
    /// Timestamps are microseconds relative to the session start.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push('[');
        let mut first = true;
        for event in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = event.start_ns.saturating_sub(self.start_ns) as f64 / 1000.0;
            let dur = event.dur_ns as f64 / 1000.0;
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{}",
                escape_json(event.name),
                event.tid
            );
            out.push_str(",\"args\":{");
            for (i, &(key, value)) in event.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{value}", escape_json(key));
            }
            out.push_str("}}");
        }
        let end_ts = self.duration_ns() as f64 / 1000.0;
        for &(name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{end_ts:.3},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
                escape_json(name)
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders a human-readable summary: per-span duration statistics
    /// (count, total, p50/p95 from a log-bucket [`Histogram`], max) and
    /// every counter.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, {} counters, {} dropped, wall {}",
            self.events.len(),
            self.counters.len(),
            self.dropped,
            format_ns(self.duration_ns())
        );
        let mut names: Vec<&'static str> = self.events.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        if !names.is_empty() {
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "span", "count", "total", "p50", "p95", "max"
            );
        }
        for name in names {
            let mut hist = Histogram::new();
            let mut total = 0u64;
            for event in self.spans(name) {
                hist.record(event.dur_ns);
                total += event.dur_ns;
            }
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>10} {:>10} {:>10} {:>10}",
                name,
                hist.count(),
                format_ns(total),
                format_ns(hist.quantile(0.50)),
                format_ns(hist.quantile(0.95)),
                format_ns(hist.max())
            );
        }
        for &(name, value) in &self.counters {
            let _ = writeln!(out, "  counter {name} = {value}");
        }
        out
    }
}

/// A log₂-bucket histogram of `u64` samples (64 buckets, one per bit
/// position), with exact count/sum/min/max and approximate quantiles.
///
/// # Examples
///
/// ```
/// let mut h = xhc_trace::Histogram::new();
/// for v in [100u64, 200, 400, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) <= h.quantile(0.95));
/// assert_eq!(h.max(), 100_000);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The approximate `q`-quantile (0.0 ..= 1.0): the geometric
    /// midpoint of the bucket holding the target rank, clamped to the
    /// observed `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let lo = 1u64 << idx;
                let mid = lo + lo / 2;
                return mid.clamp(self.min(), self.max);
            }
        }
        self.max
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions are process-global, so tests that need one must not run
    /// concurrently; a shared mutex serialises them.
    fn session_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_by_default_and_spans_are_inert() {
        let _guard = session_lock();
        assert!(!enabled());
        {
            let _span = span("never.recorded").arg("k", 1);
            counter_add("never.counted", 5);
        }
        flush_thread();
        let session = TraceSession::begin().expect("claim");
        let trace = session.finish();
        assert!(trace.events.is_empty(), "{:?}", trace.events);
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn session_records_spans_counters_and_args() {
        let _guard = session_lock();
        let session = TraceSession::begin().expect("claim");
        assert!(enabled());
        {
            let mut s = span("unit.outer").arg("a", 1);
            s.set_arg("b", 2);
            let _inner = span("unit.inner");
        }
        counter_add("unit.count", 2);
        counter_add("unit.count", 3);
        let trace = session.finish();
        assert!(!enabled());
        assert_eq!(trace.events.len(), 2);
        // Sorted by start time: outer opened first.
        assert_eq!(trace.events[0].name, "unit.outer");
        assert_eq!(trace.events[0].args, vec![("a", 1), ("b", 2)]);
        assert_eq!(trace.events[1].name, "unit.inner");
        assert!(trace.events[0].dur_ns >= trace.events[1].dur_ns);
        assert_eq!(trace.counter("unit.count"), Some(5));
        assert_eq!(trace.counter("unit.absent"), None);
    }

    #[test]
    fn only_one_session_at_a_time() {
        let _guard = session_lock();
        let first = TraceSession::begin().expect("claim");
        assert!(TraceSession::begin().is_none());
        let _ = first.finish();
        let second = TraceSession::begin().expect("released");
        let _ = second.finish();
    }

    #[test]
    fn dropping_an_unfinished_session_releases_the_claim() {
        let _guard = session_lock();
        {
            let _session = TraceSession::begin().expect("claim");
        }
        assert!(!enabled());
        let next = TraceSession::begin().expect("released by drop");
        let _ = next.finish();
    }

    #[test]
    fn worker_threads_contribute_via_flush() {
        let _guard = session_lock();
        let session = TraceSession::begin().expect("claim");
        std::thread::scope(|scope| {
            for i in 0..3u64 {
                scope.spawn(move || {
                    {
                        let _span = span("worker.item").arg("i", i);
                        counter_add("worker.items", 1);
                    }
                    flush_thread();
                });
            }
        });
        let trace = session.finish();
        assert_eq!(trace.spans("worker.item").count(), 3);
        assert_eq!(trace.counter("worker.items"), Some(3));
        // Three distinct worker tids.
        let mut tids: Vec<u32> = trace.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn unflushed_thread_events_do_not_leak_into_later_sessions() {
        let _guard = session_lock();
        let first = TraceSession::begin().expect("claim");
        let handle = {
            let (ready_tx, ready_rx) = std::sync::mpsc::channel();
            let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
            let handle = std::thread::spawn(move || {
                {
                    let _span = span("stale.event");
                }
                ready_tx.send(()).unwrap();
                // Park (unflushed) until the second session is live,
                // then flush: the stale event must be discarded.
                go_rx.recv().unwrap();
                flush_thread();
            });
            ready_rx.recv().unwrap();
            (handle, go_tx)
        };
        let _ = first.finish();
        let second = TraceSession::begin().expect("claim");
        handle.1.send(()).unwrap();
        handle.0.join().unwrap();
        let trace = second.finish();
        assert_eq!(trace.spans("stale.event").count(), 0, "{:?}", trace.events);
    }

    #[test]
    fn ring_overflow_counts_dropped_events() {
        let _guard = session_lock();
        let session = TraceSession::begin().expect("claim");
        for _ in 0..RING_CAPACITY + 10 {
            let _span = span("flood");
        }
        let trace = session.finish();
        assert_eq!(trace.dropped, 10);
        assert_eq!(trace.spans("flood").count(), RING_CAPACITY);
        // Drain order survives the wrap: starts stay non-decreasing.
        for pair in trace.events.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns);
        }
    }

    #[test]
    fn chrome_json_shape_and_escaping() {
        let _guard = session_lock();
        let session = TraceSession::begin().expect("claim");
        {
            let _span = span("chrome.span").arg("round", 7);
        }
        counter_add("chrome.counter", 42);
        let trace = session.finish();
        let json = trace.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"chrome.span\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"round\":7"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":42"));
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn summary_lists_spans_and_counters() {
        let _guard = session_lock();
        let session = TraceSession::begin().expect("claim");
        for _ in 0..4 {
            let _span = span("sum.step");
        }
        counter_add("sum.hits", 9);
        let trace = session.finish();
        let text = trace.summary();
        assert!(text.contains("sum.step"), "{text}");
        assert!(text.contains("counter sum.hits = 9"), "{text}");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1039);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1024);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        assert!(p50 <= p95, "{p50} > {p95}");
        assert!((1..=1024).contains(&p50));
        assert_eq!(h.quantile(1.0), 1024);
        h.record(0); // clamps to the first bucket
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn stats_accumulate_outside_sessions() {
        let _guard = session_lock();
        // Unique names: the registry is process-global and test-shared.
        stat_add("teststat.direct", 4);
        stat_add("teststat.direct", 6);
        let get = |name: &str| {
            stats_snapshot()
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(get("teststat.direct"), Some(10));

        // Without enable_stats, counter_add stays session-only.
        let before = get("teststat.mirrored");
        counter_add("teststat.mirrored", 1);
        assert_eq!(get("teststat.mirrored"), before);

        // With it, counter_add lands in the registry even with no
        // session active.
        enable_stats();
        assert!(!enabled());
        counter_add("teststat.mirrored", 3);
        assert_eq!(get("teststat.mirrored"), Some(before.unwrap_or(0) + 3));

        // Snapshot is sorted by name.
        let snap = stats_snapshot();
        let mut sorted = snap.clone();
        sorted.sort_by_key(|&(n, _)| n);
        assert_eq!(snap, sorted);
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.5us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }
}
