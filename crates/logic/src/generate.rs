//! Seeded random circuit generation.
//!
//! The paper evaluates on proprietary industrial designs; for circuit-level
//! experiments we need arbitrarily many netlists with controllable size and
//! X-source density. [`CircuitSpec::generate`] builds random, valid,
//! combinationally-acyclic sequential netlists with scannable flops,
//! uninitialized shadow flops and tri-state buses.

use crate::netlist::{FlopInit, GateKind, Netlist, NetlistBuilder, NodeId};
use xhc_prng::{SliceRandom, XhcRng};

/// Parameters for random circuit generation.
///
/// # Examples
///
/// ```
/// use xhc_logic::generate::CircuitSpec;
///
/// let spec = CircuitSpec {
///     num_inputs: 8,
///     num_gates: 60,
///     num_scan_flops: 16,
///     num_shadow_flops: 2,
///     num_buses: 1,
///     seed: 42,
///     ..CircuitSpec::default()
/// };
/// let circuit = spec.generate();
/// assert_eq!(circuit.scan_flops.len(), 16);
/// assert_eq!(circuit.netlist.num_inputs(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs (capped by available signals).
    pub num_outputs: usize,
    /// Number of combinational gates.
    pub num_gates: usize,
    /// Number of scannable flops.
    pub num_scan_flops: usize,
    /// Number of uninitialized non-scan flops (persistent X sources).
    pub num_shadow_flops: usize,
    /// Number of tri-state buses (each with 2–3 drivers; a floating or
    /// contending bus is an X source).
    pub num_buses: usize,
    /// Maximum gate fan-in (≥ 2).
    pub max_fanin: usize,
    /// RNG seed; the same spec always generates the same circuit.
    pub seed: u64,
}

impl Default for CircuitSpec {
    fn default() -> Self {
        CircuitSpec {
            num_inputs: 8,
            num_outputs: 4,
            num_gates: 100,
            num_scan_flops: 32,
            num_shadow_flops: 2,
            num_buses: 1,
            max_fanin: 4,
            seed: 0,
        }
    }
}

/// A generated circuit: the netlist plus the roles of its flops.
#[derive(Debug, Clone)]
pub struct GeneratedCircuit {
    /// The validated netlist.
    pub netlist: Netlist,
    /// Flop-vector indices of the scannable flops.
    pub scan_flops: Vec<usize>,
    /// Flop-vector indices of the uninitialized shadow flops.
    pub shadow_flops: Vec<usize>,
}

impl CircuitSpec {
    /// Generates the circuit described by this spec.
    ///
    /// Deterministic in `seed`. The result always validates: the generator
    /// only ever wires a node to previously created nodes, so the
    /// combinational graph is acyclic by construction, and flop D inputs
    /// are connected at the end (sequential feedback is allowed).
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs == 0` or `max_fanin < 2`.
    pub fn generate(&self) -> GeneratedCircuit {
        assert!(self.num_inputs > 0, "need at least one primary input");
        assert!(self.max_fanin >= 2, "max_fanin must be at least 2");
        let mut rng = XhcRng::seed_from_u64(self.seed);
        let mut b = NetlistBuilder::new();

        // Signal pool: anything a gate may use as fan-in.
        let mut pool: Vec<NodeId> = (0..self.num_inputs).map(|_| b.input()).collect();

        let mut scan_nodes = Vec::with_capacity(self.num_scan_flops);
        for _ in 0..self.num_scan_flops {
            let f = b.flop(FlopInit::Zero);
            scan_nodes.push(f);
            pool.push(f);
        }
        let mut shadow_nodes = Vec::with_capacity(self.num_shadow_flops);
        for _ in 0..self.num_shadow_flops {
            let f = b.flop(FlopInit::Unknown);
            shadow_nodes.push(f);
            pool.push(f);
        }

        const KINDS: [GateKind; 6] = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];

        // Interleave buses among the gates so bus outputs feed later logic.
        let bus_positions: Vec<usize> = (0..self.num_buses)
            .map(|i| (i + 1) * self.num_gates / (self.num_buses + 1))
            .collect();

        for g in 0..self.num_gates {
            if bus_positions.contains(&g) {
                let drivers: Vec<NodeId> = (0..rng.gen_range(2..=3))
                    .map(|_| {
                        let en = *pool.choose(&mut rng).expect("pool is non-empty");
                        let data = *pool.choose(&mut rng).expect("pool is non-empty");
                        b.tribuf(en, data)
                    })
                    .collect();
                let bus = b.bus(drivers);
                pool.push(bus);
            }
            let kind = *KINDS.choose(&mut rng).expect("kinds is non-empty");
            let fanin = rng.gen_range(2..=self.max_fanin.min(pool.len()).max(2));
            let mut ins = Vec::with_capacity(fanin);
            for _ in 0..fanin {
                ins.push(*pool.choose(&mut rng).expect("pool is non-empty"));
            }
            let out = b.gate(kind, ins);
            // Occasionally invert to diversify structure.
            let out = if rng.gen_bool(0.15) { b.not(out) } else { out };
            pool.push(out);
        }

        // Flop D inputs: bias toward late (deep) signals so state depends
        // on real logic rather than inputs directly.
        let late_start = pool.len() / 2;
        for &f in scan_nodes.iter().chain(&shadow_nodes) {
            let d = pool[rng.gen_range(late_start..pool.len())];
            b.connect_flop_d(f, d);
        }

        // Outputs from the deepest signals.
        let n_out = self.num_outputs.min(pool.len());
        for i in 0..n_out {
            b.output(pool[pool.len() - 1 - i]);
        }

        let netlist = b.finish().expect("generator builds valid netlists");
        let scan_flops = scan_nodes
            .iter()
            .map(|&f| netlist.flop_index(f).expect("scan flop exists"))
            .collect();
        let shadow_flops = shadow_nodes
            .iter()
            .map(|&f| netlist.flop_index(f).expect("shadow flop exists"))
            .collect();
        GeneratedCircuit {
            netlist,
            scan_flops,
            shadow_flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, Trit};

    #[test]
    fn default_spec_generates_valid_circuit() {
        let c = CircuitSpec::default().generate();
        assert_eq!(c.netlist.num_inputs(), 8);
        assert_eq!(c.scan_flops.len(), 32);
        assert_eq!(c.shadow_flops.len(), 2);
        assert_eq!(
            c.netlist.num_flops(),
            c.scan_flops.len() + c.shadow_flops.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CircuitSpec {
            seed: 7,
            ..CircuitSpec::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.netlist.num_nodes(), b.netlist.num_nodes());
        // Same structure: simulate both with the same vector and compare.
        let mut sa = Simulator::new(&a.netlist);
        let mut sb = Simulator::new(&b.netlist);
        let inputs = vec![Trit::One; 8];
        sa.eval(&inputs);
        sb.eval(&inputs);
        assert_eq!(sa.outputs(), sb.outputs());
        assert_eq!(sa.flop_next(), sb.flop_next());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CircuitSpec {
            seed: 1,
            ..CircuitSpec::default()
        }
        .generate();
        let b = CircuitSpec {
            seed: 2,
            ..CircuitSpec::default()
        }
        .generate();
        // Node counts can coincide; compare behaviour over several vectors.
        let mut sa = Simulator::new(&a.netlist);
        let mut sb = Simulator::new(&b.netlist);
        let mut all_same = true;
        for bits in 0..=255u8 {
            let inputs: Vec<Trit> = (0..8)
                .map(|i| Trit::from_bool(bits >> i & 1 == 1))
                .collect();
            sa.eval(&inputs);
            sb.eval(&inputs);
            if sa.flop_next() != sb.flop_next() {
                all_same = false;
                break;
            }
        }
        assert!(!all_same, "distinct seeds should give distinct circuits");
    }

    #[test]
    fn shadow_flops_inject_x() {
        // With shadow flops uninitialized, at least some captured next-state
        // bits should be X for some input vector.
        let c = CircuitSpec {
            num_shadow_flops: 4,
            num_buses: 2,
            seed: 3,
            ..CircuitSpec::default()
        }
        .generate();
        let mut sim = Simulator::new(&c.netlist);
        for &f in &c.scan_flops {
            sim.set_flop_state(f, Trit::Zero);
        }
        let mut saw_x = false;
        for bits in 0..=255u8 {
            let inputs: Vec<Trit> = (0..8)
                .map(|i| Trit::from_bool(bits >> i & 1 == 1))
                .collect();
            sim.eval(&inputs);
            let next = sim.flop_next();
            if c.scan_flops.iter().any(|&f| next[f].is_x()) {
                saw_x = true;
                break;
            }
        }
        assert!(saw_x, "X sources should reach scannable state");
    }

    #[test]
    #[should_panic(expected = "at least one primary input")]
    fn zero_inputs_panics() {
        CircuitSpec {
            num_inputs: 0,
            ..CircuitSpec::default()
        }
        .generate();
    }
}
