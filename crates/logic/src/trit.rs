//! Three-valued (0 / 1 / X) logic values.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A three-valued logic value: `0`, `1`, or unknown (`X`).
///
/// `X` models the unknown values that corrupt test-response compaction:
/// uninitialized memory elements, bus contention and floating tri-states
/// all evaluate to `X`. Gate semantics follow Kleene's strong three-valued
/// logic, which is what commercial logic/fault simulators use for scan
/// test: a controlling value dominates an `X` (`0 AND X = 0`), a
/// non-controlling value does not (`1 AND X = X`).
///
/// # Examples
///
/// ```
/// use xhc_logic::Trit;
///
/// assert_eq!(Trit::Zero & Trit::X, Trit::Zero);
/// assert_eq!(Trit::One & Trit::X, Trit::X);
/// assert_eq!(Trit::One | Trit::X, Trit::One);
/// assert_eq!(Trit::One ^ Trit::X, Trit::X);
/// assert_eq!(!Trit::X, Trit::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Logic 0.
    #[default]
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    X,
}

impl Trit {
    /// Converts a `bool` to a known trit.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Returns `Some(bool)` for a known value, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Whether the value is unknown.
    pub fn is_x(self) -> bool {
        self == Trit::X
    }

    /// Whether the value is `0` or `1`.
    pub fn is_known(self) -> bool {
        self != Trit::X
    }

    /// The single-character display form: `'0'`, `'1'` or `'X'`.
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::X => 'X',
        }
    }

    /// Parses `'0'`, `'1'`, `'x'` or `'X'`.
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(Trit::Zero),
            '1' => Some(Trit::One),
            'x' | 'X' => Some(Trit::X),
            _ => None,
        }
    }
}

impl From<bool> for Trit {
    fn from(b: bool) -> Self {
        Trit::from_bool(b)
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl BitAnd for Trit {
    type Output = Trit;
    fn bitand(self, rhs: Trit) -> Trit {
        use Trit::*;
        match (self, rhs) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }
}

impl BitOr for Trit {
    type Output = Trit;
    fn bitor(self, rhs: Trit) -> Trit {
        use Trit::*;
        match (self, rhs) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }
}

impl BitXor for Trit {
    type Output = Trit;
    fn bitxor(self, rhs: Trit) -> Trit {
        use Trit::*;
        match (self, rhs) {
            (X, _) | (_, X) => X,
            (a, b) => Trit::from_bool(a != b),
        }
    }
}

impl Not for Trit {
    type Output = Trit;
    fn not(self) -> Trit {
        use Trit::*;
        match self {
            Zero => One,
            One => Zero,
            X => X,
        }
    }
}

/// A tri-state driver value: a logic level or high impedance (`Z`).
///
/// Only tri-state buffers produce `Drive`s; ordinary nets carry [`Trit`]s.
/// A bus net resolves the `Drive`s of its drivers with [`resolve_bus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Drive {
    /// Actively driven to a logic value.
    Val(Trit),
    /// High impedance (not driving).
    Z,
}

/// Resolves the drivers of a bus net into a [`Trit`].
///
/// Resolution rules (matching the X-source taxonomy of the paper's §1):
///
/// * no active driver → *floating tri-state* → `X`;
/// * exactly one active driver → its value;
/// * several active drivers agreeing on a known value → that value;
/// * several active drivers that disagree or include `X`/possible drivers
///   (`Z` from an `X` enable is modelled conservatively by the tri-state
///   buffer itself) → *bus contention* → `X`.
///
/// # Examples
///
/// ```
/// use xhc_logic::{resolve_bus, Drive, Trit};
///
/// assert_eq!(resolve_bus([Drive::Z, Drive::Z]), Trit::X); // floating
/// assert_eq!(resolve_bus([Drive::Val(Trit::One), Drive::Z]), Trit::One);
/// assert_eq!(
///     resolve_bus([Drive::Val(Trit::One), Drive::Val(Trit::Zero)]),
///     Trit::X // contention
/// );
/// ```
pub fn resolve_bus<I: IntoIterator<Item = Drive>>(drivers: I) -> Trit {
    let mut resolved: Option<Trit> = None;
    for d in drivers {
        let Drive::Val(v) = d else { continue };
        resolved = Some(match resolved {
            None => v,
            Some(prev) if prev == v && v.is_known() => v,
            // Disagreement, or an X driver meeting anything: contention.
            Some(_) => return Trit::X,
        });
    }
    resolved.unwrap_or(Trit::X)
}

/// Evaluates a tri-state buffer: output `data` when `enable` is 1, `Z` when
/// `enable` is 0.
///
/// An unknown enable could mean driving or not; the only safe model is an
/// unknown *driven* value, so `enable = X` yields `Drive::Val(X)`.
pub fn tristate(enable: Trit, data: Trit) -> Drive {
    match enable {
        Trit::One => Drive::Val(data),
        Trit::Zero => Drive::Z,
        Trit::X => Drive::Val(Trit::X),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Trit::*;

    const ALL: [Trit; 3] = [Zero, One, X];

    #[test]
    fn and_truth_table() {
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(One & One, One);
        assert_eq!(Zero & X, Zero);
        assert_eq!(X & Zero, Zero);
        assert_eq!(One & X, X);
        assert_eq!(X & X, X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(One | Zero, One);
        assert_eq!(One | X, One);
        assert_eq!(Zero | X, X);
        assert_eq!(X | X, X);
    }

    #[test]
    fn xor_truth_table() {
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ One, Zero);
        assert_eq!(One ^ X, X);
        assert_eq!(X ^ X, X, "X ^ X is X, not 0: the X's may differ");
    }

    #[test]
    fn not_truth_table() {
        assert_eq!(!Zero, One);
        assert_eq!(!One, Zero);
        assert_eq!(!X, X);
    }

    #[test]
    fn ops_are_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a & b, b & a);
                assert_eq!(a | b, b | a);
                assert_eq!(a ^ b, b ^ a);
            }
        }
    }

    #[test]
    fn de_morgan_holds_in_kleene_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Trit::from(true), One);
        assert_eq!(Trit::from(false), Zero);
        assert_eq!(One.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
        assert!(X.is_x() && !X.is_known());
    }

    #[test]
    fn char_roundtrip() {
        for t in ALL {
            assert_eq!(Trit::from_char(t.to_char()), Some(t));
        }
        assert_eq!(Trit::from_char('x'), Some(X));
        assert_eq!(Trit::from_char('?'), None);
    }

    #[test]
    fn floating_bus_is_x() {
        assert_eq!(resolve_bus([]), X);
        assert_eq!(resolve_bus([Drive::Z, Drive::Z, Drive::Z]), X);
    }

    #[test]
    fn single_driver_wins() {
        assert_eq!(resolve_bus([Drive::Z, Drive::Val(One)]), One);
        assert_eq!(resolve_bus([Drive::Val(Zero)]), Zero);
        assert_eq!(resolve_bus([Drive::Val(X)]), X);
    }

    #[test]
    fn contention_is_x() {
        assert_eq!(resolve_bus([Drive::Val(One), Drive::Val(Zero)]), X);
        assert_eq!(resolve_bus([Drive::Val(One), Drive::Val(X)]), X);
        // Two agreeing known drivers are fine.
        assert_eq!(resolve_bus([Drive::Val(One), Drive::Val(One)]), One);
        // Two agreeing X drivers are still unknown (they may differ).
        assert_eq!(resolve_bus([Drive::Val(X), Drive::Val(X)]), X);
    }

    #[test]
    fn tristate_semantics() {
        assert_eq!(tristate(One, Zero), Drive::Val(Zero));
        assert_eq!(tristate(Zero, One), Drive::Z);
        assert_eq!(tristate(X, One), Drive::Val(X));
    }
}
