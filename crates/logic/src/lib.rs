//! Gate-level netlists and three-valued (0/1/X) logic simulation.
//!
//! This crate is the circuit substrate of the `xhybrid` workspace. Test
//! responses with unknown (X) values do not fall from the sky: they are
//! produced by real logic with uninitialized state, floating tri-states and
//! bus contention. This crate models all three X sources the paper lists
//! and simulates them faithfully with Kleene three-valued logic.
//!
//! * [`Trit`] — the 0/1/X value type, plus tri-state [`Drive`]s and bus
//!   resolution ([`resolve_bus`]).
//! * [`NetlistBuilder`] / [`Netlist`] — gate-level circuit construction and
//!   validation (arity checks, connected flops, combinational acyclicity).
//! * [`Simulator`] — levelized three-valued simulation with direct flop
//!   state access for scan.
//! * [`samples`] — small reference circuits (ISCAS-85 C17, a full adder,
//!   an X-prone sequential design).
//! * [`generate`] — seeded random circuit generation with controllable
//!   X-source density.
//!
//! # Examples
//!
//! ```
//! use xhc_logic::{NetlistBuilder, Simulator, Trit};
//!
//! // A floating tri-state bus produces an X.
//! let mut b = NetlistBuilder::new();
//! let en = b.input();
//! let data = b.input();
//! let t = b.tribuf(en, data);
//! let bus = b.bus(vec![t]);
//! b.output(bus);
//! let nl = b.finish()?;
//!
//! let mut sim = Simulator::new(&nl);
//! sim.eval(&[Trit::Zero, Trit::One]); // driver disabled
//! assert_eq!(sim.outputs(), vec![Trit::X]);
//! # Ok::<(), xhc_logic::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod netlist;
mod sim;
mod trit;

pub mod generate;
pub mod samples;

pub use netlist::{BuildError, FlopInit, GateKind, Netlist, NetlistBuilder, Node, NodeId};
pub use sim::{SimError, Simulator};
pub use trit::{resolve_bus, tristate, Drive, Trit};
