//! Gate-level netlist representation.

use crate::Trit;
use std::fmt;

/// Identifier of a node (gate output, input, constant, flop, bus) in a
/// [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A node id from a raw index — for deserializing externally stored
    /// references (fault lists, saved patterns). The id is *not* checked
    /// against any netlist here; fallible consumers such as
    /// [`Simulator::try_eval_forced`](crate::Simulator::try_eval_forced)
    /// validate on use.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Combinational gate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// N-input XOR (parity).
    Xor,
    /// N-input XNOR.
    Xnor,
    /// Inverter (1 input).
    Not,
    /// Buffer (1 input).
    Buf,
    /// 2:1 multiplexer; inputs are `[sel, a, b]`, output `a` when `sel=0`.
    Mux,
}

/// Initial (power-up) value of a state element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlopInit {
    /// Reset to 0.
    #[default]
    Zero,
    /// Reset to 1.
    One,
    /// Uninitialized — powers up as `X`. This is one of the paper's X
    /// sources ("uninitialized memory elements").
    Unknown,
}

impl FlopInit {
    /// The power-up logic value.
    pub fn value(self) -> Trit {
        match self {
            FlopInit::Zero => Trit::Zero,
            FlopInit::One => Trit::One,
            FlopInit::Unknown => Trit::X,
        }
    }
}

/// A node of the netlist graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Primary input (its position in the input vector).
    Input(usize),
    /// Constant value.
    Const(Trit),
    /// Combinational gate over the listed fan-in nodes.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// Fan-in node ids.
        inputs: Vec<NodeId>,
    },
    /// D flip-flop. The node's value is the flop's *current state*; `d` is
    /// sampled into the state on [`crate::Simulator::clock`].
    Flop {
        /// Data input (set by [`NetlistBuilder::connect_flop_d`]).
        d: Option<NodeId>,
        /// Power-up value.
        init: FlopInit,
    },
    /// Tri-state buffer: drives `data` onto its bus when `enable` is 1.
    TriBuf {
        /// Enable input.
        enable: NodeId,
        /// Data input.
        data: NodeId,
    },
    /// A bus net resolved from one or more [`Node::TriBuf`] drivers.
    Bus {
        /// The tri-state drivers of this bus.
        drivers: Vec<NodeId>,
    },
}

/// Errors produced while finalising a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A flop was never given a D input.
    UnconnectedFlop(NodeId),
    /// A gate has the wrong number of inputs for its kind.
    BadArity {
        /// The offending node.
        node: NodeId,
        /// What the gate kind requires.
        expected: &'static str,
        /// What it got.
        got: usize,
    },
    /// The combinational part of the graph has a cycle through these nodes.
    CombinationalCycle(Vec<NodeId>),
    /// A bus driver is not a tri-state buffer.
    NonTriBufDriver {
        /// The bus node.
        bus: NodeId,
        /// The offending driver.
        driver: NodeId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnconnectedFlop(n) => write!(f, "flop {n} has no D input"),
            BuildError::BadArity {
                node,
                expected,
                got,
            } => write!(f, "gate {node} expects {expected} inputs, got {got}"),
            BuildError::CombinationalCycle(nodes) => {
                write!(f, "combinational cycle through {} node(s)", nodes.len())
            }
            BuildError::NonTriBufDriver { bus, driver } => {
                write!(f, "bus {bus} driver {driver} is not a tri-state buffer")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// An immutable, validated gate-level netlist.
///
/// Built with [`NetlistBuilder`]; validated for connected flops, gate
/// arities and combinational acyclicity, and pre-levelized for fast
/// simulation.
///
/// # Examples
///
/// ```
/// use xhc_logic::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new();
/// let a = b.input();
/// let c = b.input();
/// let g = b.gate(GateKind::And, vec![a, c]);
/// b.output(g);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.num_inputs(), 2);
/// assert_eq!(netlist.num_outputs(), 1);
/// # Ok::<(), xhc_logic::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) flops: Vec<NodeId>,
    /// Combinational nodes in topological (evaluation) order.
    pub(crate) eval_order: Vec<NodeId>,
}

impl Netlist {
    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of state elements (flops).
    pub fn num_flops(&self) -> usize {
        self.flops.len()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node ids of the primary inputs, in input-vector order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The node ids of the primary outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The node ids of the flops, in flop-index order.
    pub fn flops(&self) -> &[NodeId] {
        &self.flops
    }

    /// The node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Position of `flop` in the flop-index order, if it is a flop.
    pub fn flop_index(&self, flop: NodeId) -> Option<usize> {
        self.flops.iter().position(|&f| f == flop)
    }

    /// Iterator over `(NodeId, &Node)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The combinational logic depth: the longest source-to-sink gate
    /// chain (sources — inputs, constants, flop outputs — are depth 0;
    /// every gate, tri-state buffer and bus adds one level).
    ///
    /// A rough proxy for the critical path, used by circuit-generation
    /// tests and reports.
    pub fn logic_depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max_depth = 0;
        for &id in &self.eval_order {
            let inputs: Vec<NodeId> = match self.node(id) {
                Node::Gate { inputs, .. } => inputs.clone(),
                Node::TriBuf { enable, data } => vec![*enable, *data],
                Node::Bus { drivers } => drivers.clone(),
                _ => continue,
            };
            let d = 1 + inputs.iter().map(|i| depth[i.index()]).max().unwrap_or(0);
            depth[id.index()] = d;
            max_depth = max_depth.max(d);
        }
        max_depth
    }
}

/// Incremental builder for [`Netlist`].
///
/// See [`Netlist`] for an example.
#[derive(Debug, Default, Clone)]
pub struct NetlistBuilder {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    flops: Vec<NodeId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds a primary input and returns its node.
    pub fn input(&mut self) -> NodeId {
        let idx = self.inputs.len();
        let id = self.push(Node::Input(idx));
        self.inputs.push(id);
        id
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: Trit) -> NodeId {
        self.push(Node::Const(value))
    }

    /// Adds a combinational gate.
    pub fn gate(&mut self, kind: GateKind, inputs: Vec<NodeId>) -> NodeId {
        self.push(Node::Gate { kind, inputs })
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.gate(GateKind::Not, vec![a])
    }

    /// Adds a 2-input AND.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::And, vec![a, b])
    }

    /// Adds a 2-input OR.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Or, vec![a, b])
    }

    /// Adds a 2-input XOR.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Xor, vec![a, b])
    }

    /// Adds a 2-input NAND.
    pub fn nand2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Nand, vec![a, b])
    }

    /// Adds a 2:1 mux (`sel=0` selects `a`).
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Mux, vec![sel, a, b])
    }

    /// Adds a flop with the given power-up value. Connect its D input later
    /// with [`connect_flop_d`](Self::connect_flop_d).
    pub fn flop(&mut self, init: FlopInit) -> NodeId {
        let id = self.push(Node::Flop { d: None, init });
        self.flops.push(id);
        id
    }

    /// Connects the D input of a flop created by [`flop`](Self::flop).
    ///
    /// # Panics
    ///
    /// Panics if `flop` is not a flop node.
    pub fn connect_flop_d(&mut self, flop: NodeId, d: NodeId) {
        match &mut self.nodes[flop.index()] {
            Node::Flop { d: slot, .. } => *slot = Some(d),
            other => panic!("node {flop} is not a flop: {other:?}"),
        }
    }

    /// Adds a tri-state buffer driving `data` when `enable` is 1.
    pub fn tribuf(&mut self, enable: NodeId, data: NodeId) -> NodeId {
        self.push(Node::TriBuf { enable, data })
    }

    /// Adds a bus net resolved from tri-state `drivers`.
    pub fn bus(&mut self, drivers: Vec<NodeId>) -> NodeId {
        self.push(Node::Bus { drivers })
    }

    /// Marks a node as a primary output.
    pub fn output(&mut self, node: NodeId) {
        self.outputs.push(node);
    }

    /// Validates and levelizes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a flop has no D input, a gate has an
    /// invalid arity, a bus driver is not a tri-state buffer, or the
    /// combinational graph is cyclic.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        // Arity / connectivity validation.
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Flop { d: None, .. } => return Err(BuildError::UnconnectedFlop(id)),
                Node::Gate { kind, inputs } => {
                    let ok = match kind {
                        GateKind::Not | GateKind::Buf => inputs.len() == 1,
                        GateKind::Mux => inputs.len() == 3,
                        _ => inputs.len() >= 2,
                    };
                    if !ok {
                        let expected = match kind {
                            GateKind::Not | GateKind::Buf => "exactly 1",
                            GateKind::Mux => "exactly 3",
                            _ => "at least 2",
                        };
                        return Err(BuildError::BadArity {
                            node: id,
                            expected,
                            got: inputs.len(),
                        });
                    }
                }
                Node::Bus { drivers } => {
                    for &drv in drivers {
                        if !matches!(self.nodes[drv.index()], Node::TriBuf { .. }) {
                            return Err(BuildError::NonTriBufDriver {
                                bus: id,
                                driver: drv,
                            });
                        }
                    }
                }
                _ => {}
            }
        }

        // Kahn levelization over combinational edges (flop D edges cut).
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        let comb_inputs = |node: &Node| -> Vec<NodeId> {
            match node {
                Node::Gate { inputs, .. } => inputs.clone(),
                Node::TriBuf { enable, data } => vec![*enable, *data],
                Node::Bus { drivers } => drivers.clone(),
                _ => Vec::new(),
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            for src in comb_inputs(node) {
                indegree[i] += 1;
                fanout[src.index()].push(i as u32);
            }
        }
        let mut ready: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut eval_order = Vec::with_capacity(n);
        let mut seen = 0usize;
        while let Some(i) = ready.pop() {
            seen += 1;
            let node = &self.nodes[i as usize];
            if matches!(
                node,
                Node::Gate { .. } | Node::TriBuf { .. } | Node::Bus { .. }
            ) {
                eval_order.push(NodeId(i));
            }
            for &f in &fanout[i as usize] {
                indegree[f as usize] -= 1;
                if indegree[f as usize] == 0 {
                    ready.push(f);
                }
            }
        }
        if seen != n {
            let cyclic: Vec<NodeId> = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| NodeId(i as u32))
                .collect();
            return Err(BuildError::CombinationalCycle(cyclic));
        }
        // Kahn with a stack doesn't give a level order, but any topological
        // order is a valid evaluation order. Re-sort for determinism.
        // (The pop order above already is topological; sorting by discovery
        // is unnecessary.)

        Ok(Netlist {
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            flops: self.flops,
            eval_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_and() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let g = b.and2(a, c);
        b.output(g);
        let nl = b.finish().unwrap();
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.num_flops(), 0);
        assert_eq!(nl.eval_order, vec![g]);
    }

    #[test]
    fn unconnected_flop_is_an_error() {
        let mut b = NetlistBuilder::new();
        b.flop(FlopInit::Zero);
        assert!(matches!(b.finish(), Err(BuildError::UnconnectedFlop(_))));
    }

    #[test]
    fn bad_arity_is_an_error() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        b.gate(GateKind::And, vec![a]);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::BadArity { .. }));
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn mux_requires_three_inputs() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        b.gate(GateKind::Mux, vec![a, c]);
        assert!(matches!(b.finish(), Err(BuildError::BadArity { .. })));
    }

    #[test]
    fn combinational_cycle_detected() {
        // g1 = AND(a, g2); g2 = OR(g1, a) — cyclic.
        let mut b = NetlistBuilder::new();
        let a = b.input();
        // Manually create mutual dependency by pre-allocating gate slots:
        // builder has no forward references, so emulate with a flop-free
        // self-loop via Bus? Simplest: gate that references a later id is
        // impossible through the API. Instead reference itself:
        let g = b.gate(GateKind::And, vec![a, NodeId(1)]); // NodeId(1) == g itself
        b.output(g);
        assert!(matches!(b.finish(), Err(BuildError::CombinationalCycle(_))));
    }

    #[test]
    fn flop_d_edge_breaks_cycles() {
        // A feedback loop through a flop is fine: q = flop(not q).
        let mut b = NetlistBuilder::new();
        let q = b.flop(FlopInit::Zero);
        let nq = b.not(q);
        b.connect_flop_d(q, nq);
        b.output(q);
        let nl = b.finish().unwrap();
        assert_eq!(nl.num_flops(), 1);
    }

    #[test]
    fn bus_driver_must_be_tribuf() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        b.bus(vec![a]);
        assert!(matches!(
            b.finish(),
            Err(BuildError::NonTriBufDriver { .. })
        ));
    }

    #[test]
    fn eval_order_is_topological() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let g1 = b.and2(a, c);
        let g2 = b.or2(g1, a);
        let g3 = b.xor2(g2, g1);
        b.output(g3);
        let nl = b.finish().unwrap();
        let pos = |id: NodeId| nl.eval_order.iter().position(|&n| n == id).unwrap();
        assert!(pos(g1) < pos(g2));
        assert!(pos(g2) < pos(g3));
    }

    #[test]
    fn flop_init_values() {
        assert_eq!(FlopInit::Zero.value(), Trit::Zero);
        assert_eq!(FlopInit::One.value(), Trit::One);
        assert_eq!(FlopInit::Unknown.value(), Trit::X);
    }

    #[test]
    fn logic_depth_counts_levels() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let g1 = b.and2(a, c); // depth 1
        let g2 = b.or2(g1, a); // depth 2
        let g3 = b.xor2(g2, g1); // depth 3
        b.output(g3);
        let nl = b.finish().unwrap();
        assert_eq!(nl.logic_depth(), 3);
    }

    #[test]
    fn logic_depth_of_sources_only_is_zero() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        b.output(a);
        assert_eq!(b.finish().unwrap().logic_depth(), 0);
    }

    #[test]
    fn adder_depth_grows_linearly() {
        use crate::samples;
        let d4 = samples::ripple_carry_adder(4).logic_depth();
        let d8 = samples::ripple_carry_adder(8).logic_depth();
        assert!(d8 > d4, "carry chain must deepen: {d4} vs {d8}");
    }

    #[test]
    fn error_display_nonempty() {
        let e = BuildError::UnconnectedFlop(NodeId(3));
        assert!(e.to_string().contains("n3"));
    }
}
