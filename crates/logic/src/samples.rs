//! Small reference circuits used across the workspace's tests and examples.

use crate::netlist::{FlopInit, Netlist, NetlistBuilder, NodeId};

/// The ISCAS-85 C17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
///
/// The smallest standard combinational benchmark; used as a known-good
/// target for the ATPG and fault-simulation crates.
///
/// # Examples
///
/// ```
/// let c17 = xhc_logic::samples::c17();
/// assert_eq!(c17.num_inputs(), 5);
/// assert_eq!(c17.num_outputs(), 2);
/// ```
pub fn c17() -> Netlist {
    let mut b = NetlistBuilder::new();
    let n1 = b.input();
    let n2 = b.input();
    let n3 = b.input();
    let n6 = b.input();
    let n7 = b.input();
    let n10 = b.nand2(n1, n3);
    let n11 = b.nand2(n3, n6);
    let n16 = b.nand2(n2, n11);
    let n19 = b.nand2(n11, n7);
    let n22 = b.nand2(n10, n16);
    let n23 = b.nand2(n16, n19);
    b.output(n22);
    b.output(n23);
    b.finish().expect("c17 is a valid netlist")
}

/// A 1-bit full adder: inputs `[a, b, cin]`, outputs `[sum, cout]`.
pub fn full_adder() -> Netlist {
    let mut b = NetlistBuilder::new();
    let a = b.input();
    let c = b.input();
    let cin = b.input();
    let axb = b.xor2(a, c);
    let sum = b.xor2(axb, cin);
    let t1 = b.and2(a, c);
    let t2 = b.and2(axb, cin);
    let cout = b.or2(t1, t2);
    b.output(sum);
    b.output(cout);
    b.finish().expect("full adder is a valid netlist")
}

/// A small sequential circuit with all three X sources the paper lists:
///
/// * one **uninitialized** (non-scan) shadow flop,
/// * a **tri-state bus** with two drivers that can float or contend,
/// * four scannable state flops mixing the X's into captured responses.
///
/// Returns the netlist and the flop-vector indices of the scannable flops
/// (the shadow flop is excluded — it is not on any scan chain).
pub fn x_prone_sequential() -> (Netlist, Vec<usize>) {
    let mut b = NetlistBuilder::new();
    let in0 = b.input();
    let in1 = b.input();
    let in2 = b.input();

    // Scannable state.
    let q0 = b.flop(FlopInit::Zero);
    let q1 = b.flop(FlopInit::Zero);
    let q2 = b.flop(FlopInit::Zero);
    let q3 = b.flop(FlopInit::Zero);
    // Uninitialized shadow register: a persistent X source.
    let shadow = b.flop(FlopInit::Unknown);

    // Tri-state bus: two drivers, enables from state.
    let t0 = b.tribuf(q0, in0);
    let t1 = b.tribuf(q1, in1);
    let bus = b.bus(vec![t0, t1]);

    // Next-state logic mixing bus, shadow and inputs.
    let d0 = b.xor2(bus, in2);
    let d1 = b.and2(shadow, in0);
    let or01 = b.or2(q0, q1);
    let d2 = b.xor2(or01, shadow);
    let nb = b.not(bus);
    let d3 = b.and2(nb, q2);
    let dsh = b.xor2(shadow, in2); // shadow keeps cycling its own X

    b.connect_flop_d(q0, d0);
    b.connect_flop_d(q1, d1);
    b.connect_flop_d(q2, d2);
    b.connect_flop_d(q3, d3);
    b.connect_flop_d(shadow, dsh);

    b.output(bus);
    b.output(d2);

    let nl = b.finish().expect("x_prone_sequential is a valid netlist");
    let scan_flops: Vec<usize> = [q0, q1, q2, q3]
        .iter()
        .map(|&f| nl.flop_index(f).expect("scan flop exists"))
        .collect();
    (nl, scan_flops)
}

/// Node ids of the `c17` primary inputs, for tests that need to name them.
pub fn c17_input_ids() -> Vec<NodeId> {
    c17().inputs().to_vec()
}

/// An `n`-bit ripple-carry adder: inputs `[a0..a(n-1), b0..b(n-1), cin]`,
/// outputs `[s0..s(n-1), cout]`.
///
/// A structured, fully testable combinational benchmark for ATPG and
/// fault-simulation experiments at arbitrary size.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let adder = xhc_logic::samples::ripple_carry_adder(4);
/// assert_eq!(adder.num_inputs(), 9);  // 4 + 4 + carry-in
/// assert_eq!(adder.num_outputs(), 5); // 4 sums + carry-out
/// ```
pub fn ripple_carry_adder(n: usize) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut b = NetlistBuilder::new();
    let a: Vec<_> = (0..n).map(|_| b.input()).collect();
    let bb: Vec<_> = (0..n).map(|_| b.input()).collect();
    let mut carry = b.input(); // cin
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let axb = b.xor2(a[i], bb[i]);
        let sum = b.xor2(axb, carry);
        let t1 = b.and2(a[i], bb[i]);
        let t2 = b.and2(axb, carry);
        carry = b.or2(t1, t2);
        sums.push(sum);
    }
    for s in sums {
        b.output(s);
    }
    b.output(carry);
    b.finish().expect("ripple-carry adder is a valid netlist")
}

/// An `n × n`-bit array multiplier: inputs `[a0.., b0..]`, outputs the
/// `2n`-bit product, LSB first. Built from AND partial products and
/// ripple-carry rows — a deep, reconvergent ATPG workout.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(n: usize) -> Netlist {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = NetlistBuilder::new();
    let a: Vec<_> = (0..n).map(|_| b.input()).collect();
    let bb: Vec<_> = (0..n).map(|_| b.input()).collect();
    let zero = b.constant(crate::Trit::Zero);

    // Partial products: pp[i][j] = a[j] & b[i], weight i + j.
    // Accumulate row by row with full adders.
    let mut acc: Vec<NodeId> = (0..n).map(|j| b.and2(a[j], bb[0])).collect();
    acc.push(zero); // carry slot
    let mut product = vec![acc[0]];
    let mut carry_word: Vec<NodeId> = acc[1..].to_vec(); // n entries (last is 0)
    for b_i in bb.iter().skip(1) {
        let pp: Vec<_> = (0..n).map(|j| b.and2(a[j], *b_i)).collect();
        let mut next = Vec::with_capacity(n + 1);
        let mut carry = zero;
        for j in 0..n {
            // sum = pp[j] + carry_word[j] + carry
            let x = b.xor2(pp[j], carry_word[j]);
            let s = b.xor2(x, carry);
            let t1 = b.and2(pp[j], carry_word[j]);
            let t2 = b.and2(x, carry);
            carry = b.or2(t1, t2);
            next.push(s);
        }
        next.push(carry);
        product.push(next[0]);
        carry_word = next[1..].to_vec();
    }
    for &p in &product {
        b.output(p);
    }
    for &c in &carry_word {
        b.output(c);
    }
    b.finish().expect("array multiplier is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, Trit};

    #[test]
    fn c17_known_vector() {
        // With all inputs 0: n10=n11=1, n16=nand(0,1)=1, n19=nand(1,0)=1,
        // n22=nand(1,1)=0, n23=nand(1,1)=0.
        let nl = c17();
        let mut sim = Simulator::new(&nl);
        sim.eval(&[Trit::Zero; 5]);
        assert_eq!(sim.outputs(), vec![Trit::Zero, Trit::Zero]);

        // All ones: n10=0, n11=0, n16=1, n19=1, n22=nand(0,1)=1, n23=0.
        sim.eval(&[Trit::One; 5]);
        assert_eq!(sim.outputs(), vec![Trit::One, Trit::Zero]);
    }

    #[test]
    fn full_adder_exhaustive() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl);
        for a in 0..2u8 {
            for b_ in 0..2u8 {
                for cin in 0..2u8 {
                    sim.eval(&[
                        Trit::from_bool(a == 1),
                        Trit::from_bool(b_ == 1),
                        Trit::from_bool(cin == 1),
                    ]);
                    let total = a + b_ + cin;
                    let out = sim.outputs();
                    assert_eq!(out[0], Trit::from_bool(total % 2 == 1), "sum");
                    assert_eq!(out[1], Trit::from_bool(total >= 2), "carry");
                }
            }
        }
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let nl = ripple_carry_adder(4);
        let mut sim = Simulator::new(&nl);
        for a in 0..16u32 {
            for b_ in 0..16u32 {
                for cin in 0..2u32 {
                    let mut inputs = Vec::new();
                    for i in 0..4 {
                        inputs.push(Trit::from_bool(a >> i & 1 == 1));
                    }
                    for i in 0..4 {
                        inputs.push(Trit::from_bool(b_ >> i & 1 == 1));
                    }
                    inputs.push(Trit::from_bool(cin == 1));
                    sim.eval(&inputs);
                    let out = sim.outputs();
                    let expect = a + b_ + cin;
                    for (i, &o) in out.iter().enumerate() {
                        assert_eq!(
                            o,
                            Trit::from_bool(expect >> i & 1 == 1),
                            "bit {i} of {a}+{b_}+{cin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_3bit() {
        let nl = array_multiplier(3);
        assert_eq!(nl.num_outputs(), 6);
        let mut sim = Simulator::new(&nl);
        for a in 0..8u32 {
            for b_ in 0..8u32 {
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push(Trit::from_bool(a >> i & 1 == 1));
                }
                for i in 0..3 {
                    inputs.push(Trit::from_bool(b_ >> i & 1 == 1));
                }
                sim.eval(&inputs);
                let out = sim.outputs();
                let expect = a * b_;
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(
                        o,
                        Trit::from_bool(expect >> i & 1 == 1),
                        "bit {i} of {a}*{b_}={expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn x_propagates_through_adder() {
        let nl = ripple_carry_adder(2);
        let mut sim = Simulator::new(&nl);
        // a=01, b=0X, cin=0: s0 = 1^X = X, but carry chain stays known 0
        // only if the X cannot generate a carry... a0&b0 = 1&X = X, so
        // cout of stage 0 is X and everything downstream degrades.
        sim.eval(&[Trit::One, Trit::Zero, Trit::X, Trit::Zero, Trit::Zero]);
        let out = sim.outputs();
        assert_eq!(out[0], Trit::X);
    }

    #[test]
    fn x_prone_circuit_captures_x() {
        let (nl, scan) = x_prone_sequential();
        assert_eq!(scan.len(), 4);
        let mut sim = Simulator::new(&nl);
        // Scan-load zeros, apply a pattern: both tri-states disabled ->
        // floating bus -> X propagates into d0.
        for &f in &scan {
            sim.set_flop_state(f, Trit::Zero);
        }
        sim.eval(&[Trit::One, Trit::One, Trit::Zero]);
        let next = sim.flop_next();
        assert_eq!(next[scan[0]], Trit::X, "floating bus X reaches q0");
        // Shadow flop is uninitialized: d1 = shadow & in0 = X & 1 = X.
        assert_eq!(next[scan[1]], Trit::X, "shadow X reaches q1");
    }
}
