//! Three-valued event-free (levelized) simulation.

use crate::netlist::{GateKind, Netlist, Node, NodeId};
use crate::trit::{resolve_bus, tristate, Drive, Trit};
use std::fmt;

/// Why a simulation request was rejected.
///
/// Most `Simulator` entry points panic on misuse (the callers inside this
/// workspace always pass vectors they just sized off the same netlist),
/// but requests built from *external* data — a fault list read from disk,
/// a pattern file — should go through the fallible
/// [`try_eval_forced`](Simulator::try_eval_forced) and surface these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The input vector does not match the netlist's primary input count.
    InputLengthMismatch {
        /// What the netlist requires.
        expected: usize,
        /// What the caller passed.
        got: usize,
    },
    /// A forced node id does not exist in the netlist.
    ForcedNodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the netlist.
        num_nodes: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputLengthMismatch { expected, got } => {
                write!(
                    f,
                    "input vector length mismatch: expected {expected}, got {got}"
                )
            }
            SimError::ForcedNodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "forced node {node:?} out of range for a {num_nodes}-node netlist"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A levelized three-valued simulator for a [`Netlist`].
///
/// The simulator owns the flop state vector and a per-node value array. A
/// simulation step is: assign primary inputs, [`eval`](Simulator::eval) the
/// combinational logic, read outputs / flop D values, then
/// [`clock`](Simulator::clock) to latch the next state.
///
/// Scan infrastructure (in `xhc-scan`) bypasses functional D inputs by
/// writing the state vector directly via
/// [`set_flop_state`](Simulator::set_flop_state); capture uses the normal
/// `eval` + `clock` path.
///
/// # Examples
///
/// ```
/// use xhc_logic::{NetlistBuilder, Simulator, Trit};
///
/// let mut b = NetlistBuilder::new();
/// let a = b.input();
/// let c = b.input();
/// let g = b.xor2(a, c);
/// b.output(g);
/// let nl = b.finish()?;
///
/// let mut sim = Simulator::new(&nl);
/// sim.eval(&[Trit::One, Trit::X]);
/// assert_eq!(sim.outputs(), vec![Trit::X]);
/// sim.eval(&[Trit::One, Trit::One]);
/// assert_eq!(sim.outputs(), vec![Trit::Zero]);
/// # Ok::<(), xhc_logic::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    values: Vec<Trit>,
    drives: Vec<Drive>,
    state: Vec<Trit>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with every flop at its power-up value.
    pub fn new(netlist: &'a Netlist) -> Self {
        let state = netlist
            .flops
            .iter()
            .map(|&f| match netlist.node(f) {
                Node::Flop { init, .. } => init.value(),
                _ => unreachable!("flop list holds only flops"),
            })
            .collect();
        Simulator {
            netlist,
            values: vec![Trit::X; netlist.num_nodes()],
            drives: vec![Drive::Z; netlist.num_nodes()],
            state,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Current state of flop `flop_index` (flop-vector order).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn flop_state(&self, flop_index: usize) -> Trit {
        self.state[flop_index]
    }

    /// Overwrites the state of flop `flop_index` (e.g. a scan load).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_flop_state(&mut self, flop_index: usize, value: Trit) {
        self.state[flop_index] = value;
    }

    /// The full flop state vector.
    pub fn state(&self) -> &[Trit] {
        &self.state
    }

    /// Replaces the full flop state vector.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != num_flops`.
    pub fn set_state(&mut self, state: &[Trit]) {
        assert_eq!(
            state.len(),
            self.state.len(),
            "state vector length mismatch"
        );
        self.state.copy_from_slice(state);
    }

    /// Resets every flop to its power-up value.
    pub fn reset(&mut self) {
        for (i, &f) in self.netlist.flops.iter().enumerate() {
            if let Node::Flop { init, .. } = self.netlist.node(f) {
                self.state[i] = init.value();
            }
        }
    }

    /// Evaluates the combinational logic for the given primary inputs and
    /// the current flop state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    pub fn eval(&mut self, inputs: &[Trit]) {
        self.eval_forced(inputs, &[]);
    }

    /// Like [`eval`](Self::eval), but forces the listed nodes to fixed
    /// values after their normal evaluation — the primitive used for
    /// stuck-at fault injection (a stuck-at-v fault at a node's output
    /// forces that node to `v` regardless of its inputs).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs` or a forced node is out of
    /// range. For requests built from external data, use
    /// [`try_eval_forced`](Self::try_eval_forced) instead.
    pub fn eval_forced(&mut self, inputs: &[Trit], forced: &[(NodeId, Trit)]) {
        assert_eq!(
            inputs.len(),
            self.netlist.num_inputs(),
            "input vector length mismatch"
        );
        if let Some(&(node, _)) = forced
            .iter()
            .find(|(n, _)| n.index() >= self.netlist.num_nodes())
        {
            panic!(
                "forced node {node:?} out of range for a {}-node netlist",
                self.netlist.num_nodes()
            );
        }
        self.eval_forced_unchecked(inputs, forced);
    }

    /// Fallible variant of [`eval_forced`](Self::eval_forced): rejects
    /// mis-sized input vectors and out-of-range forced nodes with a typed
    /// [`SimError`] instead of panicking. On error the simulator state is
    /// untouched.
    pub fn try_eval_forced(
        &mut self,
        inputs: &[Trit],
        forced: &[(NodeId, Trit)],
    ) -> Result<(), SimError> {
        if inputs.len() != self.netlist.num_inputs() {
            return Err(SimError::InputLengthMismatch {
                expected: self.netlist.num_inputs(),
                got: inputs.len(),
            });
        }
        if let Some(&(node, _)) = forced
            .iter()
            .find(|(n, _)| n.index() >= self.netlist.num_nodes())
        {
            return Err(SimError::ForcedNodeOutOfRange {
                node,
                num_nodes: self.netlist.num_nodes(),
            });
        }
        self.eval_forced_unchecked(inputs, forced);
        Ok(())
    }

    fn eval_forced_unchecked(&mut self, inputs: &[Trit], forced: &[(NodeId, Trit)]) {
        let forced_value =
            |id: NodeId| -> Option<Trit> { forced.iter().find(|(n, _)| *n == id).map(|&(_, v)| v) };
        // Seed sources.
        for (id, node) in self.netlist.iter_nodes() {
            match node {
                Node::Input(idx) => self.values[id.index()] = inputs[*idx],
                Node::Const(v) => self.values[id.index()] = *v,
                Node::Flop { .. } => {
                    let fi = self
                        .netlist
                        .flop_index(id)
                        .expect("flop node must be in the flop list");
                    self.values[id.index()] = self.state[fi];
                }
                _ => {}
            }
            if !matches!(
                node,
                Node::Gate { .. } | Node::TriBuf { .. } | Node::Bus { .. }
            ) {
                if let Some(v) = forced_value(id) {
                    self.values[id.index()] = v;
                }
            }
        }
        // Evaluate combinational nodes in topological order.
        for &id in &self.netlist.eval_order {
            match self.netlist.node(id) {
                Node::Gate { kind, inputs } => {
                    self.values[id.index()] = eval_gate(*kind, inputs, &self.values);
                }
                Node::TriBuf { enable, data } => {
                    let drv = tristate(self.values[enable.index()], self.values[data.index()]);
                    self.drives[id.index()] = drv;
                    // A tri-buf observed as an ordinary net reads as X when
                    // not driving.
                    self.values[id.index()] = match drv {
                        Drive::Val(v) => v,
                        Drive::Z => Trit::X,
                    };
                }
                Node::Bus { drivers } => {
                    self.values[id.index()] =
                        resolve_bus(drivers.iter().map(|d| self.drives[d.index()]));
                }
                _ => unreachable!("eval_order holds only combinational nodes"),
            }
            if let Some(v) = forced_value(id) {
                self.values[id.index()] = v;
                // A forced tri-buf actively drives the forced value.
                if matches!(self.netlist.node(id), Node::TriBuf { .. }) {
                    self.drives[id.index()] = Drive::Val(v);
                }
            }
        }
    }

    /// The value of node `id` from the most recent [`eval`](Self::eval).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value(&self, id: NodeId) -> Trit {
        self.values[id.index()]
    }

    /// Primary output values from the most recent [`eval`](Self::eval).
    pub fn outputs(&self) -> Vec<Trit> {
        self.netlist
            .outputs
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// D-input values of every flop from the most recent
    /// [`eval`](Self::eval) — what the flops *would* capture.
    pub fn flop_next(&self) -> Vec<Trit> {
        self.netlist
            .flops
            .iter()
            .map(|&f| match self.netlist.node(f) {
                Node::Flop { d: Some(d), .. } => self.values[d.index()],
                _ => unreachable!("validated netlist has connected flops"),
            })
            .collect()
    }

    /// Latches the D inputs into the state vector (a capture clock).
    ///
    /// Call after [`eval`](Self::eval).
    pub fn clock(&mut self) {
        let next = self.flop_next();
        self.state.copy_from_slice(&next);
    }

    /// Convenience: `eval` then `clock`, returning the primary outputs
    /// observed *before* the clock edge.
    pub fn step(&mut self, inputs: &[Trit]) -> Vec<Trit> {
        self.eval(inputs);
        let out = self.outputs();
        self.clock();
        out
    }
}

fn eval_gate(kind: GateKind, inputs: &[NodeId], values: &[Trit]) -> Trit {
    let v = |i: usize| values[inputs[i].index()];
    match kind {
        GateKind::And => inputs
            .iter()
            .map(|n| values[n.index()])
            .fold(Trit::One, |a, b| a & b),
        GateKind::Or => inputs
            .iter()
            .map(|n| values[n.index()])
            .fold(Trit::Zero, |a, b| a | b),
        GateKind::Nand => !inputs
            .iter()
            .map(|n| values[n.index()])
            .fold(Trit::One, |a, b| a & b),
        GateKind::Nor => !inputs
            .iter()
            .map(|n| values[n.index()])
            .fold(Trit::Zero, |a, b| a | b),
        GateKind::Xor => inputs
            .iter()
            .map(|n| values[n.index()])
            .fold(Trit::Zero, |a, b| a ^ b),
        GateKind::Xnor => !inputs
            .iter()
            .map(|n| values[n.index()])
            .fold(Trit::Zero, |a, b| a ^ b),
        GateKind::Not => !v(0),
        GateKind::Buf => v(0),
        GateKind::Mux => match v(0) {
            Trit::Zero => v(1),
            Trit::One => v(2),
            Trit::X => {
                // An unknown select still yields a known output when both
                // data inputs agree on a known value.
                let (a, b) = (v(1), v(2));
                if a == b && a.is_known() {
                    a
                } else {
                    Trit::X
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{FlopInit, NetlistBuilder};
    use Trit::{One, Zero, X};

    #[test]
    fn gate_semantics_through_sim() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let and = b.and2(a, c);
        let or = b.or2(a, c);
        let xor = b.xor2(a, c);
        let nand = b.nand2(a, c);
        for g in [and, or, xor, nand] {
            b.output(g);
        }
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        sim.eval(&[Zero, X]);
        assert_eq!(sim.outputs(), vec![Zero, X, X, One]);
        sim.eval(&[One, X]);
        assert_eq!(sim.outputs(), vec![X, One, X, X]);
        sim.eval(&[One, One]);
        assert_eq!(sim.outputs(), vec![One, One, Zero, Zero]);
    }

    #[test]
    fn mux_with_x_select() {
        let mut b = NetlistBuilder::new();
        let s = b.input();
        let a = b.input();
        let c = b.input();
        let m = b.mux(s, a, c);
        b.output(m);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        sim.eval(&[Zero, One, Zero]);
        assert_eq!(sim.outputs(), vec![One]);
        sim.eval(&[One, One, Zero]);
        assert_eq!(sim.outputs(), vec![Zero]);
        // X select, agreeing data -> known output.
        sim.eval(&[X, One, One]);
        assert_eq!(sim.outputs(), vec![One]);
        // X select, disagreeing data -> X.
        sim.eval(&[X, One, Zero]);
        assert_eq!(sim.outputs(), vec![X]);
    }

    #[test]
    fn uninitialized_flop_produces_x() {
        let mut b = NetlistBuilder::new();
        let inp = b.input();
        let shadow = b.flop(FlopInit::Unknown);
        let g = b.xor2(inp, shadow);
        b.connect_flop_d(shadow, inp);
        b.output(g);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        // Power-up: shadow is X -> output is X regardless of the input.
        sim.eval(&[One]);
        assert_eq!(sim.outputs(), vec![X]);
        // After a clock the flop holds the (known) input; X washes out.
        sim.clock();
        sim.eval(&[Zero]);
        assert_eq!(sim.outputs(), vec![One]); // 0 ^ 1
    }

    #[test]
    fn floating_bus_and_contention() {
        let mut b = NetlistBuilder::new();
        let en1 = b.input();
        let en2 = b.input();
        let d1 = b.input();
        let d2 = b.input();
        let t1 = b.tribuf(en1, d1);
        let t2 = b.tribuf(en2, d2);
        let bus = b.bus(vec![t1, t2]);
        b.output(bus);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        // Nobody drives: floating -> X.
        sim.eval(&[Zero, Zero, One, Zero]);
        assert_eq!(sim.outputs(), vec![X]);
        // One driver.
        sim.eval(&[One, Zero, One, Zero]);
        assert_eq!(sim.outputs(), vec![One]);
        // Contention.
        sim.eval(&[One, One, One, Zero]);
        assert_eq!(sim.outputs(), vec![X]);
        // Agreement.
        sim.eval(&[One, One, One, One]);
        assert_eq!(sim.outputs(), vec![One]);
    }

    #[test]
    fn sequential_toggle() {
        // q' = !q starting from 0: 0, 1, 0, 1, …
        let mut b = NetlistBuilder::new();
        let q = b.flop(FlopInit::Zero);
        let nq = b.not(q);
        b.connect_flop_d(q, nq);
        b.output(q);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.extend(sim.step(&[]));
        }
        assert_eq!(seen, vec![Zero, One, Zero, One]);
    }

    #[test]
    fn scan_style_state_override() {
        let mut b = NetlistBuilder::new();
        let q = b.flop(FlopInit::Unknown);
        let inp = b.input();
        let g = b.and2(q, inp);
        b.connect_flop_d(q, g);
        b.output(g);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        // Scan-load a known value over the X power-up state.
        sim.set_flop_state(0, One);
        sim.eval(&[One]);
        assert_eq!(sim.outputs(), vec![One]);
        assert_eq!(sim.flop_next(), vec![One]);
        sim.reset();
        assert_eq!(sim.flop_state(0), X);
    }

    #[test]
    #[should_panic(expected = "input vector length mismatch")]
    fn wrong_input_len_panics() {
        let mut b = NetlistBuilder::new();
        b.input();
        let nl = b.finish().unwrap();
        Simulator::new(&nl).eval(&[]);
    }

    #[test]
    fn try_eval_forced_rejects_bad_requests() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let g = b.not(a);
        b.output(g);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);

        let err = sim.try_eval_forced(&[], &[]).unwrap_err();
        assert_eq!(
            err,
            SimError::InputLengthMismatch {
                expected: 1,
                got: 0
            }
        );

        let bogus = NodeId::from_index(99);
        let err = sim.try_eval_forced(&[One], &[(bogus, Zero)]).unwrap_err();
        assert!(matches!(err, SimError::ForcedNodeOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"));

        // Valid request succeeds and matches the panicking path.
        sim.try_eval_forced(&[One], &[(g, One)]).unwrap();
        assert_eq!(sim.outputs(), vec![One]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn eval_forced_out_of_range_panics() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        b.output(a);
        let nl = b.finish().unwrap();
        Simulator::new(&nl).eval_forced(&[One], &[(NodeId::from_index(7), Zero)]);
    }

    #[test]
    fn eval_forced_injects_stuck_at() {
        // out = AND(a, b); force the AND output to 1 (stuck-at-1).
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let g = b.and2(a, c);
        b.output(g);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        sim.eval_forced(&[Zero, Zero], &[(g, One)]);
        assert_eq!(sim.outputs(), vec![One]);
        // Forcing an input node works too.
        sim.eval_forced(&[Zero, One], &[(a, One)]);
        assert_eq!(sim.outputs(), vec![One]);
        // Unforced eval is unaffected.
        sim.eval(&[Zero, One]);
        assert_eq!(sim.outputs(), vec![Zero]);
    }

    #[test]
    fn xnor_and_nor() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let xnor = b.gate(GateKind::Xnor, vec![a, c]);
        let nor = b.gate(GateKind::Nor, vec![a, c]);
        b.output(xnor);
        b.output(nor);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        sim.eval(&[One, One]);
        assert_eq!(sim.outputs(), vec![One, Zero]);
        sim.eval(&[Zero, Zero]);
        assert_eq!(sim.outputs(), vec![One, One]);
        sim.eval(&[Zero, X]);
        assert_eq!(sim.outputs(), vec![X, X]);
    }
}
