//! Randomized invariant tests for the three-valued simulator
//! (deterministic seeded loops).

use xhc_logic::generate::CircuitSpec;
use xhc_logic::{Simulator, Trit};
use xhc_prng::XhcRng;

fn random_spec(rng: &mut XhcRng) -> CircuitSpec {
    CircuitSpec {
        num_inputs: rng.gen_range(2..8),
        num_outputs: 3,
        num_gates: rng.gen_range(10..80),
        num_scan_flops: rng.gen_range(0..12),
        num_shadow_flops: rng.gen_range(0..3),
        num_buses: rng.gen_range(0..3),
        max_fanin: 4,
        seed: rng.next_u64() % 1000,
    }
}

fn random_trits(rng: &mut XhcRng, len: usize) -> Vec<Trit> {
    (0..len)
        .map(|_| match rng.gen_index(3) {
            0 => Trit::Zero,
            1 => Trit::One,
            _ => Trit::X,
        })
        .collect()
}

/// Kleene monotonicity: refining an X input to a concrete value never
/// *changes* an already-known output — it can only turn X outputs into
/// known ones. This is the property PODEM's pruning relies on.
#[test]
fn refinement_is_monotonic() {
    let mut rng = XhcRng::seed_from_u64(0x51A1);
    for _ in 0..48 {
        let spec = CircuitSpec {
            seed: 1 + rng.next_u64() % 499,
            ..CircuitSpec::default()
        };
        let circuit = spec.generate();
        let n = circuit.netlist.num_inputs();
        let mut sim = Simulator::new(&circuit.netlist);

        let coarse: Vec<Trit> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Trit::X
                } else {
                    Trit::Zero
                }
            })
            .collect();
        let refined: Vec<Trit> = coarse
            .iter()
            .map(|&t| {
                if t.is_x() {
                    Trit::from_bool(rng.gen_bool(0.5))
                } else {
                    t
                }
            })
            .collect();

        sim.eval(&coarse);
        let out_coarse = sim.outputs();
        let next_coarse = sim.flop_next();
        sim.eval(&refined);
        let out_refined = sim.outputs();
        let next_refined = sim.flop_next();

        for (c, r) in out_coarse.iter().zip(&out_refined) {
            if c.is_known() {
                assert_eq!(c, r, "known output changed under refinement");
            }
        }
        for (c, r) in next_coarse.iter().zip(&next_refined) {
            if c.is_known() {
                assert_eq!(c, r, "known next-state changed under refinement");
            }
        }
    }
}

/// A fully X-free circuit state with known inputs produces known
/// outputs for combinational circuits without X sources.
#[test]
fn no_x_sources_no_x_outputs() {
    let mut rng = XhcRng::seed_from_u64(0x51A2);
    for _ in 0..48 {
        let spec = CircuitSpec {
            num_shadow_flops: 0,
            num_buses: 0,
            ..random_spec(&mut rng)
        };
        let circuit = spec.generate();
        let mut sim = Simulator::new(&circuit.netlist);
        for f in 0..circuit.netlist.num_flops() {
            sim.set_flop_state(f, Trit::from_bool(rng.gen_bool(0.5)));
        }
        let inputs: Vec<Trit> = (0..circuit.netlist.num_inputs())
            .map(|_| Trit::from_bool(rng.gen_bool(0.5)))
            .collect();
        sim.eval(&inputs);
        for (i, o) in sim.outputs().iter().enumerate() {
            assert!(o.is_known(), "output {i} is X without any X source");
        }
        for (i, d) in sim.flop_next().iter().enumerate() {
            assert!(d.is_known(), "flop {i} D is X without any X source");
        }
    }
}

/// Forcing a node to the value it already has changes nothing anywhere
/// (stuck-at fault with no activation is invisible).
#[test]
fn forcing_same_value_is_identity() {
    let mut rng = XhcRng::seed_from_u64(0x51A3);
    for _ in 0..48 {
        let circuit = random_spec(&mut rng).generate();
        let mut sim = Simulator::new(&circuit.netlist);
        let inputs: Vec<Trit> = (0..circuit.netlist.num_inputs())
            .map(|_| Trit::from_bool(rng.gen_bool(0.5)))
            .collect();
        sim.eval(&inputs);
        let outputs = sim.outputs();
        // Pick the first output-driving node and force its current value.
        let target = circuit.netlist.outputs()[0];
        let v = sim.value(target);
        if v.is_known() {
            sim.eval_forced(&inputs, &[(target, v)]);
            assert_eq!(sim.outputs(), outputs);
        }
    }
}

/// Repeated evaluation with the same inputs is idempotent.
#[test]
fn eval_is_idempotent() {
    let mut rng = XhcRng::seed_from_u64(0x51A4);
    for _ in 0..48 {
        let circuit = random_spec(&mut rng).generate();
        let mut sim = Simulator::new(&circuit.netlist);
        let n = circuit.netlist.num_inputs();
        let inputs = random_trits(&mut rng, n);
        sim.eval(&inputs);
        let first = (sim.outputs(), sim.flop_next());
        sim.eval(&inputs);
        assert_eq!((sim.outputs(), sim.flop_next()), first);
    }
}

/// A clocked step stores exactly the D values computed by eval.
#[test]
fn clock_latches_flop_next() {
    let mut rng = XhcRng::seed_from_u64(0x51A5);
    for _ in 0..24 {
        let spec = CircuitSpec {
            num_inputs: 8,
            ..random_spec(&mut rng)
        };
        let circuit = spec.generate();
        let mut sim = Simulator::new(&circuit.netlist);
        let inputs = random_trits(&mut rng, 8);
        sim.eval(&inputs);
        let expected = sim.flop_next();
        sim.clock();
        assert_eq!(sim.state(), &expected[..]);
    }
}
