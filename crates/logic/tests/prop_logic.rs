//! Property tests for the three-valued simulator.

use proptest::prelude::*;
use xhc_logic::generate::CircuitSpec;
use xhc_logic::{Simulator, Trit};

fn arb_spec() -> impl Strategy<Value = CircuitSpec> {
    (
        1u64..1000,
        2usize..8,
        10usize..80,
        0usize..12,
        0usize..3,
        0usize..3,
    )
        .prop_map(|(seed, inputs, gates, scan, shadow, buses)| CircuitSpec {
            num_inputs: inputs,
            num_outputs: 3,
            num_gates: gates,
            num_scan_flops: scan,
            num_shadow_flops: shadow,
            num_buses: buses,
            max_fanin: 4,
            seed,
        })
}

fn arb_trits(len: usize) -> impl Strategy<Value = Vec<Trit>> {
    prop::collection::vec(
        prop_oneof![Just(Trit::Zero), Just(Trit::One), Just(Trit::X)],
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kleene monotonicity: refining an X input to a concrete value never
    /// *changes* an already-known output — it can only turn X outputs into
    /// known ones. This is the property PODEM's pruning relies on.
    #[test]
    fn refinement_is_monotonic(seed in 1u64..500, refine_bits in any::<u64>()) {
        let spec = CircuitSpec { seed, ..CircuitSpec::default() };
        let circuit = spec.generate();
        let n = circuit.netlist.num_inputs();
        let mut sim = Simulator::new(&circuit.netlist);

        let coarse: Vec<Trit> = (0..n)
            .map(|i| if refine_bits >> (2 * (i % 32)) & 1 == 1 { Trit::X } else { Trit::Zero })
            .collect();
        let refined: Vec<Trit> = coarse
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if t.is_x() {
                    Trit::from_bool(refine_bits >> (2 * (i % 32) + 1) & 1 == 1)
                } else {
                    t
                }
            })
            .collect();

        sim.eval(&coarse);
        let out_coarse = sim.outputs();
        let next_coarse = sim.flop_next();
        sim.eval(&refined);
        let out_refined = sim.outputs();
        let next_refined = sim.flop_next();

        for (c, r) in out_coarse.iter().zip(&out_refined) {
            if c.is_known() {
                prop_assert_eq!(c, r, "known output changed under refinement");
            }
        }
        for (c, r) in next_coarse.iter().zip(&next_refined) {
            if c.is_known() {
                prop_assert_eq!(c, r, "known next-state changed under refinement");
            }
        }
    }

    /// A fully X-free circuit state with known inputs produces known
    /// outputs for combinational circuits without X sources.
    #[test]
    fn no_x_sources_no_x_outputs(spec in arb_spec(), input_bits in any::<u64>()) {
        let spec = CircuitSpec { num_shadow_flops: 0, num_buses: 0, ..spec };
        let circuit = spec.generate();
        let mut sim = Simulator::new(&circuit.netlist);
        for f in 0..circuit.netlist.num_flops() {
            sim.set_flop_state(f, Trit::from_bool(input_bits >> (f % 60) & 1 == 1));
        }
        let inputs: Vec<Trit> = (0..circuit.netlist.num_inputs())
            .map(|i| Trit::from_bool(input_bits >> (i % 64) & 1 == 1))
            .collect();
        sim.eval(&inputs);
        for (i, o) in sim.outputs().iter().enumerate() {
            prop_assert!(o.is_known(), "output {i} is X without any X source");
        }
        for (i, d) in sim.flop_next().iter().enumerate() {
            prop_assert!(d.is_known(), "flop {i} D is X without any X source");
        }
    }

    /// Forcing a node to the value it already has changes nothing
    /// anywhere (stuck-at fault with no activation is invisible).
    #[test]
    fn forcing_same_value_is_identity(spec in arb_spec(), input_bits in any::<u64>()) {
        let circuit = spec.generate();
        let mut sim = Simulator::new(&circuit.netlist);
        let inputs: Vec<Trit> = (0..circuit.netlist.num_inputs())
            .map(|i| Trit::from_bool(input_bits >> (i % 64) & 1 == 1))
            .collect();
        sim.eval(&inputs);
        let outputs = sim.outputs();
        // Pick the first output-driving node and force its current value.
        let target = circuit.netlist.outputs()[0];
        let v = sim.value(target);
        if v.is_known() {
            sim.eval_forced(&inputs, &[(target, v)]);
            prop_assert_eq!(sim.outputs(), outputs);
        }
    }

    /// Repeated evaluation with the same inputs is idempotent.
    #[test]
    fn eval_is_idempotent(spec in arb_spec(), inputs_seed in any::<u64>()) {
        let circuit = spec.generate();
        let mut sim = Simulator::new(&circuit.netlist);
        let n = circuit.netlist.num_inputs();
        let inputs: Vec<Trit> = (0..n)
            .map(|i| match inputs_seed >> (2 * (i % 30)) & 3 {
                0 => Trit::Zero,
                1 => Trit::One,
                _ => Trit::X,
            })
            .collect();
        sim.eval(&inputs);
        let first = (sim.outputs(), sim.flop_next());
        sim.eval(&inputs);
        prop_assert_eq!((sim.outputs(), sim.flop_next()), first);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A clocked step stores exactly the D values computed by eval.
    #[test]
    fn clock_latches_flop_next(spec in arb_spec(), inputs in arb_trits(8)) {
        let spec = CircuitSpec { num_inputs: 8, ..spec };
        let circuit = spec.generate();
        let mut sim = Simulator::new(&circuit.netlist);
        sim.eval(&inputs);
        let expected = sim.flop_next();
        sim.clock();
        prop_assert_eq!(sim.state(), &expected[..]);
    }
}
