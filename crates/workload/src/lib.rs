//! Synthetic industrial workloads with controlled X statistics.
//!
//! The paper's industrial circuits (CKT-A/B/C) are proprietary; this crate
//! substitutes statistically equivalent X profiles (see `DESIGN.md`):
//! identical cell counts, pattern counts and X-densities, and the §3
//! inter-correlation structure (groups of cells sharing identical X
//! pattern sets, X's concentrated in a small cell pool).
//!
//! * [`WorkloadSpec`] — declarative profile with [`WorkloadSpec::ckt_a`],
//!   [`WorkloadSpec::ckt_b`], [`WorkloadSpec::ckt_c`] presets;
//! * [`materialize_responses`] — expands a (small) X map into concrete
//!   0/1/X responses for operational end-to-end runs.
//!
//! # Examples
//!
//! ```
//! use xhc_workload::WorkloadSpec;
//!
//! let xmap = WorkloadSpec {
//!     total_cells: 300,
//!     num_chains: 3,
//!     num_patterns: 50,
//!     x_density: 0.02,
//!     ..WorkloadSpec::default()
//! }
//! .generate();
//! assert!(xmap.total_x() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod responses;
mod spec;

pub use responses::materialize_responses;
pub use spec::WorkloadSpec;
