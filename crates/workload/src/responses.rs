//! Materialising concrete responses from an X map.

use xhc_logic::Trit;
use xhc_prng::XhcRng;
use xhc_scan::{ResponseMatrix, XMap};

/// Expands a (small) X map into a dense response matrix: X where the map
/// says X, seeded-random known bits elsewhere.
///
/// Control-bit and test-time accounting never look at the known values, but
/// the operational pipeline (mask gating, MISR compaction, X-canceling)
/// does — this function provides consistent concrete data for end-to-end
/// runs and fault-injection experiments.
///
/// # Panics
///
/// Panics if the dense matrix would exceed 100 million entries (use the
/// sparse [`XMap`] directly for industrial-scale accounting).
///
/// # Examples
///
/// ```
/// use xhc_workload::{materialize_responses, WorkloadSpec};
///
/// let spec = WorkloadSpec {
///     total_cells: 60,
///     num_chains: 3,
///     num_patterns: 20,
///     x_density: 0.05,
///     ..WorkloadSpec::default()
/// };
/// let xmap = spec.generate();
/// let responses = materialize_responses(&xmap, 42);
/// assert_eq!(responses.total_x(), xmap.total_x());
/// ```
pub fn materialize_responses(xmap: &XMap, seed: u64) -> ResponseMatrix {
    let config = xmap.config().clone();
    let cells = config.total_cells();
    let patterns = xmap.num_patterns();
    assert!(
        cells.saturating_mul(patterns) <= 100_000_000,
        "dense responses too large ({cells} cells x {patterns} patterns); use the XMap directly"
    );
    let mut rng = XhcRng::seed_from_u64(seed);
    let mut m = ResponseMatrix::filled(config.clone(), patterns, Trit::Zero);
    for p in 0..patterns {
        for idx in 0..cells {
            let cell = config.cell_at(idx);
            let v = if xmap.is_x(p, cell) {
                Trit::X
            } else {
                Trit::from_bool(rng.gen_bool(0.5))
            };
            m.set(p, cell, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    fn small_map() -> XMap {
        WorkloadSpec {
            total_cells: 80,
            num_chains: 4,
            num_patterns: 25,
            x_density: 0.04,
            seed: 3,
            ..WorkloadSpec::default()
        }
        .generate()
    }

    #[test]
    fn x_positions_match_map() {
        let xmap = small_map();
        let resp = materialize_responses(&xmap, 1);
        let cfg = xmap.config();
        for p in 0..xmap.num_patterns() {
            for idx in 0..cfg.total_cells() {
                let cell = cfg.cell_at(idx);
                assert_eq!(resp.get(p, cell).is_x(), xmap.is_x(p, cell));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let xmap = small_map();
        assert_eq!(
            materialize_responses(&xmap, 5),
            materialize_responses(&xmap, 5)
        );
        assert_ne!(
            materialize_responses(&xmap, 5),
            materialize_responses(&xmap, 6)
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn size_guard() {
        let xmap = WorkloadSpec::ckt_a().generate();
        materialize_responses(&xmap, 0);
    }
}
