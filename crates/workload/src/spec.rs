//! Synthetic industrial workload specification and generation.

use xhc_bits::PatternSet;
use xhc_prng::{sample_indices, SliceRandom, XhcRng};
use xhc_scan::{ScanConfig, XMap, XMapBuilder};

/// A synthetic workload: a scan topology plus a statistically-shaped X
/// profile.
///
/// The paper evaluates on three proprietary industrial circuits; their
/// response data is reproduced here *statistically* (see `DESIGN.md`,
/// substitutions table): the X profile is built from
///
/// * **correlated groups** — sets of scan cells sharing an *identical* X
///   pattern set (the §3 inter-correlation: "172 scan cells out of 177
///   have the 406 X's by the same 406 test patterns"), and
/// * **noise** — individually scattered X's over a bounded cell pool
///   ("90% of X's are captured in 4.9% of the scan cells").
///
/// All quantities in Table 1 are functions of the X profile only, so
/// matching the profile preserves the experiment's shape.
///
/// # Examples
///
/// ```
/// use xhc_workload::WorkloadSpec;
///
/// let spec = WorkloadSpec {
///     total_cells: 600,
///     num_chains: 6,
///     num_patterns: 100,
///     x_density: 0.02,
///     ..WorkloadSpec::default()
/// };
/// let xmap = spec.generate();
/// let achieved = xmap.x_density();
/// assert!((achieved - 0.02).abs() < 0.005, "{achieved}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload label (e.g. "CKT-B").
    pub name: &'static str,
    /// Scan cells.
    pub total_cells: usize,
    /// Scan chains (cells are balanced over them).
    pub num_chains: usize,
    /// Test patterns.
    pub num_patterns: usize,
    /// Target X-density (fraction of response bits that are X).
    pub x_density: f64,
    /// Fraction of X's placed in correlated groups (rest is noise).
    pub correlated_fraction: f64,
    /// Number of correlated groups.
    pub num_groups: usize,
    /// Mean fraction of the pattern set covered by a group's shared X
    /// pattern set.
    pub group_pattern_fraction: f64,
    /// Fraction of cells allowed to capture any X at all (the X cell
    /// pool).
    pub x_cell_fraction: f64,
    /// Spatial (intra-correlation) clustering of the X cell pool: the
    /// probability that each successive pool cell is placed adjacent to
    /// the previous one on its scan chain instead of uniformly at random
    /// (\[13\]'s "contiguous and adjacent areas of scan chains"). `0.0`
    /// scatters the pool uniformly.
    pub spatial_clustering: f64,
    /// RNG seed (generation is deterministic per spec).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "synthetic",
            total_cells: 1000,
            num_chains: 10,
            num_patterns: 200,
            x_density: 0.01,
            correlated_fraction: 0.9,
            num_groups: 6,
            group_pattern_fraction: 0.25,
            x_cell_fraction: 0.1,
            spatial_clustering: 0.0,
            seed: 0,
        }
    }
}

impl WorkloadSpec {
    /// The paper's CKT-A profile: 505,050 cells, ~1000 chains (derived
    /// from Table 1's test-time column), 3000 patterns, 0.05% X-density.
    pub fn ckt_a() -> Self {
        WorkloadSpec {
            name: "CKT-A",
            total_cells: 505_050,
            num_chains: 1000,
            num_patterns: 3000,
            x_density: 0.0005,
            correlated_fraction: 0.45,
            num_groups: 2,
            group_pattern_fraction: 0.35,
            x_cell_fraction: 0.004,
            spatial_clustering: 0.3,
            seed: 0xA,
        }
    }

    /// The paper's CKT-B profile: 36,075 cells, 75 chains, 3000 patterns,
    /// 2.75% X-density, §3's clustering statistics.
    pub fn ckt_b() -> Self {
        WorkloadSpec {
            name: "CKT-B",
            total_cells: 36_075,
            num_chains: 75,
            num_patterns: 3000,
            x_density: 0.0275,
            correlated_fraction: 0.55,
            num_groups: 3,
            group_pattern_fraction: 0.77,
            x_cell_fraction: 0.108, // 3,903 of 36,075 cells capture X
            spatial_clustering: 0.3,
            seed: 0xB,
        }
    }

    /// The paper's CKT-C profile: 97,643 cells, 203 chains, 3000 patterns,
    /// 2.38% X-density.
    pub fn ckt_c() -> Self {
        WorkloadSpec {
            name: "CKT-C",
            total_cells: 97_643,
            num_chains: 203,
            num_patterns: 3000,
            x_density: 0.0238,
            correlated_fraction: 0.33,
            num_groups: 3,
            group_pattern_fraction: 0.5,
            x_cell_fraction: 0.08,
            spatial_clustering: 0.3,
            seed: 0xC,
        }
    }

    /// Looks up a preset by CLI name: `ckt-a`, `ckt-b`, `ckt-c` (the
    /// paper's circuits, full size) or `demo` (the small default).
    ///
    /// # Examples
    ///
    /// ```
    /// use xhc_workload::WorkloadSpec;
    ///
    /// assert_eq!(WorkloadSpec::profile("ckt-a"), Some(WorkloadSpec::ckt_a()));
    /// assert_eq!(WorkloadSpec::profile("bogus"), None);
    /// ```
    pub fn profile(name: &str) -> Option<Self> {
        match name {
            "ckt-a" => Some(Self::ckt_a()),
            "ckt-b" => Some(Self::ckt_b()),
            "ckt-c" => Some(Self::ckt_c()),
            "demo" => Some(Self::default()),
            _ => None,
        }
    }

    /// Shrinks the workload by an integer factor: cells, chains and
    /// patterns are divided by `scale` (floored to a workable minimum
    /// topology), densities and fractions untouched. `scale <= 1` is the
    /// identity. This is the `--scale` knob shared by `xhybrid gen` and
    /// `xhybrid plan --profile`.
    pub fn scaled(mut self, scale: usize) -> Self {
        if scale > 1 {
            self.total_cells = (self.total_cells / scale).max(self.num_chains.max(4));
            self.num_chains = (self.num_chains / scale).max(4);
            self.num_patterns = (self.num_patterns / scale).max(20);
        }
        self
    }

    /// The scan topology the workload uses.
    pub fn scan_config(&self) -> ScanConfig {
        ScanConfig::balanced(self.total_cells, self.num_chains)
    }

    /// Target total X count.
    pub fn target_x(&self) -> usize {
        (self.x_density * self.total_cells as f64 * self.num_patterns as f64).round() as usize
    }

    /// Generates the X map. Deterministic per spec (including `seed`).
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero cells/chains/patterns,
    /// fractions outside `\[0, 1\]`).
    pub fn generate(&self) -> XMap {
        assert!(self.num_patterns > 0, "need at least one pattern");
        for (label, f) in [
            ("x_density", self.x_density),
            ("correlated_fraction", self.correlated_fraction),
            ("group_pattern_fraction", self.group_pattern_fraction),
            ("x_cell_fraction", self.x_cell_fraction),
            ("spatial_clustering", self.spatial_clustering),
        ] {
            assert!((0.0..=1.0).contains(&f), "{label} must be in [0,1]");
        }
        let config = self.scan_config();
        let mut rng = XhcRng::seed_from_u64(self.seed);
        let mut builder = XMapBuilder::new(config.clone(), self.num_patterns);

        let target = self.target_x();
        let corr_budget = (target as f64 * self.correlated_fraction).round() as usize;
        let noise_budget = target.saturating_sub(corr_budget);

        // The X cell pool: the only cells ever allowed to capture X.
        let pool_size = ((self.total_cells as f64 * self.x_cell_fraction).round() as usize)
            .clamp(1, self.total_cells);
        let mut pool = self.sample_pool(&config, pool_size, &mut rng);
        if self.spatial_clustering <= 0.0 {
            // A clustered walk is kept in walk order so correlated groups
            // occupy contiguous chain segments; a scattered pool gains
            // nothing from its sampling order.
            pool.shuffle(&mut rng);
        }

        // Correlated groups: identical pattern set per group, cells drawn
        // from the front of the pool (they may also receive noise later,
        // which only adds patterns and never breaks the superset
        // property that makes them maskable).
        let mut pool_cursor = 0usize;
        if self.num_groups > 0 && corr_budget > 0 {
            let per_group = corr_budget / self.num_groups;
            for g in 0..self.num_groups {
                // Group pattern-set size: jitter around the mean fraction.
                let mean = (self.group_pattern_fraction * self.num_patterns as f64).max(1.0);
                let lo = (mean * 0.5).max(1.0) as usize;
                let hi = ((mean * 1.5) as usize).clamp(lo + 1, self.num_patterns + 1);
                let set_size = rng.gen_range(lo..hi).min(self.num_patterns);
                let patterns = random_pattern_set(&mut rng, self.num_patterns, set_size);

                let budget_g = if g == self.num_groups - 1 {
                    corr_budget - per_group * (self.num_groups - 1)
                } else {
                    per_group
                };
                let cells_in_group = (budget_g / set_size).max(1);
                for _ in 0..cells_in_group {
                    if pool_cursor >= pool.len() {
                        break;
                    }
                    let cell = config.cell_at(pool[pool_cursor]);
                    pool_cursor += 1;
                    builder.add_xset(cell, &patterns);
                }
            }
        }

        // Noise: scattered X's over the part of the pool *not* used by the
        // correlated groups. Keeping group cells pristine matters: the
        // paper's §3 analysis of real industrial data finds cells with
        // *exactly* equal X counts and identical pattern sets (177 cells
        // with exactly 406 X's), and the partitioning pivot is defined on
        // those exact-count classes.
        let noise_pool = if pool_cursor < pool.len() {
            &pool[pool_cursor..]
        } else {
            &pool[..]
        };
        // Heterogeneous per-cell noise rates (log-uniform weights): real X
        // sources differ wildly in how often they fire, so per-cell X
        // counts spread out instead of clustering binomially around one
        // mean — uniform noise would manufacture large *coincidental*
        // equal-count classes that mislead the partitioning pivot.
        let cumulative: Vec<f64> = (0..noise_pool.len())
            .scan(0.0f64, |acc, _| {
                *acc += (rng.gen_range(0.0..3.0f64)).exp();
                Some(*acc)
            })
            .collect();
        let total_weight = cumulative.last().copied().unwrap_or(0.0);
        let noise_budget = if noise_pool.is_empty() || total_weight <= 0.0 {
            0
        } else {
            noise_budget
        };
        for _ in 0..noise_budget {
            let pick = rng.gen_range(0.0..total_weight);
            let chosen = cumulative.partition_point(|&c| c <= pick);
            let cell_idx = noise_pool[chosen.min(noise_pool.len() - 1)];
            let p = rng.gen_range(0..self.num_patterns);
            builder.add_x_unchecked(config.cell_at(cell_idx), p);
        }

        builder.finish()
    }
}

impl WorkloadSpec {
    /// Samples the X cell pool, optionally as spatially-clustered chain
    /// runs (see [`WorkloadSpec::spatial_clustering`]).
    fn sample_pool(&self, config: &ScanConfig, size: usize, rng: &mut XhcRng) -> Vec<usize> {
        // Fall back to uniform sampling when clustering is off or the pool
        // is so large that rejection sampling would crawl.
        if self.spatial_clustering <= 0.0 || size * 2 > self.total_cells {
            return sample_indices(rng, self.total_cells, size);
        }
        let mut chosen = std::collections::HashSet::with_capacity(size);
        let mut pool = Vec::with_capacity(size);
        let mut prev: Option<xhc_scan::CellId> = None;
        while pool.len() < size {
            let neighbour = prev
                .filter(|_| rng.gen_bool(self.spatial_clustering))
                .and_then(|cell| {
                    let chain = cell.chain as usize;
                    let len = config.chain_len(chain);
                    let pos = cell.position as i64;
                    [pos + 1, pos - 1]
                        .into_iter()
                        .filter(|&p| p >= 0 && (p as usize) < len)
                        .map(|p| config.linear_index(xhc_scan::CellId::new(chain, p as usize)))
                        .find(|i| !chosen.contains(i))
                });
            let idx = neighbour.unwrap_or_else(|| loop {
                let i = rng.gen_range(0..self.total_cells);
                if !chosen.contains(&i) {
                    break i;
                }
            });
            chosen.insert(idx);
            pool.push(idx);
            prev = Some(config.cell_at(idx));
        }
        pool
    }
}

fn random_pattern_set(rng: &mut XhcRng, universe: usize, size: usize) -> PatternSet {
    let picks = sample_indices(rng, universe, size.min(universe));
    PatternSet::from_patterns(universe, picks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadSpec {
        WorkloadSpec {
            total_cells: 500,
            num_chains: 5,
            num_patterns: 120,
            x_density: 0.03,
            num_groups: 4,
            seed: 7,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn density_close_to_target() {
        let xmap = small().generate();
        let got = xmap.x_density();
        assert!((got - 0.03).abs() < 0.01, "target 0.03, got {got}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small().generate();
        let b = WorkloadSpec { seed: 8, ..small() }.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn x_cells_bounded_by_pool() {
        let spec = small();
        let xmap = spec.generate();
        let pool = (spec.total_cells as f64 * spec.x_cell_fraction).round() as usize;
        assert!(xmap.num_x_cells() <= pool);
        assert!(xmap.num_x_cells() > 0);
    }

    #[test]
    fn correlated_groups_share_identical_sets() {
        // With 90% correlation there must be a sizable group of cells with
        // identical X pattern sets.
        let spec = WorkloadSpec {
            correlated_fraction: 1.0,
            ..small()
        };
        let xmap = spec.generate();
        let mut by_set: std::collections::HashMap<&PatternSet, usize> =
            std::collections::HashMap::new();
        for (_, xs) in xmap.iter() {
            *by_set.entry(xs).or_insert(0) += 1;
        }
        let largest = by_set.values().copied().max().unwrap_or(0);
        assert!(largest >= 3, "expected a correlated group, got {largest}");
    }

    #[test]
    fn presets_have_paper_shapes() {
        let a = WorkloadSpec::ckt_a();
        assert_eq!(a.total_cells, 505_050);
        assert_eq!(a.scan_config().num_chains(), 1000);
        let b = WorkloadSpec::ckt_b();
        assert_eq!(
            b.target_x(),
            (0.0275f64 * 36_075.0 * 3000.0).round() as usize
        );
        let c = WorkloadSpec::ckt_c();
        assert_eq!(c.num_patterns, 3000);
    }

    #[test]
    fn profile_lookup_and_scaling() {
        assert_eq!(WorkloadSpec::profile("ckt-b"), Some(WorkloadSpec::ckt_b()));
        assert_eq!(WorkloadSpec::profile("demo"), Some(WorkloadSpec::default()));
        assert_eq!(WorkloadSpec::profile("CKT-B"), None);

        let scaled = WorkloadSpec::ckt_a().scaled(10);
        assert_eq!(scaled.total_cells, 50_505);
        assert_eq!(scaled.num_chains, 100);
        assert_eq!(scaled.num_patterns, 300);
        assert_eq!(scaled.seed, WorkloadSpec::ckt_a().seed);
        assert_eq!(WorkloadSpec::ckt_a().scaled(1), WorkloadSpec::ckt_a());
        // Extreme scales bottom out at a workable topology.
        let tiny = WorkloadSpec::default().scaled(10_000);
        assert!(tiny.num_chains >= 4 && tiny.num_patterns >= 20);
        assert!(tiny.total_cells >= tiny.num_chains);
    }

    #[test]
    fn spatial_clustering_creates_chain_runs() {
        let scattered = WorkloadSpec {
            spatial_clustering: 0.0,
            ..small()
        }
        .generate();
        let clustered = WorkloadSpec {
            spatial_clustering: 0.9,
            ..small()
        }
        .generate();
        let adjacency = |xmap: &xhc_scan::XMap| {
            let cfg = xmap.config();
            let mut pairs = 0usize;
            for (cell, _) in xmap.iter() {
                let chain = cell.chain as usize;
                let pos = cell.position as usize;
                if pos + 1 < cfg.chain_len(chain)
                    && xmap.xset(xhc_scan::CellId::new(chain, pos + 1)).is_some()
                {
                    pairs += 1;
                }
            }
            pairs
        };
        assert!(
            adjacency(&clustered) > adjacency(&scattered) * 2,
            "clustered {} vs scattered {}",
            adjacency(&clustered),
            adjacency(&scattered)
        );
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_fraction_panics() {
        WorkloadSpec {
            x_density: 1.5,
            ..WorkloadSpec::default()
        }
        .generate();
    }
}
