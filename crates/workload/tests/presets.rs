//! The CKT presets must keep matching the paper's published statistics —
//! these tests pin the workload generator to §3 and Table 1.

use xhc_workload::WorkloadSpec;

#[test]
fn ckt_b_matches_section3_statistics() {
    let spec = WorkloadSpec::ckt_b();
    let xmap = spec.generate();
    // 36,075 scan cells; ~3,903 capture X's (paper: exactly 3,903).
    assert_eq!(xmap.config().total_cells(), 36_075);
    let x_cells = xmap.num_x_cells();
    assert!(
        (3_500..=4_300).contains(&x_cells),
        "X-capturing cells {x_cells} out of band (paper: 3,903)"
    );
    // Density within 10% of the 2.75% target.
    let density = xmap.x_density();
    assert!(
        (density - 0.0275).abs() < 0.00275,
        "density {density} off target"
    );
}

#[test]
fn ckt_a_low_density_profile() {
    let spec = WorkloadSpec::ckt_a();
    let xmap = spec.generate();
    assert_eq!(xmap.config().total_cells(), 505_050);
    assert_eq!(xmap.config().num_chains(), 1000);
    let density = xmap.x_density();
    assert!(
        (density - 0.0005).abs() < 0.0002,
        "density {density} off the 0.05% target"
    );
}

#[test]
fn ckt_c_profile_shape() {
    let spec = WorkloadSpec::ckt_c();
    let xmap = spec.generate();
    assert_eq!(xmap.config().total_cells(), 97_643);
    assert_eq!(xmap.config().num_chains(), 203);
    // 97,643 = 203 * 481: perfectly balanced chains.
    assert_eq!(xmap.config().max_chain_len(), 481);
    let density = xmap.x_density();
    assert!((density - 0.0238).abs() < 0.004, "density {density}");
}

#[test]
fn presets_have_identical_set_groups() {
    // The §3 property the partitioning pivot needs: a large group of
    // cells sharing one identical X pattern set.
    let xmap = WorkloadSpec::ckt_b().generate();
    let mut by_set: std::collections::HashMap<&xhc_bits::PatternSet, usize> =
        std::collections::HashMap::new();
    for (_, xs) in xmap.iter() {
        *by_set.entry(xs).or_insert(0) += 1;
    }
    let largest = by_set.values().copied().max().unwrap_or(0);
    assert!(
        largest >= 100,
        "largest identical group {largest}; paper's example had 172"
    );
}

#[test]
fn presets_are_deterministic() {
    // Table 1 must regenerate bit-for-bit.
    let a = WorkloadSpec::ckt_b().generate();
    let b = WorkloadSpec::ckt_b().generate();
    assert_eq!(a, b);
}
