//! `xhc-aio`: a dependency-free readiness event loop for the planning
//! daemon.
//!
//! The workspace builds fully offline, so instead of mio/tokio this
//! crate provides the smallest useful subset of a reactor:
//!
//! * [`Poller`] — register sockets with a [`Token`] and an [`Interest`],
//!   then [`Poller::wait`] for readiness [`Event`]s. On Linux the
//!   backend is **epoll** via raw syscalls, confined to the one
//!   `unsafe` module (`sys`, crate-internal); everywhere else (or with
//!   `XHC_AIO_BACKEND=fallback`) a **portable nonblocking-poll
//!   fallback** reports every registered source as maybe-ready on each
//!   tick, which is correct — if slower — as long as all I/O is
//!   nonblocking.
//! * [`Waker`] — wakes a blocked [`Poller::wait`] from any thread
//!   (eventfd on epoll, an atomic flag on the fallback).
//! * [`timer::TimerWheel`] — coarse hashed-wheel deadlines for
//!   slow-loris protection and graceful drain.
//! * [`queue::JobQueue`] — a bounded MPMC queue whose `Full` rejection
//!   is the admission-control signal.
//!
//! # Examples
//!
//! ```
//! use std::net::TcpListener;
//! use xhc_aio::{Events, Interest, Poller, Token};
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let mut poller = Poller::new().unwrap();
//! poller.register(&listener, Token(0), Interest::READABLE).unwrap();
//!
//! // A connection attempt makes the listener readable.
//! let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
//! let mut events = Events::with_capacity(8);
//! poller
//!     .wait(&mut events, Some(std::time::Duration::from_secs(5)))
//!     .unwrap();
//! assert!(events.iter().any(|e| e.token() == Token(0) && e.readable()));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod timer;

#[cfg(target_os = "linux")]
mod sys;

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An opaque registration id, echoed back on every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness directions a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readable readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Whether this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// Whether this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
    error: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source is (maybe) readable; a nonblocking read decides.
    pub fn readable(&self) -> bool {
        self.readable
    }

    /// The source is (maybe) writable.
    pub fn writable(&self) -> bool {
        self.writable
    }

    /// The peer closed (hang-up); usually also reported readable so the
    /// final EOF can be read.
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// The source is in an error state; read/write to collect it.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// A reusable buffer of [`Event`]s filled by [`Poller::wait`].
#[derive(Debug)]
pub struct Events {
    list: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer that reports at most `capacity` events per wait (clamped
    /// to at least 1).
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            list: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Iterates the events of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.list.iter()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the last wait delivered nothing (timeout or wakeup).
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.list.iter()
    }
}

/// Wakes a blocked [`Poller::wait`] from any thread. Cheap to clone;
/// usable after the poller is gone (wakes become no-ops).
#[derive(Debug, Clone)]
pub struct Waker {
    inner: WakerInner,
}

#[derive(Debug, Clone)]
enum WakerInner {
    #[cfg(target_os = "linux")]
    Eventfd(Arc<OwnedEventFd>),
    Flag(Arc<AtomicBool>),
}

impl Waker {
    /// Makes the poller's next (or current) wait return promptly.
    pub fn wake(&self) {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::Eventfd(fd) => {
                let _ = sys::eventfd_write(fd.0);
            }
            WakerInner::Flag(flag) => flag.store(true, Ordering::Release),
        }
    }
}

/// An eventfd that closes on drop (shared by the poller and its wakers).
#[cfg(target_os = "linux")]
#[derive(Debug)]
struct OwnedEventFd(RawFd);

#[cfg(target_os = "linux")]
impl Drop for OwnedEventFd {
    fn drop(&mut self) {
        sys::close_fd(self.0);
    }
}

/// The readiness selector. See the crate docs for the backend split.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Fallback(FallbackBackend),
}

impl Poller {
    /// Opens a poller on the best backend for this platform. Set
    /// `XHC_AIO_BACKEND=fallback` to force the portable backend (CI uses
    /// this to exercise both paths on Linux).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the epoll instance or its
    /// wakeup eventfd cannot be created.
    pub fn new() -> io::Result<Poller> {
        let force_fallback =
            std::env::var_os("XHC_AIO_BACKEND").is_some_and(|v| v.to_str() == Some("fallback"));
        if force_fallback {
            return Ok(Poller {
                backend: Backend::Fallback(FallbackBackend::new()),
            });
        }
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                backend: Backend::Epoll(EpollBackend::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller {
                backend: Backend::Fallback(FallbackBackend::new()),
            })
        }
    }

    /// The active backend, for logs and tests: `"epoll"` or
    /// `"fallback"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Fallback(_) => "fallback",
        }
    }

    /// A handle that wakes this poller from other threads.
    pub fn waker(&self) -> Waker {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => Waker {
                inner: WakerInner::Eventfd(Arc::clone(&e.wake_fd)),
            },
            Backend::Fallback(f) => Waker {
                inner: WakerInner::Flag(Arc::clone(&f.woken)),
            },
        }
    }

    /// Starts watching `source` under `token`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (e.g. the fd is already
    /// registered on the epoll backend).
    pub fn register(
        &mut self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.control(sys::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Fallback(f) => {
                f.registry.retain(|(t, _)| *t != token);
                f.registry.push((token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest of an already-registered source.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (e.g. the fd is not registered).
    pub fn reregister(
        &mut self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.control(sys::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Fallback(f) => {
                f.registry.retain(|(t, _)| *t != token);
                f.registry.push((token, interest));
                Ok(())
            }
        }
    }

    /// Stops watching `source`. On the fallback backend the token is
    /// what identifies the registration.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from `epoll_ctl` (the fallback
    /// never fails).
    pub fn deregister(&mut self, source: &impl AsRawFd, token: Token) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.control(sys::EPOLL_CTL_DEL, fd, token, Interest::READABLE),
            Backend::Fallback(f) => {
                f.registry.retain(|(t, _)| *t != token);
                Ok(())
            }
        }
    }

    /// Blocks until readiness, a wakeup, or `timeout` (`None` = forever),
    /// filling `events`. Wakeups and timeouts leave `events` empty.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from the kernel wait.
    pub fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.list.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout),
            Backend::Fallback(f) => {
                f.wait(events, timeout);
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: RawFd,
    wake_fd: Arc<OwnedEventFd>,
    buf: Vec<sys::EpollEvent>,
}

// Hand-written because `sys::EpollEvent` is repr(packed) and cannot
// derive Debug; the raw buffer is transient scratch anyway.
#[cfg(target_os = "linux")]
impl std::fmt::Debug for EpollBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpollBackend")
            .field("epfd", &self.epfd)
            .field("wake_fd", &self.wake_fd)
            .finish_non_exhaustive()
    }
}

/// The reserved token value the wakeup eventfd is registered under;
/// never reported to callers.
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        let epfd = sys::epoll_create()?;
        let wake = match sys::eventfd_create() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(e);
            }
        };
        let backend = EpollBackend {
            epfd,
            wake_fd: Arc::new(OwnedEventFd(wake)),
            buf: Vec::new(),
        };
        sys::epoll_control(epfd, sys::EPOLL_CTL_ADD, wake, sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(backend)
    }

    fn control(&mut self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.is_readable() {
            events |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            events |= sys::EPOLLOUT;
        }
        sys::epoll_control(self.epfd, op, fd, events, token.0 as u64)
    }

    fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs deadline does not busy-spin at 0ms.
            Some(d) => d
                .as_millis()
                .max(u128::from(!d.is_zero()))
                .min(i32::MAX as u128) as i32,
        };
        self.buf
            .resize(events.capacity, sys::EpollEvent { events: 0, u64: 0 });
        let n = loop {
            match sys::epoll_wait_events(self.epfd, &mut self.buf, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for raw in &self.buf[..n] {
            let (bits, token) = (raw.events, raw.u64);
            if token == WAKE_TOKEN {
                sys::eventfd_drain(self.wake_fd.0);
                continue;
            }
            let closed = bits & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0;
            let error = bits & sys::EPOLLERR != 0;
            events.list.push(Event {
                token: Token(token as usize),
                // Error/hangup conditions surface through reads/writes,
                // so report both directions ready when they fire.
                readable: bits & sys::EPOLLIN != 0 || closed || error,
                writable: bits & sys::EPOLLOUT != 0 || closed || error,
                closed,
                error,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
        // wake_fd closes when the last Waker clone drops.
    }
}

/// The portable backend: no OS selector at all. Every registered source
/// is reported maybe-ready on each tick (capped at
/// [`FallbackBackend::TICK`]), so callers' nonblocking reads/writes do
/// the actual readiness test. Strictly correct, strictly slower.
#[derive(Debug)]
struct FallbackBackend {
    registry: Vec<(Token, Interest)>,
    woken: Arc<AtomicBool>,
    /// Rotating scan offset so that when more sources are registered
    /// than the event buffer holds, every source is still reported
    /// within a bounded number of ticks (no starvation).
    next_start: usize,
}

impl FallbackBackend {
    /// Poll cadence when sources are registered but idle.
    const TICK: Duration = Duration::from_millis(1);

    fn new() -> FallbackBackend {
        FallbackBackend {
            registry: Vec::new(),
            woken: Arc::new(AtomicBool::new(false)),
            next_start: 0,
        }
    }

    fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) {
        // A pending wakeup short-circuits the sleep entirely.
        if !self.woken.swap(false, Ordering::Acquire) {
            let nap = match (timeout, self.registry.is_empty()) {
                // Nothing registered: honour the timeout in waker-checked
                // slices so wakes stay prompt.
                (t, true) => t.unwrap_or(Duration::from_secs(3600)),
                (Some(t), false) => t.min(Self::TICK),
                (None, false) => Self::TICK,
            };
            let deadline = std::time::Instant::now() + nap;
            loop {
                if self.woken.swap(false, Ordering::Acquire) {
                    break;
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    break;
                }
                std::thread::sleep((deadline - now).min(Self::TICK));
            }
        }
        let n = self.registry.len();
        if n == 0 {
            return;
        }
        let start = self.next_start % n;
        for i in 0..n {
            let (token, interest) = self.registry[(start + i) % n];
            events.list.push(Event {
                token,
                readable: interest.is_readable(),
                writable: interest.is_writable(),
                closed: false,
                error: false,
            });
            if events.list.len() >= events.capacity {
                break;
            }
        }
        self.next_start = (start + events.list.len()) % n;
    }
}
