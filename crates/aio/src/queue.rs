//! A bounded multi-producer multi-consumer job queue.
//!
//! The serve front end uses one of these between its event loop and the
//! worker pool: the loop `try_push`es (a full queue is the admission
//! -control signal, answered with HTTP 429 upstream) and workers block
//! in `pop` until a job or shutdown arrives. Plain `Mutex` + two
//! `Condvar`s — at planning-request granularity the lock is nowhere near
//! contended, and the bound is the point.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue; carries the rejected value back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (admission control should shed).
    Full(T),
    /// The queue was closed; no more jobs are accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. Clone-free: share it behind an `Arc`.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` jobs (clamped to at least 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues without blocking. A `Full` error is the backpressure
    /// signal callers turn into load shedding.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`]; both return the value.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(value));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(value));
        }
        inner.items.push_back(value);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until a job arrives or the queue closes. `None` means
    /// closed *and* drained — the worker-thread exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, and blocked `pop`s return
    /// once the backlog drains. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Jobs currently queued (racy by nature; a monitoring value).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn bounded_push_pop_fifo() {
        let q = JobQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_releases_consumers() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(PushError::Closed(11)));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);

        // A consumer blocked before close wakes up with None.
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers() {
        const PER_PRODUCER: usize = 200;
        let q = Arc::new(JobQueue::new(8));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER as u64 {
                    let mut v = p * 10_000 + i;
                    // Spin on Full: this test wants throughput, not shed.
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                v = back;
                                thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4 * PER_PRODUCER, "every job seen exactly once");
    }
}
