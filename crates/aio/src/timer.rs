//! A hashed timer wheel for connection deadlines.
//!
//! Deadlines are coarse (one tick of resolution, default 16 ms) because
//! they guard against stalled peers, not real-time scheduling. Insertion
//! and cancellation-by-staleness are O(1); expiry scans only the slots
//! the clock hand passes over. Keys are opaque `u64`s chosen by the
//! caller (the serve front end packs a connection slot and a generation
//! so a reused slot never sees a stale deadline fire).

/// Default tick width in milliseconds.
pub const DEFAULT_TICK_MS: u64 = 16;

/// Default number of wheel slots (one full turn covers
/// `slots * tick_ms` ≈ 4 s at the defaults; longer deadlines simply
/// survive extra turns).
pub const DEFAULT_SLOTS: usize = 256;

#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline_ms: u64,
    key: u64,
}

/// The wheel itself. All times are caller-supplied milliseconds on a
/// monotonic clock of the caller's choosing.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick_ms: u64,
    /// The tick index the hand has fully processed up to (exclusive).
    hand: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel with the default geometry, starting at `now_ms`.
    pub fn new(now_ms: u64) -> TimerWheel {
        TimerWheel::with_geometry(now_ms, DEFAULT_TICK_MS, DEFAULT_SLOTS)
    }

    /// A wheel with explicit tick width and slot count.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is 0 or `slots` is 0.
    pub fn with_geometry(now_ms: u64, tick_ms: u64, slots: usize) -> TimerWheel {
        assert!(tick_ms > 0, "tick width must be positive");
        assert!(slots > 0, "the wheel needs at least one slot");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick_ms,
            hand: now_ms / tick_ms,
            len: 0,
        }
    }

    /// Arms a deadline. Deadlines already in the past fire on the next
    /// [`TimerWheel::expire`] call.
    pub fn insert(&mut self, deadline_ms: u64, key: u64) {
        let tick = (deadline_ms / self.tick_ms).max(self.hand);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { deadline_ms, key });
        self.len += 1;
    }

    /// Advances the hand to `now_ms`, returning every key whose deadline
    /// has passed (in slot order; order within a tick is insertion
    /// order). Keys the caller no longer cares about are simply ignored
    /// on return — the wheel does not support explicit cancellation.
    pub fn expire(&mut self, now_ms: u64) -> Vec<u64> {
        let target = now_ms / self.tick_ms;
        let mut fired = Vec::new();
        let slots = self.slots.len() as u64;
        // Scan at most one full turn; beyond that every slot has been
        // visited once and re-scanning would double-count survivors.
        let last = self.hand + slots.min(target.saturating_sub(self.hand) + 1);
        for tick in self.hand..last {
            let slot = (tick % slots) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].deadline_ms <= now_ms {
                    fired.push(entries.swap_remove(i).key);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.hand = target.max(self.hand);
        fired
    }

    /// The soonest armed deadline, if any — what an event loop should
    /// cap its poll timeout at.
    pub fn next_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .flat_map(|s| s.iter().map(|e| e.deadline_ms))
            .min()
    }

    /// Armed deadlines (including ones whose keys the caller has
    /// logically abandoned but that have not fired yet).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no deadline is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_across_slots() {
        let mut w = TimerWheel::with_geometry(0, 10, 8);
        w.insert(25, 1);
        w.insert(5, 2);
        w.insert(1000, 3); // more than one full turn away
        assert_eq!(w.len(), 3);
        assert_eq!(w.expire(4), Vec::<u64>::new());
        assert_eq!(w.expire(9), vec![2]);
        assert_eq!(w.expire(30), vec![1]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(1000));
        assert_eq!(w.expire(2000), vec![3]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = TimerWheel::new(10_000);
        w.insert(1, 7);
        assert_eq!(w.expire(10_000), vec![7]);
    }

    #[test]
    fn same_tick_multiple_keys() {
        let mut w = TimerWheel::with_geometry(0, 16, 4);
        w.insert(20, 1);
        w.insert(20, 2);
        let mut fired = w.expire(40);
        fired.sort_unstable();
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn hand_never_moves_backwards() {
        let mut w = TimerWheel::with_geometry(0, 10, 8);
        w.insert(55, 9);
        assert!(w.expire(50).is_empty());
        // A stale (smaller) now must not re-scan or lose entries.
        assert!(w.expire(20).is_empty());
        assert_eq!(w.expire(60), vec![9]);
    }
}
