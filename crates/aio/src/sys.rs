//! The one `unsafe` module of the workspace: raw Linux epoll and eventfd
//! bindings.
//!
//! `std` already links libc on every Unix target, so declaring the five
//! syscall wrappers we need as `extern "C"` items adds no dependency.
//! Everything unsafe is confined to this file; the rest of the crate
//! (and the workspace) stays `forbid(unsafe_code)` or `deny(unsafe_code)`.
//! On non-Linux targets this module is not compiled at all — the
//! portable fallback backend in the crate root takes over.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

// Values from the Linux UAPI headers; part of the stable kernel ABI.
pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness record as the kernel fills it in. x86-64 packs the
/// struct (12 bytes); other architectures use natural alignment — this
/// must match the kernel ABI exactly or `epoll_wait` corrupts the array.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller's token, passed back verbatim.
    pub u64: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance and returns its fd.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 takes no pointers; any return is handled.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds, modifies or removes `fd` on the epoll set.
pub fn epoll_control(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, u64: token };
    // SAFETY: `ev` outlives the call; the kernel copies it before
    // returning. For EPOLL_CTL_DEL the pointer is ignored (but must be
    // non-null on kernels before 2.6.9, which passing `&mut ev` covers).
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

/// Blocks until readiness or `timeout_ms` (-1 = forever), filling
/// `events` from the front; returns how many records were written.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes a live, writable slice;
    // the kernel writes at most `len` records.
    let n = cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) })?;
    Ok(n as usize)
}

/// Creates a nonblocking close-on-exec eventfd (the wakeup channel).
pub fn eventfd_create() -> io::Result<RawFd> {
    // SAFETY: eventfd takes no pointers.
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Posts one wakeup tick to an eventfd. Saturation (EAGAIN when the
/// counter is full) still leaves the fd readable, so it is not an error.
pub fn eventfd_write(fd: RawFd) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: the buffer is 8 live bytes, exactly what eventfd expects.
    let ret = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    if ret < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        return Err(err);
    }
    Ok(())
}

/// Drains an eventfd so it stops reporting readable.
pub fn eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    // SAFETY: the buffer is 8 live bytes; the fd is nonblocking, so
    // this never hangs. Errors (EAGAIN after a race) are ignorable.
    let _ = unsafe { read(fd, buf.as_mut_ptr(), 8) };
}

/// Closes a raw fd owned by this crate.
pub fn close_fd(fd: RawFd) {
    // SAFETY: callers only pass fds they own and never reuse after.
    let _ = unsafe { close(fd) };
}
