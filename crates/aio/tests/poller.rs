//! Loopback-socket tests for the `Poller` facade, run against both
//! backends. The epoll path exercises real kernel readiness; the
//! fallback path checks the maybe-ready contract (every registered
//! source reported, nonblocking ops decide).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use xhc_aio::{Events, Interest, Poller, Token};

/// Every test runs on whichever backend `Poller::new` picks, so the same
/// suite covers epoll (the Linux default) and, when CI re-runs with
/// `XHC_AIO_BACKEND=fallback`, the portable backend. Env vars are
/// process-global, so the two configurations are separate test runs
/// rather than separate tests.
fn new_poller() -> Poller {
    Poller::new().expect("poller")
}

fn wait_for(
    poller: &mut Poller,
    events: &mut Events,
    pred: impl Fn(&xhc_aio::Event) -> bool,
    deadline: Duration,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        poller
            .wait(events, Some(Duration::from_millis(50)))
            .expect("wait");
        if events.iter().any(&pred) {
            return true;
        }
    }
    false
}

#[test]
fn listener_becomes_readable_on_connect() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let mut poller = new_poller();
    poller
        .register(&listener, Token(7), Interest::READABLE)
        .unwrap();

    let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let mut events = Events::with_capacity(8);
    assert!(
        wait_for(
            &mut poller,
            &mut events,
            |e| e.token() == Token(7) && e.readable(),
            Duration::from_secs(5),
        ),
        "pending connection never reported readable on {}",
        poller.backend_name()
    );
    let (conn, _) = listener.accept().unwrap();
    drop(conn);
}

#[test]
fn stream_reports_readable_when_bytes_arrive() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();

    let mut poller = new_poller();
    poller
        .register(&server, Token(1), Interest::READABLE)
        .unwrap();

    client.write_all(b"ping").unwrap();
    let mut events = Events::with_capacity(8);
    assert!(wait_for(
        &mut poller,
        &mut events,
        |e| e.token() == Token(1) && e.readable(),
        Duration::from_secs(5),
    ));

    // The maybe-ready contract: a nonblocking read settles it.
    let mut server = server;
    let mut buf = [0u8; 16];
    let n = server.read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"ping");
}

#[test]
fn reregister_to_writable_and_deregister() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    client.set_nonblocking(true).unwrap();
    let (_server, _) = listener.accept().unwrap();

    let mut poller = new_poller();
    poller
        .register(&client, Token(3), Interest::READABLE)
        .unwrap();
    poller
        .reregister(&client, Token(3), Interest::WRITABLE)
        .unwrap();

    // An idle connected socket has send-buffer space: writable.
    let mut events = Events::with_capacity(8);
    assert!(wait_for(
        &mut poller,
        &mut events,
        |e| e.token() == Token(3) && e.writable(),
        Duration::from_secs(5),
    ));

    poller.deregister(&client, Token(3)).unwrap();
    // After deregistration the token must not appear again.
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(200) {
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token() != Token(3)),
            "deregistered token still reported on {}",
            poller.backend_name()
        );
    }
}

#[test]
fn waker_interrupts_a_long_wait() {
    let mut poller = new_poller();
    // Register something so the fallback backend takes its sliced-sleep
    // path too.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    poller
        .register(&listener, Token(0), Interest::READABLE)
        .unwrap();

    let waker = poller.waker();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        waker.wake();
    });

    let mut events = Events::with_capacity(4);
    let start = Instant::now();
    poller
        .wait(&mut events, Some(Duration::from_secs(30)))
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "wake did not interrupt the wait"
    );
    handle.join().unwrap();
}

#[test]
fn wake_before_wait_is_not_lost() {
    let mut poller = new_poller();
    let waker = poller.waker();
    waker.wake();
    let mut events = Events::with_capacity(4);
    let start = Instant::now();
    poller
        .wait(&mut events, Some(Duration::from_secs(30)))
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "pre-posted wake was lost"
    );
}

#[test]
fn peer_close_is_reported() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();

    let mut poller = new_poller();
    poller
        .register(&server, Token(9), Interest::READABLE)
        .unwrap();
    drop(client);

    // Both backends must let a reader discover the close: epoll reports
    // RDHUP/readable; the fallback reports maybe-readable and the
    // nonblocking read returns Ok(0).
    let mut events = Events::with_capacity(8);
    assert!(wait_for(
        &mut poller,
        &mut events,
        |e| e.token() == Token(9) && e.readable(),
        Duration::from_secs(5),
    ));
    let mut server = server;
    let mut buf = [0u8; 8];
    assert_eq!(server.read(&mut buf).unwrap(), 0, "expected EOF");
}

#[test]
fn fallback_contract_via_env() {
    // Only meaningful when CI pins the backend; otherwise assert the
    // default backend name so the test is never silently vacuous.
    let forced =
        std::env::var_os("XHC_AIO_BACKEND").is_some_and(|v| v.to_str() == Some("fallback"));
    let poller = new_poller();
    if forced {
        assert_eq!(poller.backend_name(), "fallback");
    } else if cfg!(target_os = "linux") {
        assert_eq!(poller.backend_name(), "epoll");
    } else {
        assert_eq!(poller.backend_name(), "fallback");
    }
}
