//! Self-contained deterministic pseudo-randomness for the `xhybrid`
//! workspace.
//!
//! Everything stochastic in the workspace — synthetic workload generation,
//! random circuit synthesis, ATPG random fill, the `Seeded` pivot-selection
//! policy — must be *reproducible per seed* so experiments and tests are
//! stable across machines and releases. This crate provides that with zero
//! external dependencies:
//!
//! * [`XhcRng`] — a xoshiro256\*\* generator seeded through SplitMix64,
//!   with convenience samplers (`gen_bool`, `gen_range` over integer and
//!   float ranges);
//! * [`SliceRandom`] — `choose` / `shuffle` extension methods on slices;
//! * [`sample_indices`] — `k` distinct indices from `0..n` without
//!   replacement.
//!
//! The stream is a fixed part of the workspace contract: changing the
//! algorithm changes every seeded artifact, so treat the output sequence
//! as stable API.
//!
//! # Examples
//!
//! ```
//! use xhc_prng::{SliceRandom, XhcRng};
//!
//! let mut rng = XhcRng::seed_from_u64(42);
//! let d6 = rng.gen_range(1..=6usize);
//! assert!((1..=6).contains(&d6));
//!
//! let mut deck: Vec<u32> = (0..10).collect();
//! deck.shuffle(&mut rng);
//! assert_eq!(deck.len(), 10);
//!
//! // Determinism: the same seed always yields the same stream.
//! let a: Vec<u64> = (0..4).map(|_| XhcRng::seed_from_u64(7).next_u64()).collect();
//! assert!(a.windows(2).all(|w| w[0] == w[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::ops::{Range, RangeInclusive};

/// The SplitMix64 finalizer: a full-avalanche 64-bit mixing permutation.
///
/// This is the mixing step of the reference xoshiro seeding procedure
/// (used by [`XhcRng::seed_from_u64`]) and doubles as the workspace's
/// content-hash mixer (`xhc-wire`). Like the RNG stream, the output of
/// this function is stable workspace API: content-addressed artifacts
/// depend on it bit-for-bit.
#[inline]
pub fn splitmix64_mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded deterministic pseudo-random number generator
/// (xoshiro256\*\* state, SplitMix64 seeding).
///
/// Not cryptographically secure — it exists to make experiments
/// reproducible, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XhcRng {
    s: [u64; 4],
}

impl XhcRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding procedure for
        // xoshiro: guarantees a non-zero state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64_mix(sm)
        };
        XhcRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }

    /// A uniform index in `0..n` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let range = n as u64;
        // Widening multiply with rejection: exact uniformity.
        let threshold = range.wrapping_neg() % range;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (range as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// A uniform draw from a range: `a..b` / `a..=b` over `usize`, or a
    /// half-open `f64` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range type [`XhcRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut XhcRng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut XhcRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_index(self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut XhcRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.gen_index(hi - lo + 1)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut XhcRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `choose` / `shuffle` extension methods on slices, mirroring the usual
/// slice-sampling idiom.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// A uniformly-chosen element, or `None` if the slice is empty.
    fn choose(&self, rng: &mut XhcRng) -> Option<&Self::Item>;
    /// An in-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut XhcRng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose(&self, rng: &mut XhcRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_index(self.len())])
        }
    }

    fn shuffle(&mut self, rng: &mut XhcRng) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_index(i + 1));
        }
    }
}

/// Samples `k` distinct indices from `0..n`, uniformly without
/// replacement. The returned order is itself random.
///
/// Uses rejection sampling when `k` is small relative to `n` (no `O(n)`
/// allocation) and a partial Fisher–Yates shuffle otherwise.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices(rng: &mut XhcRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    if k == 0 {
        return Vec::new();
    }
    if k * 3 < n {
        let mut chosen = HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let i = rng.gen_index(n);
            if chosen.insert(i) {
                out.push(i);
            }
        }
        out
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.gen_index(n - i);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XhcRng::seed_from_u64(123);
        let mut b = XhcRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XhcRng::seed_from_u64(1);
        let mut b = XhcRng::seed_from_u64(2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = XhcRng::seed_from_u64(0);
        // SplitMix64 seeding never produces the all-zero state.
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = XhcRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XhcRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = XhcRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = XhcRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!((3..7).contains(&rng.gen_range(3..7usize)));
            assert!((2..=3).contains(&rng.gen_range(2..=3usize)));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(5..=5usize), 5);
    }

    #[test]
    fn gen_index_covers_all_values() {
        let mut rng = XhcRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        XhcRng::seed_from_u64(0).gen_range(3..3usize);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = XhcRng::seed_from_u64(8);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10, 20, 30];
        assert!(items.contains(items.choose(&mut rng).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = XhcRng::seed_from_u64(11);
        for (n, k) in [(100, 3), (100, 90), (10, 10), (1, 1), (50, 0)] {
            let s = sample_indices(&mut rng, n, k);
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|&i| i < n));
            let distinct: HashSet<usize> = s.iter().copied().collect();
            assert_eq!(distinct.len(), k, "duplicates in sample({n},{k})");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_population_panics() {
        sample_indices(&mut XhcRng::seed_from_u64(0), 3, 4);
    }

    #[test]
    fn splitmix_mix_is_deterministic_and_avalanches() {
        assert_eq!(splitmix64_mix(0), 0);
        assert_eq!(splitmix64_mix(0xDEAD_BEEF), splitmix64_mix(0xDEAD_BEEF));
        // One flipped input bit changes roughly half the output bits.
        let d = (splitmix64_mix(0xDEAD_BEEF) ^ splitmix64_mix(0xDEAD_BEEE)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
        // The seeding path still produces the pinned stream (checked in
        // stream_is_pinned below), so the refactor is observably identical.
    }

    #[test]
    fn stream_is_pinned() {
        // The output sequence is workspace API: seeded artifacts (synthetic
        // workloads, generated circuits) depend on it bit-for-bit.
        let mut rng = XhcRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
            ]
        );
    }
}
