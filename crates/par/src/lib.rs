//! Dependency-free data parallelism for the `xhybrid` workspace.
//!
//! The partition engine's hot loops (candidate-split evaluation, child
//! partition re-analysis, per-partition mask extraction) are
//! embarrassingly parallel, but the workspace builds fully offline — no
//! `rayon`. This crate provides the small slice of a work-stealing pool
//! the engine actually needs, built on [`std::thread::scope`] (the same
//! no-external-deps precedent as `xhc-prng`):
//!
//! * [`par_map`] / [`par_map_threads`] — map a function over a slice on a
//!   scoped worker pool, returning results **in input order** regardless
//!   of scheduling;
//! * [`par_chunks`] / [`par_chunks_threads`] — the same over consecutive
//!   sub-slices, for stages whose per-item cost is too small to amortise
//!   a task each;
//! * [`par_map_scratch_threads`] — `par_map` with a caller-owned pool of
//!   per-worker scratch objects, for kernels that would otherwise
//!   allocate working buffers on every item;
//! * [`par_shard_reduce_threads`] — split an index range into contiguous
//!   shards, map each shard on the pool, and fold the partial results
//!   **in shard order**, for reductions that must parallelize *inside*
//!   one logical task (e.g. one split candidate's superset sweep) without
//!   perturbing the result;
//! * [`max_threads`] — the pool width: the `XHC_THREADS` environment
//!   variable when set, otherwise [`std::thread::available_parallelism`].
//!
//! Determinism is the contract: every helper returns exactly what the
//! sequential equivalent (`items.iter().map(f).collect()`) returns, in
//! the same order, for every thread count. Callers that fold the results
//! sequentially therefore produce bit-identical outputs at 1 and N
//! threads — the property the partition engine's equivalence suite
//! checks.
//!
//! Work distribution is an atomic index counter (dynamic self-scheduling)
//! so unevenly-sized tasks — split candidates whose partitions differ
//! wildly in X population — balance without a size oracle.
//!
//! Every worker closure drains its `xhc-trace` thread buffer
//! ([`xhc_trace::flush_thread`]) just before it returns, so spans and
//! counters recorded on workers reach the trace sink deterministically at
//! the join point — a traced parallel section never loses worker events.
//!
//! # Examples
//!
//! ```
//! let squares = xhc_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let sums = xhc_par::par_chunks(&[1u64, 2, 3, 4, 5], 2, |c| c.iter().sum::<u64>());
//! assert_eq!(sums, vec![3, 7, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the worker-pool width.
pub const THREADS_ENV: &str = "XHC_THREADS";

/// The default pool width: `XHC_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism (at least 1).
///
/// Read once and cached for the process lifetime; pass an explicit count
/// to [`par_map_threads`] / [`par_chunks_threads`] to vary it at runtime
/// (the equivalence tests do).
pub fn max_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    })
}

/// Maps `f` over `items` on the default pool (see [`max_threads`]),
/// returning results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. `threads <= 1` (or a short input) runs
/// sequentially on the caller's thread; the output is identical either
/// way.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Dynamic self-scheduling: workers claim the next unclaimed index, so
    // uneven task costs balance. Each worker keeps `(index, result)`
    // pairs; the pairs are re-placed by index afterwards, which makes the
    // output order independent of scheduling.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let buckets = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    xhc_trace::flush_thread();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("xhc-par worker panicked"))
            .collect::<Vec<_>>()
    });

    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed"))
        .collect()
}

/// Maps `f` over `items` on up to `threads` scoped workers, handing each
/// worker exclusive `&mut` access to one scratch object from `pool`.
///
/// The pool is grown with [`Default`] scratch objects up to the worker
/// count and retained by the caller, so buffers allocated by one call
/// (e.g. the partition engine's per-candidate word buffers) are reused by
/// every later call — the steady state allocates nothing. Results come
/// back in input order; `threads <= 1` (or a short input) runs
/// sequentially on the caller's thread with `pool[0]`, and the output is
/// identical either way for any `f` whose result does not depend on the
/// scratch contents it inherits.
pub fn par_map_scratch_threads<T, R, S, F>(
    threads: usize,
    pool: &mut Vec<S>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Default + Send,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.min(items.len());
    if workers <= 1 {
        if pool.is_empty() {
            pool.push(S::default());
        }
        let scratch = &mut pool[0];
        return items.iter().map(|t| f(scratch, t)).collect();
    }
    while pool.len() < workers {
        pool.push(S::default());
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let buckets = std::thread::scope(|scope| {
        let handles: Vec<_> = pool
            .iter_mut()
            .take(workers)
            .map(|scratch| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(scratch, &items[i])));
                    }
                    xhc_trace::flush_thread();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("xhc-par worker panicked"))
            .collect::<Vec<_>>()
    });

    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed"))
        .collect()
}

/// Splits `0..len` into `shards` contiguous, near-equal index ranges,
/// maps each range on up to `threads` scoped workers, and folds the
/// partial results over `init` **in shard order**.
///
/// This is the primitive for parallelizing *inside* one logical task — a
/// reduction whose partial results are combined with an associative fold
/// whose operand order must not depend on scheduling. Because every
/// shard covers a fixed contiguous range and the fold always runs
/// `init ⊕ r₀ ⊕ r₁ ⊕ …` left-to-right, the result is identical for every
/// `threads` value (only *which worker* computes a shard varies), and for
/// commutative-associative `fold` (integer sums) it is also identical
/// for every `shards` value.
///
/// `shards` is clamped to `1..=len`; `shards <= 1` (or `len <= 1`)
/// degenerates to `fold(init, map(0..len))` on the caller's thread with
/// no pool involvement. `len == 0` returns `init` untouched.
///
/// # Examples
///
/// ```
/// let data: Vec<u64> = (0..100).collect();
/// let sum = xhc_par::par_shard_reduce_threads(
///     4,
///     data.len(),
///     3,
///     0u64,
///     |range| data[range].iter().sum::<u64>(),
///     |acc, part| acc + part,
/// );
/// assert_eq!(sum, (0..100).sum());
/// ```
pub fn par_shard_reduce_threads<R, M, F>(
    threads: usize,
    len: usize,
    shards: usize,
    init: R,
    map: M,
    fold: F,
) -> R
where
    R: Send,
    M: Fn(std::ops::Range<usize>) -> R + Sync,
    F: Fn(R, R) -> R,
{
    if len == 0 {
        return init;
    }
    let shards = shards.clamp(1, len);
    if shards <= 1 {
        return fold(init, map(0..len));
    }
    // Near-equal bands: the first `len % shards` bands get one extra
    // index, so band boundaries are a pure function of (len, shards).
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let band = base + usize::from(s < extra);
        ranges.push(start..start + band);
        start += band;
    }
    debug_assert_eq!(start, len);
    let partials = par_map_threads(threads, &ranges, |r| map(r.clone()));
    partials.into_iter().fold(init, fold)
}

/// Applies `f` to consecutive chunks of `items` (each of `chunk_size`
/// elements, the last possibly shorter) on the default pool, returning
/// one result per chunk in chunk order.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    par_chunks_threads(max_threads(), items, chunk_size, f)
}

/// Like [`par_chunks`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks_threads<T, R, F>(threads: usize, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map_threads(threads, &chunks, |c| f(c))
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// A convenience for two-way forks (e.g. the two child partitions of a
/// split). Sequential when the pool width is 1.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if max_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            let rb = b();
            xhc_trace::flush_thread();
            rb
        });
        let ra = a();
        (ra, hb.join().expect("xhc-par join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_threads(threads, &items, |&x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_handles_uneven_costs() {
        // Tasks with wildly different costs still land in input order.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map_threads(4, &items, |&i| {
            let spin = if i % 7 == 0 { 10_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (gi, _)) in got.iter().enumerate() {
            assert_eq!(i, *gi);
        }
    }

    #[test]
    fn par_map_scratch_matches_sequential_and_reuses_pool() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let mut pool: Vec<Vec<u64>> = Vec::new();
            let got = par_map_scratch_threads(threads, &mut pool, &items, |scratch, &x| {
                // Use the scratch as a working buffer without assuming
                // anything about its prior contents.
                scratch.clear();
                scratch.push(x);
                scratch[0] * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
            assert!(!pool.is_empty());
            assert!(pool.len() <= threads.max(1));
            // A second call reuses the same pool without growing it.
            let before = pool.len();
            let again = par_map_scratch_threads(threads, &mut pool, &items, |scratch, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0] * 3 + 1
            });
            assert_eq!(again, expect);
            assert_eq!(pool.len(), before);
        }
    }

    #[test]
    fn par_map_scratch_empty_input_leaves_pool_unchanged() {
        let mut pool: Vec<u8> = Vec::new();
        let empty: Vec<u32> = vec![];
        let got = par_map_scratch_threads(4, &mut pool, &empty, |_, &x| x);
        assert!(got.is_empty());
        assert!(pool.is_empty());
    }

    #[test]
    fn shard_reduce_matches_sequential_for_every_shape() {
        let data: Vec<u64> = (0..257).map(|i| i * 7 + 3).collect();
        let want: u64 = data.iter().sum();
        for shards in [1usize, 2, 3, 8, 64, 300] {
            for threads in [1usize, 2, 8] {
                let got = par_shard_reduce_threads(
                    threads,
                    data.len(),
                    shards,
                    0u64,
                    |r| data[r].iter().sum::<u64>(),
                    |a, b| a + b,
                );
                assert_eq!(got, want, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn shard_reduce_folds_in_shard_order() {
        // A non-commutative fold (concatenation) exposes any ordering
        // slip: the bands must come back 0..len in order.
        let concat = par_shard_reduce_threads(
            4,
            10,
            3,
            Vec::new(),
            |r| r.collect::<Vec<usize>>(),
            |mut acc: Vec<usize>, mut part| {
                acc.append(&mut part);
                acc
            },
        );
        assert_eq!(concat, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn shard_reduce_empty_and_oversharded() {
        let got = par_shard_reduce_threads(4, 0, 8, 42u64, |_| unreachable!(), |a, b| a + b);
        assert_eq!(got, 42);
        // More shards than items: clamped to one index per shard.
        let got = par_shard_reduce_threads(4, 2, 100, 0usize, |r| r.len(), |a, b| a + b);
        assert_eq!(got, 2);
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1, 4] {
            let got = par_chunks_threads(threads, &items, 10, |c| c.to_vec());
            let flat: Vec<u32> = got.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks_threads(2, &[1u8, 2], 0, |c| c.len());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn workers_drain_trace_buffers_at_the_join_point() {
        let Some(session) = xhc_trace::TraceSession::begin() else {
            panic!("another trace session is active");
        };
        let items: Vec<u64> = (0..32).collect();
        let got = par_map_threads(4, &items, |&x| {
            let _span = xhc_trace::span("par.test.item");
            xhc_trace::counter_add("par.test.items", 1);
            x + 1
        });
        assert_eq!(got.len(), 32);
        let (a, b) = join(
            || {
                xhc_trace::counter_add("par.test.join", 1);
                1u32
            },
            || {
                xhc_trace::counter_add("par.test.join", 1);
                2u32
            },
        );
        assert_eq!((a, b), (1, 2));
        let trace = session.finish();
        assert_eq!(trace.spans("par.test.item").count(), 32);
        assert_eq!(trace.counter("par.test.items"), Some(32));
        assert_eq!(trace.counter("par.test.join"), Some(2));
    }
}
