//! End-to-end loopback tests: a real daemon on 127.0.0.1, real sockets,
//! concurrent clients, and bit-identical agreement with the offline
//! engine at every thread count.

use std::fs;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use xhc_core::{PartitionEngine, PlanOptions, SplitStrategy};
use xhc_misr::XCancelConfig;
use xhc_scan::write_xmap;
use xhc_serve::{client, Server, ServerConfig};
use xhc_wire::{
    encode_plan, encode_plan_request, encode_workload_spec, encode_xmap, hash_hex,
    plan_request_hash, PlanRequest,
};
use xhc_workload::WorkloadSpec;

/// A small but nontrivial workload (a few hundred X's).
fn test_spec() -> WorkloadSpec {
    WorkloadSpec {
        total_cells: 300,
        num_chains: 6,
        num_patterns: 48,
        seed: 0xCAFE,
        ..WorkloadSpec::default()
    }
}

struct TestServer {
    addr: std::net::SocketAddr,
    handle: xhc_serve::ServerHandle,
    join: Option<thread::JoinHandle<std::io::Result<()>>>,
    store_dir: PathBuf,
}

impl TestServer {
    fn start(tag: &str, engine_threads: usize) -> TestServer {
        TestServer::start_with(tag, engine_threads, false)
    }

    fn start_with(tag: &str, engine_threads: usize, verify_on_write: bool) -> TestServer {
        let store_dir = std::env::temp_dir().join(format!(
            "xhc-loopback-{tag}-{}-{engine_threads}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&store_dir);
        let config = ServerConfig::new(&store_dir)
            .with_threads(engine_threads)
            .with_workers(8)
            .with_verify_on_write(verify_on_write);
        let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            join: Some(join),
            store_dir,
        }
    }

    fn metric(&self, name: &str) -> u64 {
        let page = client::get(self.addr, "/metrics").expect("scrape metrics");
        assert_eq!(page.status, 200);
        page.body_text()
            .lines()
            .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("metric value")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        let _ = fs::remove_dir_all(&self.store_dir);
    }
}

#[test]
fn concurrent_identical_submissions_single_flight() {
    // The acceptance criterion: at every engine thread count, N
    // concurrent clients submitting the same workload get byte-identical
    // wire-encoded plans matching the offline engine, with exactly one
    // cache miss recorded.
    let spec = test_spec();
    let xmap = spec.generate();
    let offline = PartitionEngine::with_options(
        XCancelConfig::new(32, 7),
        PlanOptions {
            strategy: SplitStrategy::LargestClass,
            ..PlanOptions::default()
        },
    )
    .run(&xmap);
    let expected_plan = encode_plan(&offline, xmap.num_patterns());
    let expected_key = plan_request_hash(&encode_xmap(&xmap), 32, 7, 0);

    for engine_threads in [1, 2, 8] {
        let server = TestServer::start("single-flight", engine_threads);
        let body = encode_xmap(&xmap);
        const CLIENTS: usize = 4;
        let results: Vec<_> = thread::scope(|scope| {
            let mut joins = Vec::new();
            for _ in 0..CLIENTS {
                let body = body.clone();
                let addr = server.addr;
                joins.push(scope.spawn(move || {
                    client::post(
                        addr,
                        "/v1/plan?m=32&q=7&strategy=largest",
                        "application/octet-stream",
                        &body,
                    )
                    .expect("post plan")
                }));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });

        let mut misses = 0;
        for response in &results {
            assert_eq!(response.status, 200, "{}", response.body_text());
            assert_eq!(
                response.body, expected_plan,
                "daemon plan differs from offline engine at {engine_threads} threads"
            );
            assert_eq!(
                response.header("x-xhc-plan-hash"),
                Some(hash_hex(expected_key).as_str())
            );
            match response.header("x-xhc-cache") {
                Some("miss") => {
                    misses += 1;
                    // A cold plan reports its engine wall time.
                    let ns: u64 = response
                        .header("x-xhc-engine-ns")
                        .expect("miss carries engine time")
                        .parse()
                        .expect("engine ns is an integer");
                    assert!(ns > 0);
                }
                Some("hit") => {
                    assert_eq!(response.header("x-xhc-engine-ns"), None);
                }
                other => panic!("unexpected cache header {other:?}"),
            }
        }
        assert_eq!(misses, 1, "expected exactly one computing client");
        assert_eq!(server.metric("xhc_cache_misses_total"), 1);
        assert_eq!(server.metric("xhc_cache_hits_total"), (CLIENTS - 1) as u64);
        // The engine-seconds summary counts one run per miss, and its sum
        // is consistent with the reported per-response engine time.
        assert_eq!(server.metric("xhc_plan_engine_seconds_count"), 1);

        // A resubmission is a pure cache hit.
        let again = client::post(
            server.addr,
            "/v1/plan?m=32&q=7",
            "application/octet-stream",
            &body,
        )
        .unwrap();
        assert_eq!(again.status, 200);
        assert_eq!(again.header("x-xhc-cache"), Some("hit"));
        assert_eq!(again.body, expected_plan);
        assert_eq!(server.metric("xhc_cache_misses_total"), 1);

        // And the plan is addressable by its content hash.
        let fetched =
            client::get(server.addr, &format!("/v1/plan/{}", hash_hex(expected_key))).unwrap();
        assert_eq!(fetched.status, 200);
        assert_eq!(fetched.body, expected_plan);
    }
}

#[test]
fn text_and_wire_submissions_share_a_cache_entry() {
    let spec = test_spec();
    let xmap = spec.generate();
    let server = TestServer::start("text-vs-wire", 2);

    let mut text = Vec::new();
    write_xmap(&mut text, &xmap).unwrap();
    let first = client::post(server.addr, "/v1/plan", "text/plain", &text).unwrap();
    assert_eq!(first.status, 200, "{}", first.body_text());
    assert_eq!(first.header("x-xhc-cache"), Some("miss"));

    // The same X map in wire form hits the same cache entry: the key is
    // computed over the canonical wire bytes, not the submitted ones.
    let wire = encode_xmap(&xmap);
    let second = client::post(server.addr, "/v1/plan", "application/octet-stream", &wire).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-xhc-cache"), Some("hit"));
    assert_eq!(second.body, first.body);
    assert_eq!(
        first.header("x-xhc-plan-hash"),
        second.header("x-xhc-plan-hash")
    );
}

#[test]
fn workload_spec_submissions_plan_the_generated_xmap() {
    let spec = test_spec();
    let server = TestServer::start("spec-body", 2);
    let body = encode_workload_spec(&spec);
    let response = client::post(
        server.addr,
        "/v1/plan?m=16&q=3",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_text());

    let xmap = spec.generate();
    let offline = PartitionEngine::new(XCancelConfig::new(16, 3)).run(&xmap);
    assert_eq!(response.body, encode_plan(&offline, xmap.num_patterns()));
}

#[test]
fn bad_inputs_map_to_http_errors() {
    let server = TestServer::start("errors", 1);

    // Empty body.
    let r = client::post(server.addr, "/v1/plan", "text/plain", b"").unwrap();
    assert_eq!(r.status, 400);

    // Garbage text.
    let r = client::post(server.addr, "/v1/plan", "text/plain", b"not an xmap").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("bad xmap text"));

    // Wire garbage behind a valid magic.
    let r = client::post(
        server.addr,
        "/v1/plan",
        "application/octet-stream",
        b"XHCW\xFF\xFF\x00\x00",
    )
    .unwrap();
    assert_eq!(r.status, 400);

    // Bad (m, q): lint gate denies q >= m with rendered diagnostics.
    let spec = test_spec();
    let body = encode_xmap(&spec.generate());
    let r = client::post(
        server.addr,
        "/v1/plan?m=8&q=8",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(r.status, 422);
    assert!(
        r.body_text().contains("XL0305"),
        "expected the (m, q) design rule in: {}",
        r.body_text()
    );

    // Bad query parameter.
    let r = client::post(
        server.addr,
        "/v1/plan?m=zebra",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(r.status, 400);

    // Unknown plan hash.
    let r = client::get(server.addr, "/v1/plan/0000000000000000").unwrap();
    assert_eq!(r.status, 404);

    // Malformed plan hash.
    let r = client::get(server.addr, "/v1/plan/zzz").unwrap();
    assert_eq!(r.status, 400);

    // Unknown route and wrong method.
    assert_eq!(client::get(server.addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(server.addr, "/v1/plan").unwrap().status, 405);

    // Health check still fine after all that.
    let r = client::get(server.addr, "/healthz").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body_text(), "ok\n");
}

#[test]
fn async_jobs_complete_and_report_their_hash() {
    let spec = test_spec();
    let xmap = spec.generate();
    let server = TestServer::start("async", 2);
    let body = encode_xmap(&xmap);

    let accepted = client::post(
        server.addr,
        "/v1/plan?mode=async",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body_text());
    let job_id = accepted
        .header("x-xhc-job")
        .expect("job id header")
        .to_string();
    let plan_hash = accepted
        .header("x-xhc-plan-hash")
        .expect("plan hash header")
        .to_string();

    // Poll until done (bounded).
    let deadline = Instant::now() + Duration::from_secs(30);
    let final_status = loop {
        let status = client::get(server.addr, &format!("/v1/jobs/{job_id}")).unwrap();
        assert_eq!(status.status, 200);
        let text = status.body_text();
        if text.contains("\"done\"") || text.contains("\"failed\"") {
            break text;
        }
        assert!(Instant::now() < deadline, "job never finished: {text}");
        thread::sleep(Duration::from_millis(20));
    };
    assert!(final_status.contains("\"done\""), "{final_status}");
    assert!(final_status.contains(&plan_hash), "{final_status}");

    // The finished plan is fetchable and matches the offline engine.
    let fetched = client::get(server.addr, &format!("/v1/plan/{plan_hash}")).unwrap();
    assert_eq!(fetched.status, 200);
    let offline = PartitionEngine::new(XCancelConfig::new(32, 7)).run(&xmap);
    assert_eq!(fetched.body, encode_plan(&offline, xmap.num_patterns()));

    // Unknown job id 404s.
    let missing = client::get(server.addr, "/v1/jobs/999999").unwrap();
    assert_eq!(missing.status, 404);
}

#[test]
fn plan_request_bodies_override_query_params() {
    let spec = test_spec();
    let xmap = spec.generate();
    let server = TestServer::start("plan-request", 2);
    let body = encode_plan_request(&PlanRequest {
        m: 16,
        q: 3,
        options: PlanOptions::default(),
        artifact: encode_xmap(&xmap),
    });
    // The query string says (32, 7); the embedded request wins.
    let response = client::post(
        server.addr,
        "/v1/plan?m=32&q=7",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_text());
    let offline = PartitionEngine::new(XCancelConfig::new(16, 3)).run(&xmap);
    assert_eq!(response.body, encode_plan(&offline, xmap.num_patterns()));
    // Default options collapse to the pre-options cache key, so old
    // store entries stay addressable.
    let expected_key = plan_request_hash(&encode_xmap(&xmap), 16, 3, 0);
    assert_eq!(
        response.header("x-xhc-plan-hash"),
        Some(hash_hex(expected_key).as_str())
    );
}

#[test]
fn traced_requests_return_plan_bytes_plus_chrome_json() {
    let spec = test_spec();
    let xmap = spec.generate();
    let server = TestServer::start("trace", 2);
    let body = encode_xmap(&xmap);
    let response = client::post(
        server.addr,
        "/v1/plan?m=32&q=7&trace=1",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_text());
    assert_eq!(response.header("x-xhc-cache"), Some("miss"));
    let plan_len: usize = response
        .header("x-xhc-plan-bytes")
        .expect("traced responses carry the boundary header")
        .parse()
        .expect("boundary is an integer");
    let (plan, json) = response.body.split_at(plan_len);
    let offline = PartitionEngine::new(XCancelConfig::new(32, 7)).run(&xmap);
    assert_eq!(plan, encode_plan(&offline, xmap.num_patterns()).as_slice());
    let json = std::str::from_utf8(json).expect("chrome export is UTF-8");
    assert!(
        json.trim_start().starts_with('['),
        "not a JSON array: {json}"
    );
    assert!(json.contains("\"serve.plan\""), "missing serve span");
    assert!(json.contains("\"partition.run\""), "missing engine span");
    // The stored plan is the untouched first part.
    let hash = response.header("x-xhc-plan-hash").unwrap().to_string();
    let fetched = client::get(server.addr, &format!("/v1/plan/{hash}")).unwrap();
    assert_eq!(fetched.status, 200);
    assert_eq!(fetched.body, plan);
    // An untraced replay of the same request is a plain cache hit with
    // no boundary header.
    let again = client::post(
        server.addr,
        "/v1/plan?m=32&q=7",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(again.header("x-xhc-cache"), Some("hit"));
    assert_eq!(again.header("x-xhc-plan-bytes"), None);
    assert_eq!(again.body, plan);
}

#[test]
fn verify_route_checks_stored_certificates() {
    let spec = test_spec();
    let xmap = spec.generate();
    let server = TestServer::start_with("verify", 2, true);
    let body = encode_xmap(&xmap);
    let r = client::post(
        server.addr,
        "/v1/plan?m=32&q=7",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    // verify-on-write ran inline and passed, or this would be a 500.
    assert_eq!(r.status, 200, "{}", r.body_text());
    let hash = r.header("x-xhc-plan-hash").unwrap().to_string();

    // The cached plan re-verifies from its stored .cert/.xmap siblings.
    let v = client::get(server.addr, &format!("/v1/plan/{hash}/verify")).unwrap();
    assert_eq!(v.status, 200, "{}", v.body_text());
    assert!(v.body_text().contains("verified"));
    assert_eq!(v.header("x-xhc-plan-hash"), Some(hash.as_str()));

    // Both the write-time and the GET-time checks were counted.
    assert_eq!(server.metric("xhc_verify_total"), 2);
    assert_eq!(server.metric("xhc_verify_failures_total"), 0);

    // Unknown hash 404s; malformed hash 400s.
    let missing = client::get(server.addr, "/v1/plan/0000000000000001/verify").unwrap();
    assert_eq!(missing.status, 404);
    let bad = client::get(server.addr, "/v1/plan/zzz/verify").unwrap();
    assert_eq!(bad.status, 400);

    // Tamper with the stored certificate (re-point its plan hash): the
    // checker must reject it under the XL0401 cross-artifact rule.
    let cert_path = server.store_dir.join(format!("{hash}.cert"));
    let mut cert = xhc_wire::decode_certificate(&fs::read(&cert_path).unwrap()).unwrap();
    cert.plan_hash ^= 1;
    fs::write(&cert_path, xhc_wire::encode_certificate(&cert)).unwrap();
    let v = client::get(server.addr, &format!("/v1/plan/{hash}/verify")).unwrap();
    assert_eq!(v.status, 422, "{}", v.body_text());
    assert!(v.body_text().contains("XL0401"), "{}", v.body_text());
    assert_eq!(server.metric("xhc_verify_failures_total"), 1);

    // A certificate that no longer decodes is a malformed-store 500, not
    // a lint finding.
    fs::write(&cert_path, b"garbage").unwrap();
    let v = client::get(server.addr, &format!("/v1/plan/{hash}/verify")).unwrap();
    assert_eq!(v.status, 500);
}

#[test]
fn distinct_params_get_distinct_cache_entries() {
    let spec = test_spec();
    let xmap = spec.generate();
    let server = TestServer::start("params", 1);
    let body = encode_xmap(&xmap);

    let a = client::post(
        server.addr,
        "/v1/plan?m=32&q=7",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    let b = client::post(
        server.addr,
        "/v1/plan?m=16&q=3",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    let c = client::post(
        server.addr,
        "/v1/plan?m=32&q=7&strategy=best-cost",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    let d = client::post(
        server.addr,
        "/v1/plan?m=32&q=7&policy=global-max-x&cost_stop=0",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(c.status, 200);
    assert_eq!(d.status, 200);
    for r in [&a, &b, &c, &d] {
        assert_eq!(r.header("x-xhc-cache"), Some("miss"));
    }
    assert_ne!(
        a.header("x-xhc-plan-hash"),
        b.header("x-xhc-plan-hash"),
        "(m, q) must be part of the cache key"
    );
    assert_ne!(
        a.header("x-xhc-plan-hash"),
        c.header("x-xhc-plan-hash"),
        "the strategy must be part of the cache key"
    );
    assert_ne!(
        a.header("x-xhc-plan-hash"),
        d.header("x-xhc-plan-hash"),
        "non-default engine options must be part of the cache key"
    );
    assert_eq!(server.metric("xhc_cache_misses_total"), 4);
}

#[test]
fn backends_listing_and_single_backend_reports() {
    use xhc_core::{backend_for, BackendId, WorkloadInput};

    let xmap = test_spec().generate();
    let body = encode_xmap(&xmap);
    let server = TestServer::start("backends", 2);

    // The roster endpoint lists every backend, with hybrid as the default.
    let listing = client::get(server.addr, "/v1/backends").unwrap();
    assert_eq!(listing.status, 200);
    let text = listing.body_text();
    for id in BackendId::ALL {
        assert!(
            text.contains(&format!("\"id\":\"{id}\"")),
            "missing {id}: {text}"
        );
    }
    assert_eq!(text.matches("\"default\":true").count(), 1, "{text}");
    let method = client::post(server.addr, "/v1/backends", "text/plain", b"x").unwrap();
    assert_eq!(method.status, 405);

    // A non-hybrid backend on /v1/plan answers with its uniform JSON report,
    // matching an in-process run of the same backend bit for bit.
    let response = client::post(
        server.addr,
        "/v1/plan?m=32&q=7&backend=masking",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_text());
    let text = response.body_text();
    let expected = backend_for(BackendId::MaskingOnly).plan(
        &WorkloadInput::new(&xmap, XCancelConfig::new(32, 7)),
        &PlanOptions::default(),
    );
    assert!(text.contains("\"backend\":\"masking\""), "{text}");
    assert!(
        text.contains(&format!("\"control_bits\":{:.3}", expected.control_bits)),
        "{text}"
    );

    let bogus = client::post(
        server.addr,
        "/v1/plan?backend=bogus",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(bogus.status, 400);
    assert!(
        bogus.body_text().contains("backend"),
        "{}",
        bogus.body_text()
    );
}

#[test]
fn race_fans_out_and_hybrid_leg_is_byte_identical_to_single_backend_path() {
    use xhc_core::BackendId;

    let xmap = test_spec().generate();
    let body = encode_xmap(&xmap);
    let expected_key = plan_request_hash(&body, 32, 7, 0);
    let offline = PartitionEngine::new(XCancelConfig::new(32, 7)).run(&xmap);
    let offline_bytes = encode_plan(&offline, xmap.num_patterns());

    for engine_threads in [1, 2, 8] {
        let server = TestServer::start("race", engine_threads);

        // Race first: the hybrid leg computes cold, persists, and reports
        // the same hash the single-backend path would.
        let race = client::post(
            server.addr,
            "/v1/plan/race?m=32&q=7",
            "application/octet-stream",
            &body,
        )
        .unwrap();
        assert_eq!(race.status, 200, "{}", race.body_text());
        let text = race.body_text();
        for id in BackendId::ALL {
            assert!(
                text.contains(&format!("\"backend\":\"{id}\"")),
                "threads={engine_threads} missing {id}: {text}"
            );
        }
        assert!(
            text.contains(&format!("\"plan_hash\":\"{}\"", hash_hex(expected_key))),
            "{text}"
        );
        assert!(text.contains("\"cache\":\"miss\""), "{text}");
        assert!(text.contains("\"pareto\":true"), "{text}");
        assert!(
            text.contains(&format!("\"control_bits\":{:.3}", offline.cost.total())),
            "hybrid leg must report the offline engine's cost: {text}"
        );
        assert_eq!(
            race.header("x-xhc-plan-hash"),
            Some(hash_hex(expected_key).as_str())
        );

        // The plan the race stored IS the single-backend plan: the follow-up
        // /v1/plan submission hits the cache and returns identical bytes.
        let single = client::post(
            server.addr,
            "/v1/plan?m=32&q=7",
            "application/octet-stream",
            &body,
        )
        .unwrap();
        assert_eq!(single.status, 200);
        assert_eq!(
            single.header("x-xhc-cache"),
            Some("hit"),
            "threads={engine_threads}: race must persist the hybrid plan under the plan key"
        );
        assert_eq!(single.body, offline_bytes, "threads={engine_threads}");
        let fetched =
            client::get(server.addr, &format!("/v1/plan/{}", hash_hex(expected_key))).unwrap();
        assert_eq!(fetched.status, 200);
        assert_eq!(fetched.body, offline_bytes);
    }
}

#[test]
fn race_roster_selection_and_error_paths() {
    let xmap = test_spec().generate();
    let body = encode_xmap(&xmap);
    let server = TestServer::start("race-roster", 2);

    // An explicit roster restricts and dedups the fan-out.
    let race = client::post(
        server.addr,
        "/v1/plan/race?m=32&q=7&backends=masking,canceling,masking",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(race.status, 200, "{}", race.body_text());
    let text = race.body_text();
    assert_eq!(text.matches("\"backend\":\"masking\"").count(), 1, "{text}");
    assert!(text.contains("\"backend\":\"canceling\""), "{text}");
    assert!(!text.contains("\"backend\":\"hybrid\""), "{text}");

    let bogus = client::post(
        server.addr,
        "/v1/plan/race?backends=bogus",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(bogus.status, 400);
    assert!(
        bogus.body_text().contains("backend"),
        "{}",
        bogus.body_text()
    );

    let asynchronous = client::post(
        server.addr,
        "/v1/plan/race?mode=async",
        "application/octet-stream",
        &body,
    )
    .unwrap();
    assert_eq!(asynchronous.status, 400);

    let method = client::get(server.addr, "/v1/plan/race").unwrap();
    assert_eq!(method.status, 405);
}
