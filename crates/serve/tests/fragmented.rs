//! Front-end equivalence and robustness tests for the event loop:
//! fragmented and pipelined requests must produce byte-identical
//! responses to the blocking reference front end at every engine thread
//! count; concurrent same-workload submissions must share one packed
//! matrix build; overload must shed with `429` + `Retry-After`; a
//! slow-loris sender must be timed out with `408`; and the keep-alive
//! client must reuse and recover connections.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Barrier;
use std::thread;
use std::time::Duration;

use xhc_serve::{client, Server, ServerConfig};
use xhc_wire::encode_xmap;
use xhc_workload::WorkloadSpec;

/// A small but nontrivial workload (a few hundred X's).
fn test_spec() -> WorkloadSpec {
    WorkloadSpec {
        total_cells: 300,
        num_chains: 6,
        num_patterns: 48,
        seed: 0xCAFE,
        ..WorkloadSpec::default()
    }
}

/// A heavier workload, for tests that need the engine busy long enough
/// for concurrency to be observable.
fn slow_spec() -> WorkloadSpec {
    WorkloadSpec {
        total_cells: 4000,
        num_chains: 8,
        num_patterns: 96,
        seed: 0xBEEF,
        ..WorkloadSpec::default()
    }
}

struct TestServer {
    addr: std::net::SocketAddr,
    handle: xhc_serve::ServerHandle,
    join: Option<thread::JoinHandle<std::io::Result<()>>>,
    store_dir: PathBuf,
}

impl TestServer {
    /// Starts a daemon on the event-loop (`blocking = false`) or the
    /// blocking reference (`blocking = true`) front end.
    fn start(
        tag: &str,
        blocking: bool,
        configure: impl FnOnce(ServerConfig) -> ServerConfig,
    ) -> TestServer {
        let store_dir = std::env::temp_dir().join(format!(
            "xhc-fragmented-{tag}-{blocking}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&store_dir);
        let config = configure(ServerConfig::new(&store_dir).with_workers(8));
        let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || {
            if blocking {
                server.run_blocking()
            } else {
                server.run()
            }
        });
        TestServer {
            addr,
            handle,
            join: Some(join),
            store_dir,
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        let _ = fs::remove_dir_all(&self.store_dir);
    }
}

/// Serializes a plan POST; `close` controls the `Connection` header.
fn render_plan_request(path: &str, body: &[u8], close: bool) -> Vec<u8> {
    let mut head = format!(
        "POST {path} HTTP/1.1\r\nHost: xhc-serve\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n",
        body.len()
    );
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    let mut buf = head.into_bytes();
    buf.extend_from_slice(body);
    buf
}

/// Writes `wire` in `chunk`-byte fragments with a pause between each —
/// many TCP segments for one request — then reads the response to EOF.
fn send_fragmented(addr: std::net::SocketAddr, wire: &[u8], chunk: usize) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for piece in wire.chunks(chunk) {
        stream.write_all(piece).expect("write fragment");
        stream.flush().unwrap();
        thread::sleep(Duration::from_millis(1));
    }
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    response
}

/// Writes `wire` in one segment and reads the response(s) to EOF.
fn send_whole(addr: std::net::SocketAddr, wire: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(wire).expect("write request");
    stream.flush().unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    response
}

/// Splits one HTTP response off the front of `buf` using its
/// `Content-Length`, returning `(response, rest)`.
fn split_response(buf: &[u8]) -> (&[u8], &[u8]) {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator")
        + 4;
    let head = std::str::from_utf8(&buf[..head_end]).expect("ASCII head");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .expect("Content-Length header")
        .parse()
        .expect("integer Content-Length");
    buf.split_at(head_end + content_length)
}

#[test]
fn fragmented_requests_match_the_blocking_front_end() {
    let body = encode_xmap(&test_spec().generate());
    for engine_threads in [1usize, 2, 8] {
        let event = TestServer::start(&format!("frag-ev-{engine_threads}"), false, |c| {
            c.with_threads(engine_threads)
        });
        let blocking = TestServer::start(&format!("frag-bl-{engine_threads}"), true, |c| {
            c.with_threads(engine_threads)
        });
        // Prime both stores so the compared responses are cache hits
        // (a cold miss carries its own engine wall time, which can
        // never be byte-identical across two processes).
        for s in [&event, &blocking] {
            let r = client::post(
                s.addr,
                "/v1/plan?m=32&q=7",
                "application/octet-stream",
                &body,
            )
            .expect("prime");
            assert_eq!(r.status, 200, "{}", r.body_text());
        }
        let wire = render_plan_request("/v1/plan?m=32&q=7", &body, true);
        // One request over many small TCP segments against the event
        // loop; one segment against the blocking reference.
        let from_event = send_fragmented(event.addr, &wire, 64);
        let from_blocking = send_whole(blocking.addr, &wire);
        assert!(!from_event.is_empty());
        assert_eq!(
            from_event, from_blocking,
            "fragmented response differs from the blocking front end at {engine_threads} engine threads"
        );
        let text = String::from_utf8_lossy(&from_event);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Xhc-Cache: hit"), "{text}");
    }
}

#[test]
fn pipelined_requests_match_the_blocking_front_end() {
    let body = encode_xmap(&test_spec().generate());
    for engine_threads in [1usize, 2, 8] {
        let event = TestServer::start(&format!("pipe-ev-{engine_threads}"), false, |c| {
            c.with_threads(engine_threads)
        });
        let blocking = TestServer::start(&format!("pipe-bl-{engine_threads}"), true, |c| {
            c.with_threads(engine_threads)
        });
        for s in [&event, &blocking] {
            let r = client::post(
                s.addr,
                "/v1/plan?m=32&q=7",
                "application/octet-stream",
                &body,
            )
            .expect("prime");
            assert_eq!(r.status, 200, "{}", r.body_text());
        }
        // Two requests in ONE segment: a keep-alive plan fetch, then a
        // closing plan fetch. The event loop must answer both, in
        // order, on the one connection.
        let mut wire = render_plan_request("/v1/plan?m=32&q=7", &body, false);
        wire.extend_from_slice(&render_plan_request("/v1/plan?m=32&q=7", &body, true));
        let combined = send_whole(event.addr, &wire);
        let (first, rest) = split_response(&combined);
        let (second, tail) = split_response(rest);
        assert!(tail.is_empty(), "unexpected trailing bytes");

        let reference = send_whole(
            blocking.addr,
            &render_plan_request("/v1/plan?m=32&q=7", &body, true),
        );
        // The keep-alive response differs from the reference only in
        // its Connection header; normalize the (ASCII) head only — the
        // body is binary plan bytes.
        let head_len = first
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        let mut first_normalized = std::str::from_utf8(&first[..head_len])
            .expect("ASCII head")
            .replace("Connection: keep-alive", "Connection: close")
            .into_bytes();
        first_normalized.extend_from_slice(&first[head_len..]);
        assert_eq!(
            first_normalized, reference,
            "pipelined response 1 differs at {engine_threads} engine threads"
        );
        assert_eq!(
            second, reference,
            "pipelined response 2 differs at {engine_threads} engine threads"
        );
    }
}

#[test]
fn concurrent_best_cost_submissions_share_one_matrix_build() {
    xhc_trace::enable_stats();
    // The big workload: its BestCost engine run takes tens of
    // milliseconds, and the shared matrix stays alive for the whole
    // run — so barrier-released concurrent submissions overlap the
    // builder comfortably even on a loaded CI machine.
    let xmap = slow_spec().generate();
    let body = encode_xmap(&xmap);
    // How many rows one packed build streams (the `xbm.stream_rows`
    // cost of a single build), measured offline. This bumps the stat
    // registry too, so snapshot after it.
    let rows_per_build = xmap.to_bitmatrix().num_rows() as u64;
    assert!(rows_per_build > 0);
    let stat = |name: &str| -> u64 {
        xhc_trace::stats_snapshot()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| v)
    };

    let server = TestServer::start("batch", false, |c| c.with_threads(2));
    const CLIENTS: usize = 4;
    // Sharing is only guaranteed while requests actually overlap, so a
    // pathological scheduler stall can legitimately split the build;
    // retry a fresh round (distinct cache keys each time) before
    // declaring the batching path broken.
    const ATTEMPTS: usize = 3;
    let mut built_rows = 0;
    let mut batched = 0;
    for attempt in 0..ATTEMPTS {
        let rows_before = stat("xbm.stream_rows");
        let batched_before = stat("serve.batched");
        let barrier = Barrier::new(CLIENTS);
        let results: Vec<u16> = thread::scope(|scope| {
            let mut joins = Vec::new();
            for i in 0..CLIENTS {
                let body = body.clone();
                let addr = server.addr;
                let barrier = &barrier;
                let rounds = 40 + attempt * CLIENTS + i;
                joins.push(scope.spawn(move || {
                    barrier.wait();
                    // Same workload, different engine options: distinct
                    // cache keys (no single-flight merge), one shared
                    // packed-matrix build.
                    let path = format!("/v1/plan?m=32&q=7&strategy=best-cost&max_rounds={rounds}");
                    client::post(addr, &path, "application/octet-stream", &body)
                        .expect("post plan")
                        .status
                }));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for status in results {
            assert_eq!(status, 200);
        }
        built_rows = stat("xbm.stream_rows") - rows_before;
        batched = stat("serve.batched") - batched_before;
        if built_rows == rows_per_build {
            break;
        }
    }
    assert_eq!(
        built_rows, rows_per_build,
        "expected exactly one packed-matrix build for {CLIENTS} concurrent submissions \
         in at least one of {ATTEMPTS} rounds"
    );
    assert_eq!(
        batched,
        (CLIENTS - 1) as u64,
        "every non-building submission must reuse the shared matrix"
    );
}

#[test]
fn overload_sheds_with_retry_after() {
    let body = encode_xmap(&slow_spec().generate());
    let server = TestServer::start("shed", false, |c| {
        c.with_threads(1)
            .with_workers(1)
            .with_max_inflight(1)
            .with_queue_depth(1)
    });
    const CLIENTS: usize = 6;
    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<_> = thread::scope(|scope| {
        let mut joins = Vec::new();
        for i in 0..CLIENTS {
            let body = body.clone();
            let addr = server.addr;
            let barrier = &barrier;
            joins.push(scope.spawn(move || {
                barrier.wait();
                // Distinct cache keys so single-flight cannot collapse
                // the load before admission control sees it.
                let path = format!("/v1/plan?m=32&q=7&max_rounds={}", 50 + i);
                client::post(addr, &path, "application/octet-stream", &body).expect("post plan")
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed = responses.iter().filter(|r| r.status == 429).count();
    assert_eq!(ok + shed, CLIENTS, "only 200 or 429 expected");
    assert!(ok >= 1, "at least one request must be admitted");
    assert!(
        shed >= 1,
        "a 1-deep daemon under 6 concurrent plans must shed"
    );
    for r in responses.iter().filter(|r| r.status == 429) {
        let retry: u64 = r
            .header("retry-after")
            .expect("429 must carry Retry-After")
            .parse()
            .expect("Retry-After is integral seconds");
        assert!(
            (1..=60).contains(&retry),
            "Retry-After {retry} out of range"
        );
    }
    // The shed counter made it to /metrics.
    let page = client::get(server.addr, "/metrics").expect("scrape metrics");
    let shed_metric: u64 = page
        .body_text()
        .lines()
        .find(|l| l.starts_with("xhc_shed_total "))
        .expect("xhc_shed_total present")
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(shed_metric, shed as u64);
}

#[test]
fn chunked_transfer_encoding_is_rejected_with_501() {
    // Bodies are Content-Length framed only: a chunked request gets an
    // explicit 501 with a diagnostic body — on BOTH front ends — instead
    // of a generic parse failure.
    for blocking in [false, true] {
        let server = TestServer::start("chunked", blocking, |c| c.with_threads(1));
        let wire: &[u8] = b"POST /v1/plan?m=32&q=7 HTTP/1.1\r\n\
            Host: xhc-serve\r\n\
            Transfer-Encoding: chunked\r\n\
            Connection: close\r\n\r\n\
            4\r\nBODY\r\n0\r\n\r\n";
        let response = send_whole(server.addr, wire);
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 501 Not Implemented\r\n"),
            "front end blocking={blocking}: {text}"
        );
        assert!(text.contains("chunked"), "{text}");
        assert!(text.contains("Content-Length"), "{text}");
    }
}

#[test]
fn slow_loris_senders_get_408() {
    for blocking in [false, true] {
        let server = TestServer::start("loris", blocking, |c| {
            c.with_threads(1).with_read_timeout_ms(150)
        });
        // A partial request head, then silence: the daemon must answer
        // 408 instead of holding the connection (and a worker) forever.
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /v1/plan HTTP/1.1\r\nHost: xhc-serve\r\n")
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read 408");
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "front end blocking={blocking}: {text}"
        );
    }
}

#[test]
fn idle_connections_are_closed_silently() {
    let server = TestServer::start("idle", false, |c| {
        c.with_threads(1).with_read_timeout_ms(100)
    });
    // A connection that never sends a byte is not a slow loris — it is
    // just idle keep-alive, and is closed without a response.
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read EOF");
    assert!(response.is_empty(), "idle close must not send bytes");
}

#[test]
fn keep_alive_client_reuses_and_recovers() {
    let event = TestServer::start("client-ev", false, |c| c.with_threads(1));
    let mut c = client::Client::new(event.addr);
    assert!(!c.is_connected());
    let first = c.get("/healthz").expect("first get");
    assert_eq!(first.status, 200);
    assert!(c.is_connected(), "keep-alive connection must be cached");
    let second = c.get("/metrics").expect("second get");
    assert_eq!(second.status, 200);
    assert!(c.is_connected());
    // POST over the same connection works too.
    let body = encode_xmap(&test_spec().generate());
    let planned = c
        .post("/v1/plan?m=32&q=7", "application/octet-stream", &body)
        .expect("post plan");
    assert_eq!(planned.status, 200, "{}", planned.body_text());

    // Against the blocking front end every response says
    // `Connection: close`; the client must honour it and reconnect.
    let blocking = TestServer::start("client-bl", true, |c| c.with_threads(1));
    let mut c = client::Client::new(blocking.addr);
    let r = c.get("/healthz").expect("blocking get");
    assert_eq!(r.status, 200);
    assert!(
        !c.is_connected(),
        "a Connection: close response must drop the cached stream"
    );
    let r = c.get("/healthz").expect("reconnected get");
    assert_eq!(r.status, 200);
}
