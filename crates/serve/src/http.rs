//! A deliberately small HTTP/1.1 subset on top of `std::net`: enough for
//! the daemon's five routes and its loopback clients, with hard limits on
//! header and body sizes. One request per connection (`Connection:
//! close` semantics) keeps the framing trivial and the worker pool
//! honest.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Upper bound on a request body (a CKT-A scale X map encodes well under
/// this).
pub const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target, without the query.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed off the wire.
#[derive(Debug)]
pub enum ReadRequestError {
    /// The peer closed before sending a complete request.
    Closed,
    /// The request violates the subset this server speaks.
    Bad(String),
    /// A transport error.
    Io(io::Error),
}

impl From<io::Error> for ReadRequestError {
    fn from(e: io::Error) -> Self {
        ReadRequestError::Io(e)
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// Reads one request from the stream.
///
/// # Errors
///
/// [`ReadRequestError::Closed`] on EOF before any byte, `Bad` on
/// malformed or oversized requests, `Io` on transport failures.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadRequestError> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::with_capacity(512);
    // Read until CRLFCRLF without over-reading into the body.
    loop {
        let before = head.len();
        reader.read_until(b'\n', &mut head)?;
        if head.len() == before {
            return if head.is_empty() {
                Err(ReadRequestError::Closed)
            } else {
                Err(ReadRequestError::Bad("truncated header block".into()))
            };
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadRequestError::Bad("header block too large".into()));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        // A bare first CRLF means an empty line before any request line;
        // tolerate nothing and keep reading until the blank line.
    }
    let head_str = String::from_utf8(head)
        .map_err(|_| ReadRequestError::Bad("header block is not UTF-8".into()))?;
    let mut lines = head_str.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| ReadRequestError::Bad("missing request line".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadRequestError::Bad("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadRequestError::Bad("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadRequestError::Bad("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadRequestError::Bad(format!(
            "unsupported protocol {version}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadRequestError::Bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadRequestError::Bad(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadRequestError::Bad(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the framing set (`(name, value)`).
    pub headers: Vec<(&'static str, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a content type and body.
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type", content_type.to_string())],
            body,
        }
    }

    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// Attaches an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Response",
    }
}

/// Writes `response` with `Connection: close` framing and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason_phrase(response.status)
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn exchange(raw: &[u8]) -> Result<Request, ReadRequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = exchange(
            b"POST /v1/plan?m=32&q=7&strategy=best-cost HTTP/1.1\r\n\
              Host: x\r\nContent-Type: application/octet-stream\r\n\
              Content-Length: 4\r\n\r\nBODY",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.query_param("m"), Some("32"));
        assert_eq!(req.query_param("strategy"), Some("best-cost"));
        assert_eq!(req.header("content-type"), Some("application/octet-stream"));
        assert_eq!(req.body, b"BODY");
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(exchange(b""), Err(ReadRequestError::Closed)));
        assert!(matches!(
            exchange(b"NOT A REQUEST\r\n\r\n"),
            Err(ReadRequestError::Bad(_))
        ));
        assert!(matches!(
            exchange(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadRequestError::Bad(_))
        ));
    }
}
