//! A deliberately small HTTP/1.1 subset on top of `std::net`: enough for
//! the daemon's routes and its loopback clients, with hard limits on
//! header and body sizes.
//!
//! Two parsing front ends share one grammar:
//!
//! * [`parse_request`] — incremental, for the nonblocking event loop: it
//!   takes whatever bytes have arrived so far and answers
//!   [`ParseStatus::Partial`] (keep reading) or
//!   [`ParseStatus::Complete`] with how many bytes the request consumed,
//!   which is what makes fragmented *and* pipelined requests work.
//! * [`read_request`] — blocking, for the thread-per-connection fallback
//!   server and tests.
//!
//! Responses render through [`render_response`], which the event loop
//! uses with keep-alive framing and [`write_response`] uses with
//! `Connection: close` framing; the bytes are otherwise identical, so
//! the two server front ends stay byte-comparable.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all headers.
pub(crate) const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Upper bound on a request body (a CKT-A scale X map encodes well under
/// this).
pub const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target, without the query.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client wants the connection kept open after the
    /// response. HTTP/1.1 default is yes; an explicit
    /// `Connection: close` opts out.
    pub fn wants_keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed off the wire.
#[derive(Debug)]
pub enum ReadRequestError {
    /// The peer closed before sending a complete request.
    Closed,
    /// The request violates the subset this server speaks; carries the
    /// status and body the server should answer with before closing.
    Bad(ParseError),
    /// A transport error.
    Io(io::Error),
}

impl From<io::Error> for ReadRequestError {
    fn from(e: io::Error) -> Self {
        ReadRequestError::Io(e)
    }
}

/// A parse-time rejection: the bytes can never become a request this
/// server executes, and `status`/`message` are what it answers with.
/// Malformed framing is `400`; syntactically-valid HTTP that uses a
/// feature outside the spoken subset (chunked transfer coding) is `501`.
#[derive(Debug)]
pub struct ParseError {
    /// HTTP status of the rejection response.
    pub status: u16,
    /// Human-readable diagnostic, used as the response body.
    pub message: String,
}

impl From<String> for ParseError {
    fn from(message: String) -> Self {
        ParseError {
            status: 400,
            message,
        }
    }
}

impl From<&str> for ParseError {
    fn from(message: &str) -> Self {
        ParseError::from(message.to_string())
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Both front ends frame bodies by `Content-Length` only. A request
/// declaring a transfer coding would be silently mis-framed if treated
/// as malformed, so it gets an explicit `501 Not Implemented` telling
/// the client what to do instead.
fn reject_transfer_encoding(headers: &[(String, String)]) -> Result<(), ParseError> {
    let Some((_, value)) = headers.iter().find(|(n, _)| n == "transfer-encoding") else {
        return Ok(());
    };
    Err(ParseError {
        status: 501,
        message: format!(
            "Transfer-Encoding: {value} is not supported; \
             send a Content-Length framed body"
        ),
    })
}

/// What [`parse_request`] concluded from the bytes seen so far.
#[derive(Debug)]
pub enum ParseStatus {
    /// No complete request yet; read more and call again.
    Partial,
    /// One complete request, which occupied the first `consumed` bytes
    /// of the buffer. Anything after `consumed` is the start of the
    /// next pipelined request.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed (head + body).
        consumed: usize,
    },
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// Parses a complete header block (request line + headers, without the
/// trailing blank line's framing requirements) into request parts.
#[allow(clippy::type_complexity)]
fn parse_head(
    head: &[u8],
) -> Result<(String, String, Vec<(String, String)>, Vec<(String, String)>), String> {
    let head_str =
        std::str::from_utf8(head).map_err(|_| "header block is not UTF-8".to_string())?;
    let mut lines = head_str.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| "missing request line".to_string())?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "missing method".to_string())?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| "missing request target".to_string())?;
    let version = parts
        .next()
        .ok_or_else(|| "missing HTTP version".to_string())?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method, path, query, headers))
}

fn content_length(headers: &[(String, String)]) -> Result<usize, String> {
    let Some((_, v)) = headers.iter().find(|(n, _)| n == "content-length") else {
        return Ok(0);
    };
    let n: usize = v.parse().map_err(|_| format!("bad content-length `{v}`"))?;
    if n > MAX_BODY_BYTES {
        return Err(format!(
            "body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ));
    }
    Ok(n)
}

/// Finds the end of the header block (index one past the blank line), if
/// the buffer contains one. Accepts both CRLFCRLF and bare LFLF framing,
/// like the blocking reader.
fn head_end(buf: &[u8]) -> Option<usize> {
    // A valid head ends within MAX_HEAD_BYTES, so never scan past it —
    // re-parses of a connection buffering a large body stay cheap.
    let buf = &buf[..buf.len().min(MAX_HEAD_BYTES + 4)];
    // The earliest terminator wins, whichever framing it uses.
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Incrementally parses one request from the bytes received so far.
///
/// Never blocks and never consumes: the caller drains `consumed` bytes
/// from its buffer after a [`ParseStatus::Complete`], leaving any
/// pipelined follow-up request in place for the next call.
///
/// # Errors
///
/// A [`ParseError`] when the bytes can never become a request this
/// server executes — malformed framing, oversized head or body (status
/// 400), or chunked transfer coding (status 501) — the caller should
/// answer with its status and close.
pub fn parse_request(buf: &[u8]) -> Result<ParseStatus, ParseError> {
    let Some(head_end) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err("header block too large".into());
        }
        return Ok(ParseStatus::Partial);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err("header block too large".into());
    }
    let (method, path, query, headers) = parse_head(&buf[..head_end]).map_err(ParseError::from)?;
    reject_transfer_encoding(&headers)?;
    let body_len = content_length(&headers).map_err(ParseError::from)?;
    let consumed = head_end + body_len;
    if buf.len() < consumed {
        return Ok(ParseStatus::Partial);
    }
    Ok(ParseStatus::Complete {
        request: Request {
            method,
            path,
            query,
            headers,
            body: buf[head_end..consumed].to_vec(),
        },
        consumed,
    })
}

/// Reads one request from the stream, blocking until it is complete.
///
/// # Errors
///
/// [`ReadRequestError::Closed`] on EOF before any byte, `Bad` on
/// malformed or oversized requests, `Io` on transport failures
/// (including read timeouts, which the fallback server maps to 408).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadRequestError> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::with_capacity(512);
    // Read until CRLFCRLF without over-reading into the body.
    loop {
        let before = head.len();
        reader.read_until(b'\n', &mut head)?;
        if head.len() == before {
            return if head.is_empty() {
                Err(ReadRequestError::Closed)
            } else {
                Err(ReadRequestError::Bad("truncated header block".into()))
            };
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadRequestError::Bad("header block too large".into()));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let (method, path, query, headers) =
        parse_head(&head).map_err(|e| ReadRequestError::Bad(ParseError::from(e)))?;
    reject_transfer_encoding(&headers).map_err(ReadRequestError::Bad)?;
    let body_len =
        content_length(&headers).map_err(|e| ReadRequestError::Bad(ParseError::from(e)))?;
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the framing set (`(name, value)`).
    pub headers: Vec<(&'static str, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a content type and body.
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type", content_type.to_string())],
            body,
        }
    }

    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// Attaches an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serializes a response to wire bytes. `keep_alive` only switches the
/// `Connection` header; every other byte is identical between the event
/// loop and the blocking server, which is what the fragmented-request
/// tests compare.
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason_phrase(response.status)
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut out = head.into_bytes();
    out.extend_from_slice(&response.body);
    out
}

/// Writes `response` with `Connection: close` framing and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    stream.write_all(&render_response(response, false))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn exchange(raw: &[u8]) -> Result<Request, ReadRequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = exchange(
            b"POST /v1/plan?m=32&q=7&strategy=best-cost HTTP/1.1\r\n\
              Host: x\r\nContent-Type: application/octet-stream\r\n\
              Content-Length: 4\r\n\r\nBODY",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.query_param("m"), Some("32"));
        assert_eq!(req.query_param("strategy"), Some("best-cost"));
        assert_eq!(req.header("content-type"), Some("application/octet-stream"));
        assert_eq!(req.body, b"BODY");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(exchange(b""), Err(ReadRequestError::Closed)));
        assert!(matches!(
            exchange(b"NOT A REQUEST\r\n\r\n"),
            Err(ReadRequestError::Bad(_))
        ));
        assert!(matches!(
            exchange(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadRequestError::Bad(_))
        ));
    }

    #[test]
    fn incremental_parse_grows_byte_by_byte() {
        let raw: &[u8] = b"POST /v1/plan?m=8 HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODYnext";
        // Every strict prefix short of head+body is Partial; the full
        // buffer parses and reports the pipelined tail via `consumed`.
        let complete_at = raw.len() - 4; // "next" belongs to the next request
        for cut in 0..complete_at {
            match parse_request(&raw[..cut]).unwrap() {
                ParseStatus::Partial => {}
                ParseStatus::Complete { .. } => panic!("complete at {cut} bytes"),
            }
        }
        match parse_request(raw).unwrap() {
            ParseStatus::Complete { request, consumed } => {
                assert_eq!(consumed, complete_at);
                assert_eq!(request.body, b"BODY");
                assert_eq!(request.query_param("m"), Some("8"));
            }
            ParseStatus::Partial => panic!("full request not recognised"),
        }
    }

    #[test]
    fn incremental_parse_rejects_bad_requests() {
        assert!(parse_request(b"NOT A REQUEST\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/9.9\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n").is_err());
        let oversized = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(parse_request(&oversized).is_err());
    }

    #[test]
    fn chunked_transfer_encoding_answers_501_on_both_parsers() {
        let raw: &[u8] = b"POST /v1/plan HTTP/1.1\r\n\
              Transfer-Encoding: chunked\r\n\r\n\
              4\r\nBODY\r\n0\r\n\r\n";
        // Incremental parser: a typed 501, not a generic parse failure.
        let err = parse_request(raw).unwrap_err();
        assert_eq!(err.status, 501);
        assert!(err.message.contains("chunked"), "{}", err.message);
        assert!(err.message.contains("Content-Length"), "{}", err.message);
        // Blocking parser: the same rejection.
        match exchange(raw) {
            Err(ReadRequestError::Bad(e)) => {
                assert_eq!(e.status, 501);
                assert!(e.message.contains("chunked"), "{}", e.message);
            }
            other => panic!("expected Bad(501), got {other:?}"),
        }
        // Malformed framing stays 400.
        let err = parse_request(b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(reason_phrase(501), "Not Implemented");
    }

    #[test]
    fn connection_close_header_is_honoured() {
        let req = match parse_request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap() {
            ParseStatus::Complete { request, .. } => request,
            ParseStatus::Partial => panic!("complete request expected"),
        };
        assert!(!req.wants_keep_alive());
        let req = match parse_request(b"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").unwrap()
        {
            ParseStatus::Complete { request, .. } => request,
            ParseStatus::Partial => panic!("complete request expected"),
        };
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn render_keep_alive_differs_only_in_connection_header() {
        let resp = Response::text(200, "ok\n").with_header("X-Test", "1".to_string());
        let close = String::from_utf8(render_response(&resp, false)).unwrap();
        let keep = String::from_utf8(render_response(&resp, true)).unwrap();
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
        assert!(close.contains("Content-Length: 3\r\n"));
    }
}
