//! The nonblocking front end: one event-loop thread multiplexing every
//! connection over an [`xhc_aio::Poller`], with the worker pool behind a
//! bounded job queue.
//!
//! Per-connection life cycle:
//!
//! 1. **Accept** — nonblocking accept drains the listener backlog; each
//!    connection gets a slot, a generation (so recycled slots never see
//!    a stale completion or deadline), and a read deadline on the timer
//!    wheel.
//! 2. **Read** — whenever the poller reports readable, the loop drains
//!    the socket into the connection buffer and feeds the incremental
//!    parser. Fragmented requests accumulate across ticks; the read
//!    deadline is armed at request start and *not* extended per byte,
//!    which is the slow-loris defence (expiry answers 408).
//! 3. **Dispatch** — a complete request passes admission control (job
//!    counter + bounded queue; rejection answers 429 with a
//!    `Retry-After` computed from the queue-wait histogram) and is
//!    pushed to the worker pool. While a request is in flight the loop
//!    keeps reading but does not parse — pipelined requests wait their
//!    turn, which also guarantees responses leave in request order.
//! 4. **Write** — workers push rendered response bytes through the
//!    completion list and wake the loop; the loop writes as much as the
//!    socket accepts, arms a write deadline for the rest, and on
//!    completion either closes (`Connection: close`) or re-arms the
//!    read deadline and parses the next pipelined request.
//! 5. **Drain** — shutdown stops accepting, closes idle connections,
//!    lets in-flight responses finish (bounded by a drain deadline),
//!    then closes the queue so workers exit.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xhc_aio::{timer::TimerWheel, Events, Interest, Poller, Token};

use crate::http::{self, ParseStatus, Response};
use crate::{retry_after_secs, Completion, Job, ServerState};

/// The listener's poller token; connection slots start right after.
const LISTENER: Token = Token(0);
const CONN_BASE: usize = 1;

/// Readiness events drained per poll.
const EVENT_BATCH: usize = 256;

/// Slot indices are packed into the low bits of timer keys.
const SLOT_BITS: u32 = 20;
const MAX_SLOTS: usize = 1 << SLOT_BITS;

/// How long a response may sit partially written before the connection
/// is declared stalled and closed.
const WRITE_TIMEOUT_MS: u64 = 30_000;

/// How long shutdown waits for in-flight responses before hard-closing.
const DRAIN_MS: u64 = 5_000;

/// Hard cap on bytes buffered from one connection (head + body + a
/// pipelined follow-up head).
const MAX_CONN_BUF: usize = http::MAX_BODY_BYTES + 2 * http::MAX_HEAD_BYTES;

fn timer_key(slot: usize, generation: u64) -> u64 {
    (generation << SLOT_BITS) | slot as u64
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum ConnState {
    /// Between requests: bytes are parsed as they arrive.
    AwaitingRequest,
    /// A request is with the worker pool; reads continue, parsing waits.
    Processing,
}

struct Conn {
    stream: TcpStream,
    generation: u64,
    state: ConnState,
    buf_in: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    /// Currently registered poller interest (to skip no-op reregisters).
    interest: Interest,
    read_deadline: Option<u64>,
    write_deadline: Option<u64>,
    /// Deadline of the earliest pending wheel entry for this conn
    /// (`u64::MAX` = none); later entries are only added when an
    /// earlier deadline appears.
    timer_at: u64,
    close_after_write: bool,
    read_closed: bool,
}

impl Conn {
    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

pub(crate) fn run_event_loop(listener: TcpListener, state: Arc<ServerState>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    let waker = poller.waker();
    *state.waker.lock().unwrap_or_else(|p| p.into_inner()) = Some(waker.clone());
    poller.register(&listener, LISTENER, Interest::READABLE)?;
    let workers = crate::spawn_workers(&state, &waker);

    let mut lp = EventLoop {
        state: Arc::clone(&state),
        poller,
        conns: Vec::new(),
        free: Vec::new(),
        wheel: TimerWheel::new(0),
        epoch: Instant::now(),
        next_generation: 1,
        draining: false,
        drain_deadline: 0,
    };
    let mut events = Events::with_capacity(EVENT_BATCH);
    let result = lp.run(&listener, &mut events);

    // Stop the workers: close the queue, let them drain, join.
    state.jobs_queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    *state.waker.lock().unwrap_or_else(|p| p.into_inner()) = None;
    result
}

struct EventLoop {
    state: Arc<ServerState>,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    wheel: TimerWheel,
    epoch: Instant,
    next_generation: u64,
    draining: bool,
    drain_deadline: u64,
}

impl EventLoop {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn run(&mut self, listener: &TcpListener, events: &mut Events) -> io::Result<()> {
        loop {
            let timeout = self.poll_timeout(self.now_ms());
            self.poller.wait(events, timeout)?;
            let now = self.now_ms();
            if !self.draining && self.state.shutdown.load(Ordering::SeqCst) {
                self.begin_drain(listener, now);
            }
            for event in events.iter() {
                if event.token() == LISTENER {
                    if !self.draining {
                        self.accept_all(listener, now);
                    }
                } else {
                    let slot = event.token().0 - CONN_BASE;
                    if event.readable() {
                        self.handle_readable(slot, now);
                    }
                    if event.writable() {
                        self.flush_out(slot, now);
                    }
                }
            }
            self.drain_completions(now);
            for key in self.wheel.expire(now) {
                self.handle_deadline(key, now);
            }
            if self.draining {
                let live = self.conns.iter().filter(|c| c.is_some()).count();
                if live == 0 || now >= self.drain_deadline {
                    return Ok(());
                }
            }
        }
    }

    fn poll_timeout(&self, now: u64) -> Option<Duration> {
        let mut next = self.wheel.next_deadline();
        if self.draining {
            next = Some(next.map_or(self.drain_deadline, |d| d.min(self.drain_deadline)));
        }
        next.map(|deadline| Duration::from_millis(deadline.saturating_sub(now).max(1)))
    }

    fn begin_drain(&mut self, listener: &TcpListener, now: u64) {
        self.draining = true;
        self.drain_deadline = now + DRAIN_MS;
        let _ = self.poller.deregister(listener, LISTENER);
        // Idle connections close now; in-flight requests and queued
        // responses get the drain window to finish.
        for slot in 0..self.conns.len() {
            let close_now = match &self.conns[slot] {
                Some(conn) => conn.state == ConnState::AwaitingRequest && !conn.has_output(),
                None => false,
            };
            if close_now {
                self.close_conn(slot);
            }
        }
    }

    fn accept_all(&mut self, listener: &TcpListener, now: u64) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.install(stream, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn install(&mut self, stream: TcpStream, now: u64) {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None if self.conns.len() < MAX_SLOTS => {
                self.conns.push(None);
                self.conns.len() - 1
            }
            // Slot space exhausted: shed the connection outright.
            None => return,
        };
        let generation = self.next_generation;
        self.next_generation += 1;
        let read_deadline = now + self.state.config.read_timeout_ms;
        if self
            .poller
            .register(&stream, Token(slot + CONN_BASE), Interest::READABLE)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.wheel
            .insert(read_deadline, timer_key(slot, generation));
        self.conns[slot] = Some(Conn {
            stream,
            generation,
            state: ConnState::AwaitingRequest,
            buf_in: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            interest: Interest::READABLE,
            read_deadline: Some(read_deadline),
            write_deadline: None,
            timer_at: read_deadline,
            close_after_write: false,
            read_closed: false,
        });
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self
                .poller
                .deregister(&conn.stream, Token(slot + CONN_BASE));
            self.free.push(slot);
            // Stale wheel entries for this conn fire harmlessly: the
            // generation check in handle_deadline ignores them.
        }
    }

    /// Drains the socket into the connection buffer, then advances the
    /// parse/dispatch state machine.
    fn handle_readable(&mut self, slot: usize, now: u64) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut fatal = false;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.buf_in.extend_from_slice(&buf[..n]);
                    if conn.buf_in.len() > MAX_CONN_BUF {
                        fatal = true;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            self.close_conn(slot);
            return;
        }
        self.advance(slot, now);
    }

    /// Parses and dispatches as many buffered requests as the
    /// serialization rule allows, then flushes queued output.
    fn advance(&mut self, slot: usize, now: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.state != ConnState::AwaitingRequest || conn.close_after_write {
                break;
            }
            match http::parse_request(&conn.buf_in) {
                Err(e) => {
                    // 400 for malformed bytes, 501 for valid HTTP using
                    // an unsupported feature (chunked transfer coding).
                    self.respond_inline(slot, Response::text(e.status, format!("{e}\n")), true);
                    break;
                }
                Ok(ParseStatus::Partial) => {
                    if conn.read_closed {
                        // EOF between requests (clean) or mid-request
                        // (nothing useful to answer): close either way
                        // once pending output is flushed.
                        if conn.has_output() {
                            conn.close_after_write = true;
                        } else {
                            self.close_conn(slot);
                            return;
                        }
                    }
                    break;
                }
                Ok(ParseStatus::Complete { request, consumed }) => {
                    conn.buf_in.drain(..consumed);
                    let keep_alive = request.wants_keep_alive();
                    if self.draining {
                        let metrics = &self.state.metrics;
                        metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                        self.respond_inline(
                            slot,
                            Response::text(503, "draining for shutdown\n"),
                            true,
                        );
                        break;
                    }
                    if self.try_dispatch(slot, request, keep_alive) {
                        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                            return;
                        };
                        conn.state = ConnState::Processing;
                        // No read deadline while the request computes;
                        // pipelined bytes just sit in the buffer.
                        conn.read_deadline = None;
                        break;
                    }
                    // Shed: answer 429 inline with backoff advice and
                    // keep parsing pipelined requests (each gets its
                    // own verdict).
                    let metrics = &self.state.metrics;
                    metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                    metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    xhc_trace::stat_add("serve.shed", 1);
                    let retry = retry_after_secs(&self.state);
                    self.respond_inline(
                        slot,
                        Response::text(429, "overloaded, retry later\n")
                            .with_header("Retry-After", retry.to_string()),
                        !keep_alive,
                    );
                }
            }
        }
        self.flush_out(slot, now);
    }

    /// Admission control: a job-count ceiling plus the bounded queue.
    /// Returns whether the request was accepted.
    fn try_dispatch(&mut self, slot: usize, request: http::Request, keep_alive: bool) -> bool {
        let state = &self.state;
        let max = state.config.max_inflight as u64;
        if state.inflight_jobs.load(Ordering::Relaxed) >= max {
            return false;
        }
        let generation = match self.conns.get(slot).and_then(Option::as_ref) {
            Some(conn) => conn.generation,
            None => return false,
        };
        let job = Job {
            slot,
            generation,
            request,
            keep_alive,
            queued_at: Instant::now(),
        };
        match state.jobs_queue.try_push(job) {
            Ok(()) => {
                state.inflight_jobs.fetch_add(1, Ordering::Relaxed);
                state.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Queues an event-loop-generated response (400/408/429/501/503). The
    /// worker-path metrics equivalents live in `process_request`; inline
    /// responders count their own statuses.
    fn respond_inline(&mut self, slot: usize, response: Response, close: bool) {
        self.state.metrics.count_status(response.status);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let keep_alive = !close && !conn.read_closed;
        conn.out
            .extend_from_slice(&http::render_response(&response, keep_alive));
        conn.close_after_write |= !keep_alive;
    }

    /// Applies one worker completion: append the rendered bytes, restore
    /// the connection to parsing, and let pipelined requests proceed.
    fn handle_completion(&mut self, completion: Completion, now: u64) {
        let Completion {
            slot,
            generation,
            bytes,
            close,
        } = completion;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.generation != generation {
            return; // the slot was recycled; the requester is long gone
        }
        conn.out.extend_from_slice(&bytes);
        conn.state = ConnState::AwaitingRequest;
        if close {
            conn.close_after_write = true;
        } else {
            let deadline = now + self.state.config.read_timeout_ms;
            conn.read_deadline = Some(deadline);
            self.arm_timer(slot, deadline);
        }
        self.advance(slot, now);
    }

    fn drain_completions(&mut self, now: u64) {
        let completions = {
            let mut pending = self
                .state
                .completions
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *pending)
        };
        for completion in completions {
            self.handle_completion(completion, now);
        }
    }

    /// Writes queued output until the socket pushes back, maintaining
    /// the write deadline and the poller's writable interest.
    fn flush_out(&mut self, slot: usize, now: u64) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut fatal = false;
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    fatal = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            self.close_conn(slot);
            return;
        }
        if conn.has_output() {
            if conn.write_deadline.is_none() {
                let deadline = now + WRITE_TIMEOUT_MS;
                conn.write_deadline = Some(deadline);
                self.arm_timer(slot, deadline);
            }
        } else {
            conn.out.clear();
            conn.out_pos = 0;
            conn.write_deadline = None;
            if conn.close_after_write {
                self.close_conn(slot);
                return;
            }
        }
        self.update_interest(slot);
    }

    /// Keeps the poller's interest in sync: always readable, writable
    /// only while output is pending (level-triggered writable interest
    /// on an idle socket would busy-loop).
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let desired = if conn.has_output() {
            Interest::BOTH
        } else {
            Interest::READABLE
        };
        if desired != conn.interest
            && self
                .poller
                .reregister(&conn.stream, Token(slot + CONN_BASE), desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Ensures a wheel entry exists no later than `deadline`.
    fn arm_timer(&mut self, slot: usize, deadline: u64) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if deadline < conn.timer_at {
            self.wheel
                .insert(deadline, timer_key(slot, conn.generation));
            conn.timer_at = deadline;
        }
    }

    /// A wheel entry fired: check the connection's actual deadlines
    /// (entries are lazily cancelled — a stale generation or an armed-
    /// then-cleared deadline is simply ignored) and re-arm as needed.
    fn handle_deadline(&mut self, key: u64, now: u64) {
        let slot = (key & (MAX_SLOTS as u64 - 1)) as usize;
        let generation = key >> SLOT_BITS;
        let mut timed_out = false;
        let mut hard_close = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.generation & ((1 << (64 - SLOT_BITS)) - 1) != generation {
                return;
            }
            conn.timer_at = u64::MAX;
            if let Some(deadline) = conn.read_deadline {
                if now >= deadline && conn.state == ConnState::AwaitingRequest {
                    conn.read_deadline = None;
                    if conn.buf_in.is_empty() && !conn.has_output() {
                        // Idle keep-alive connection: close quietly.
                        hard_close = true;
                    } else {
                        // Mid-request stall: the slow-loris answer.
                        timed_out = true;
                    }
                }
            }
            if let Some(deadline) = conn.write_deadline {
                if now >= deadline && conn.has_output() {
                    hard_close = true;
                }
            }
        }
        if hard_close {
            self.close_conn(slot);
            return;
        }
        if timed_out {
            self.state
                .metrics
                .timeouts_total
                .fetch_add(1, Ordering::Relaxed);
            xhc_trace::stat_add("serve.timeouts", 1);
            self.respond_inline(
                slot,
                Response::text(408, "request timed out waiting for bytes\n"),
                true,
            );
            self.flush_out(slot, now);
            return;
        }
        // Still-armed future deadlines need a fresh wheel entry.
        let next = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            match (conn.read_deadline, conn.write_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        if let Some(deadline) = next {
            self.arm_timer(slot, deadline.max(now + 1));
        }
    }
}
