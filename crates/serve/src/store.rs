//! The content-addressed on-disk plan store.
//!
//! One file per artifact, named by the request's [cache key] rendered as
//! 16 hex characters plus an extension: `.plan` for the plan itself, and
//! sibling `.cert` / `.xmap` files carrying the plan certificate and the
//! canonical X map so `GET /v1/plan/{hash}/verify` can re-check a cached
//! plan without re-planning. Writes go through a temporary file in the
//! same directory followed by a rename, so concurrent readers never
//! observe a half-written artifact and two writers racing on the same
//! key both leave a complete file behind.
//!
//! [cache key]: xhc_wire::plan_request_hash

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use xhc_wire::hash_hex;

/// A directory of wire-encoded partition plans keyed by request hash.
#[derive(Debug)]
pub struct PlanStore {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl PlanStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn open(dir: &Path) -> io::Result<PlanStore> {
        fs::create_dir_all(dir)?;
        Ok(PlanStore {
            dir: dir.to_path_buf(),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a given key is (or would be) stored at.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.path_for_ext(key, "plan")
    }

    /// The path of a sibling artifact (`cert`, `xmap`, ...) for `key`.
    pub fn path_for_ext(&self, key: u64, ext: &str) -> PathBuf {
        self.dir.join(format!("{}.{ext}", hash_hex(key)))
    }

    /// Loads the plan stored under `key`, if any.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than "not found".
    pub fn load(&self, key: u64) -> io::Result<Option<Vec<u8>>> {
        self.load_ext(key, "plan")
    }

    /// Loads the sibling artifact with extension `ext` for `key`, if any.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than "not found".
    pub fn load_ext(&self, key: u64, ext: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.path_for_ext(key, ext)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Atomically stores `bytes` under `key` (write to a unique temp file
    /// in the store directory, then rename over the final name).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write or rename failure.
    pub fn save(&self, key: u64, bytes: &[u8]) -> io::Result<()> {
        self.save_ext(key, "plan", bytes)
    }

    /// Atomically stores a sibling artifact with extension `ext`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write or rename failure.
    pub fn save_ext(&self, key: u64, ext: &str, bytes: &[u8]) -> io::Result<()> {
        let unique = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".{}.{}.{unique}.tmp",
            hash_hex(key),
            std::process::id()
        ));
        fs::write(&tmp, bytes)?;
        match fs::rename(&tmp, self.path_for_ext(key, ext)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Number of plans currently stored (counts `.plan` files).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "plan") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the store holds no plans.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xhc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let store = PlanStore::open(&dir).unwrap();
        assert!(store.is_empty().unwrap());
        assert_eq!(store.load(7).unwrap(), None);
        store.save(7, b"plan bytes").unwrap();
        assert_eq!(store.load(7).unwrap().as_deref(), Some(&b"plan bytes"[..]));
        assert_eq!(store.len().unwrap(), 1);
        // Overwrite is idempotent and leaves no temp files behind.
        store.save(7, b"plan bytes").unwrap();
        assert_eq!(store.len().unwrap(), 1);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sibling_artifacts_live_beside_the_plan() {
        let dir = temp_dir("siblings");
        let store = PlanStore::open(&dir).unwrap();
        store.save(3, b"plan").unwrap();
        store.save_ext(3, "cert", b"cert").unwrap();
        store.save_ext(3, "xmap", b"xmap").unwrap();
        assert_eq!(
            store.load_ext(3, "cert").unwrap().as_deref(),
            Some(&b"cert"[..])
        );
        assert_eq!(
            store.load_ext(3, "xmap").unwrap().as_deref(),
            Some(&b"xmap"[..])
        );
        assert_eq!(store.load_ext(4, "cert").unwrap(), None);
        // Only `.plan` files count toward the store size.
        assert_eq!(store.len().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_map_to_distinct_hex_names() {
        let dir = temp_dir("names");
        let store = PlanStore::open(&dir).unwrap();
        let p1 = store.path_for(0x0123_4567_89ab_cdef);
        assert!(p1.ends_with("0123456789abcdef.plan"));
        assert_ne!(p1, store.path_for(1));
        fs::remove_dir_all(&dir).unwrap();
    }
}
