//! `xhc-serve`: the planning daemon.
//!
//! A std-only HTTP/1.1 service that turns X maps (or workload specs)
//! into partition plans, caches every plan in a content-addressed
//! on-disk store keyed by [`xhc_wire::plan_request_hash`], and exposes
//! plaintext metrics. Zero external dependencies: an `xhc-aio` event
//! loop over `std::net` sockets, a fixed worker pool, and the
//! workspace's own crates for everything else.
//!
//! # Front end
//!
//! [`Server::run`] drives a single event-loop thread (epoll on Linux, a
//! portable polling fallback elsewhere) that owns every connection:
//! nonblocking accept, incremental request parsing with HTTP/1.1
//! keep-alive and pipelining, per-connection read/write deadlines on a
//! timer wheel (a stalled request answers `408`), and graceful drain on
//! shutdown (in-flight requests finish, new ones answer `503`).
//! Complete requests pass admission control — a bounded job queue plus
//! an in-flight ceiling — and are executed by the worker pool; an
//! overloaded daemon sheds with `429` and a `Retry-After` derived from
//! the observed queue-wait p95 instead of queueing without bound.
//! [`Server::run_blocking`] keeps the original thread-per-request
//! front end (one blocking read with [`ServerConfig::read_timeout_ms`]
//! as the socket timeout, `Connection: close` semantics) behind the
//! same routing and planning stack.
//!
//! Concurrent submissions that share a workload but differ in engine
//! options additionally share one packed bit-matrix build (the
//! dominant setup cost of a `best-cost` plan): the first arrival packs,
//! the rest reuse the same in-memory matrix, observable as
//! `xhc_batched_total` on `/metrics` and the `serve.batched` trace
//! counter. With [`ServerConfig::with_push_metrics`] the daemon also
//! pushes its counters as Influx line protocol to an HTTP collector on
//! an interval (`XHC_PUSH_INTERVAL_MS`, default 2000).
//!
//! # Routes
//!
//! | Route | Method | Behaviour |
//! |-------|--------|-----------|
//! | `/v1/plan?m=&q=&strategy=&policy=&seed=&max_rounds=&cost_stop=&backend=&mode=&trace=` | POST | Body is a wire-encoded X map, workload spec or plan request, or `xmap v1` text. Lints it, plans it (or serves the cached plan) and returns the wire-encoded plan. `mode=async` returns `202` and a job id instead. A non-hybrid `backend=` answers with that backend's uniform JSON report. |
//! | `/v1/plan/race?...&backends=` | POST | Same body and parameters as `/v1/plan`; fans the submission across the requested backend set (`backends=` comma list, default all) and returns the JSON control-bit/latency table with Pareto-frontier flags. The hybrid leg shares the plan store, single-flight set and matrix pool with `/v1/plan`, so its plan is byte-identical and cached under the same address. |
//! | `/v1/backends` | GET | JSON capability listing of every planning backend. |
//! | `/v1/plan/{hash}` | GET | Fetches a cached plan by its 16-hex content address. |
//! | `/v1/plan/{hash}/verify` | GET | Re-checks the cached plan against its stored certificate and X map with the `xhc-verify` static checker: `200` when clean, `422` with the rendered XL04xx findings otherwise. |
//! | `/v1/jobs/{id}` | GET | Status of an async job. |
//! | `/healthz` | GET | Liveness probe. |
//! | `/metrics` | GET | Plaintext counters and latency histograms. |
//!
//! Every plan response carries `X-Xhc-Plan-Hash` (the cache key) and
//! `X-Xhc-Cache: hit|miss`; a miss additionally carries
//! `X-Xhc-Engine-Ns`, the partition-engine wall time of that cold plan
//! (the cumulative figure is `xhc_plan_engine_seconds` on `/metrics`).
//! Identical concurrent submissions are
//! *single-flighted*: one computes, the rest wait and read the store, so
//! the cache-miss counter increments exactly once per distinct request.
//!
//! A wire-encoded [`xhc_wire::PlanRequest`] body carries its own cancel
//! parameters and [`xhc_core::PlanOptions`], which override the query
//! string (the engine thread count stays server-controlled). Every other
//! body takes its options from the query: `policy` is `first`, `seeded`
//! (with `seed=<u64>`) or `global-max-x`; `max_rounds` caps the round
//! count; `cost_stop=0` disables the cost-based stop; `backend` picks the
//! planning backend by its stable token (default `hybrid`).
//!
//! Bodies are framed by `Content-Length` only: a request declaring
//! `Transfer-Encoding: chunked` (or any other transfer coding) is
//! rejected with an explicit `501 Not Implemented` and a diagnostic body
//! on both front ends, instead of surfacing as a generic parse failure.
//!
//! `trace=1` on a synchronous request records the request under the
//! process-wide [`xhc_trace`] session (first caller wins; concurrent
//! traced requests proceed untraced). The response body is then the plan
//! bytes followed by the chrome://tracing JSON export, with
//! `X-Xhc-Plan-Bytes` giving the byte offset of the boundary; the stored
//! plan bytes are unchanged.
//!
//! Decoded artifacts pass through the `xhc-lint` gate before planning —
//! any `Deny` finding short-circuits into HTTP `422` with the rendered
//! diagnostics, so the engine only ever sees inputs it cannot panic on.
//!
//! Every cold plan is *certified*: the daemon emits a
//! [`xhc_wire::PlanCertificate`] alongside the plan and persists it (plus
//! the canonical X map) as `.cert` / `.xmap` siblings in the store, so
//! the verify route can re-check any cached plan offline. With
//! [`ServerConfig::with_verify_on_write`] the checker additionally runs
//! inline before the plan is stored or returned — a failed check becomes
//! HTTP `500` (it indicates an engine/certifier bug, not a client error)
//! and increments `xhc_verify_failures_total`.
//!
//! # Example
//!
//! ```no_run
//! use std::path::Path;
//! use xhc_serve::{Server, ServerConfig};
//!
//! let config = ServerConfig::new(Path::new("/tmp/plans"));
//! let server = Server::bind("127.0.0.1:0", config).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod event_loop;
mod http;
mod jobs;
mod metrics;
mod push;
mod store;

pub mod client;

pub use batch::MatrixPool;
pub use http::{ParseError, ReadRequestError, Request, Response, MAX_BODY_BYTES};
pub use jobs::{JobRegistry, JobStatus};
pub use metrics::{Histogram, Metrics};
pub use store::PlanStore;

use std::collections::HashSet;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use xhc_aio::queue::JobQueue;
use xhc_aio::Waker;
use xhc_bits::XBitMatrix;

use xhc_core::{
    backend_for, BackendId, CellSelection, HybridBackend, PartitionEngine, PlanOptions,
    SplitStrategy, WorkloadInput,
};
use xhc_lint::{check_cancel_params, check_xmap, LintConfig, LintReport};
use xhc_misr::XCancelConfig;
use xhc_scan::{read_xmap, XMap};
use xhc_wire::{
    decode_plan, decode_plan_request, decode_workload_spec, decode_xmap, encode_plan, encode_xmap,
    hash_hex, parse_hash_hex, peek_kind, plan_request_hash_with_options, Kind, MAGIC,
};

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory of the content-addressed plan store.
    pub store_dir: PathBuf,
    /// Engine threads per plan (`0` = [`xhc_par::max_threads`]).
    pub threads: usize,
    /// HTTP worker threads.
    pub workers: usize,
    /// Run the `xhc-verify` checker on every fresh plan's certificate
    /// before it is stored or returned (off by default: certificates are
    /// always emitted and persisted; this adds the inline check).
    pub verify_on_write: bool,
    /// How long a connection may sit between bytes of a request before
    /// it is timed out (`408`); also the idle keep-alive lifetime.
    pub read_timeout_ms: u64,
    /// Admission ceiling: requests simultaneously queued or executing
    /// before the daemon sheds with `429`.
    pub max_inflight: usize,
    /// Bounded job-queue depth between the event loop and the workers.
    pub queue_depth: usize,
    /// Push-metrics collector (`http://host:port/path`); `None` = off.
    pub push_metrics: Option<String>,
}

impl ServerConfig {
    /// A config with defaults: engine threads from `XHC_THREADS`, four
    /// HTTP workers, 10 s read timeout, 256 in-flight requests over a
    /// 128-deep job queue, no metrics push.
    pub fn new(store_dir: &Path) -> ServerConfig {
        ServerConfig {
            store_dir: store_dir.to_path_buf(),
            threads: 0,
            workers: 4,
            verify_on_write: false,
            read_timeout_ms: 10_000,
            max_inflight: 256,
            queue_depth: 128,
            push_metrics: None,
        }
    }

    /// Overrides the engine thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ServerConfig {
        self.threads = threads;
        self
    }

    /// Overrides the HTTP worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Enables (or disables) verifying every fresh plan's certificate
    /// inline before it is stored.
    #[must_use]
    pub fn with_verify_on_write(mut self, verify_on_write: bool) -> ServerConfig {
        self.verify_on_write = verify_on_write;
        self
    }

    /// Overrides the per-connection read timeout (clamped to ≥ 10 ms so
    /// a handshake always has a chance to land).
    #[must_use]
    pub fn with_read_timeout_ms(mut self, read_timeout_ms: u64) -> ServerConfig {
        self.read_timeout_ms = read_timeout_ms.max(10);
        self
    }

    /// Overrides the admission ceiling (clamped to at least 1).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: usize) -> ServerConfig {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Overrides the job-queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> ServerConfig {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Pushes metrics as Influx line protocol to `url`
    /// (`http://host:port/path`) every `XHC_PUSH_INTERVAL_MS`
    /// milliseconds (default 2000) while the server runs.
    #[must_use]
    pub fn with_push_metrics(mut self, url: impl Into<String>) -> ServerConfig {
        self.push_metrics = Some(url.into());
        self
    }
}

/// The stable wire code of a split strategy (persisted inside cache keys,
/// so the mapping must never change). Delegates to
/// [`xhc_wire::strategy_code`], which owns the pinned table.
pub fn strategy_code(strategy: SplitStrategy) -> u8 {
    xhc_wire::strategy_code(strategy)
}

/// Parses the strategy names the CLI and the query string share.
pub fn parse_strategy(s: &str) -> Option<SplitStrategy> {
    match s {
        "largest" => Some(SplitStrategy::LargestClass),
        "best-cost" => Some(SplitStrategy::BestCost),
        _ => None,
    }
}

/// Parses the cell-selection policy names the CLI and the query string
/// share; `seed` is the stream seed a `seeded` policy binds.
pub fn parse_policy(s: &str, seed: u64) -> Option<CellSelection> {
    match s {
        "first" => Some(CellSelection::First),
        "seeded" => Some(CellSelection::Seeded(seed)),
        "global-max-x" => Some(CellSelection::GlobalMaxX),
        _ => None,
    }
}

/// Parses the backend tokens the CLI and the query string share — the
/// stable [`BackendId::name`] values (`hybrid`, `masking`, `canceling`,
/// `superset`, `xcode`).
pub fn parse_backend(s: &str) -> Option<BackendId> {
    BackendId::parse(s)
}

/// The `expected one of ...` tail of a bad-backend diagnostic.
fn backend_name_list() -> String {
    let names: Vec<&str> = BackendId::ALL.iter().map(|b| b.name()).collect();
    names.join(", ")
}

/// A parsed request travelling from the event loop to the worker pool.
struct Job {
    /// Connection slot in the event loop's table.
    slot: usize,
    /// Slot generation, so a recycled slot never sees a stale response.
    generation: u64,
    request: Request,
    /// Whether the client asked to keep the connection open.
    keep_alive: bool,
    queued_at: Instant,
}

/// Rendered response bytes travelling back from a worker.
struct Completion {
    slot: usize,
    generation: u64,
    bytes: Vec<u8>,
    /// Close the connection after writing (client sent
    /// `Connection: close`).
    close: bool,
}

/// Shared mutable state behind every worker.
struct ServerState {
    config: ServerConfig,
    metrics: Metrics,
    store: PlanStore,
    jobs: JobRegistry,
    inflight: Mutex<HashSet<u64>>,
    inflight_cv: Condvar,
    shutdown: AtomicBool,
    /// Event-loop → worker job queue (bounded: its capacity is the
    /// backpressure signal admission control keys off).
    jobs_queue: JobQueue<Job>,
    /// Worker → event-loop completions, drained after every poll.
    completions: Mutex<Vec<Completion>>,
    /// The event loop's waker, present while [`Server::run`] is live; a
    /// shutdown pokes it so the loop observes the flag immediately.
    waker: Mutex<Option<Waker>>,
    /// Requests currently queued or executing (admission ceiling).
    inflight_jobs: AtomicU64,
    /// Shared packed-matrix builds for concurrent same-workload plans.
    matrix_pool: MatrixPool,
}

/// A handle for observing and stopping a running [`Server`] from another
/// thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the serving loop to stop. Idempotent; returns once the flag
    /// is set. The event loop is woken directly and drains gracefully;
    /// the blocking accept loop is unblocked with a throwaway
    /// connection.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let waker = self
            .state
            .waker
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(waker) = waker {
            waker.wake();
        }
        // Unblock a blocking accept loop with a throwaway connection (a
        // no-op for the event loop, which sheds it during drain).
        let _ = TcpStream::connect(self.addr);
    }
}

/// The planning daemon: a bound listener plus its shared state.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` and opens the plan store.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the bind or the store-open
    /// fails.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let store = PlanStore::open(&config.store_dir)?;
        let jobs_queue = JobQueue::new(config.queue_depth.max(1));
        let state = Arc::new(ServerState {
            config,
            metrics: Metrics::default(),
            store,
            jobs: JobRegistry::default(),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_queue,
            completions: Mutex::new(Vec::new()),
            waker: Mutex::new(None),
            inflight_jobs: AtomicU64::new(0),
            matrix_pool: MatrixPool::default(),
        });
        Ok(Server {
            listener,
            addr,
            state,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the event-loop front end until [`ServerHandle::shutdown`] is
    /// called: one loop thread multiplexes every connection (keep-alive,
    /// pipelining, read/write deadlines, admission control) while the
    /// worker pool plans. Shutdown drains gracefully: in-flight requests
    /// finish, new ones answer `503`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the poller or the listener
    /// fails.
    pub fn run(self) -> io::Result<()> {
        let pusher = push::spawn_exporter(&self.state, self.addr);
        let result = event_loop::run_event_loop(self.listener, Arc::clone(&self.state));
        if let Some(pusher) = pusher {
            let _ = pusher.join();
        }
        result
    }

    /// Runs the original blocking front end: one connection per worker,
    /// one request per connection (`Connection: close`). Kept as the
    /// reference implementation the event loop is tested against, and
    /// as the conservative fallback for unusual platforms.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if `accept` fails.
    pub fn run_blocking(self) -> io::Result<()> {
        let pusher = push::spawn_exporter(&self.state, self.addr);
        let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.state.config.workers);
        for _ in 0..self.state.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(thread::spawn(move || loop {
                let (stream, queued_at) = match rx.lock().expect("worker queue poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => break, // accept loop gone
                };
                state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                state
                    .metrics
                    .queue_wait_ns
                    .record_ns(queued_at.elapsed().as_nanos() as u64);
                handle_connection(&state, stream);
            }));
        }
        for incoming in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = incoming?;
            self.state
                .metrics
                .queue_depth
                .fetch_add(1, Ordering::Relaxed);
            if tx.send((stream, Instant::now())).is_err() {
                break;
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(pusher) = pusher {
            let _ = pusher.join();
        }
        Ok(())
    }
}

/// Spawns the planning workers behind the event loop's job queue. Each
/// worker pops, plans, renders, hands the bytes back through the
/// completion list and pokes the loop; they exit when the queue is
/// closed and drained.
fn spawn_workers(state: &Arc<ServerState>, waker: &Waker) -> Vec<thread::JoinHandle<()>> {
    let mut workers = Vec::with_capacity(state.config.workers.max(1));
    for _ in 0..state.config.workers.max(1) {
        let state = Arc::clone(state);
        let waker = waker.clone();
        workers.push(thread::spawn(move || {
            while let Some(job) = state.jobs_queue.pop() {
                state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                state
                    .metrics
                    .queue_wait_ns
                    .record_ns(job.queued_at.elapsed().as_nanos() as u64);
                let response = process_request(&state, &job.request);
                let close = !job.keep_alive;
                let bytes = http::render_response(&response, !close);
                state.inflight_jobs.fetch_sub(1, Ordering::Relaxed);
                state
                    .completions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(Completion {
                        slot: job.slot,
                        generation: job.generation,
                        bytes,
                        close,
                    });
                waker.wake();
                // Hand this thread's spans to any live trace session so
                // in-process tests and `trace=1` recordings see them.
                xhc_trace::flush_thread();
            }
        }));
    }
    workers
}

/// Routes one parsed request and accounts for it — the front-end-neutral
/// core shared by the event loop's workers and the blocking path.
fn process_request(state: &Arc<ServerState>, request: &Request) -> Response {
    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let response = match route(state, request) {
        Ok(r) => r,
        Err(e) => Response::text(e.status, format!("{}\n", e.message.trim_end())),
    };
    state
        .metrics
        .total_ns
        .record_ns(started.elapsed().as_nanos() as u64);
    state.metrics.count_status(response.status);
    response
}

/// How long a shed client should back off: the observed queue-wait p95
/// times the work currently ahead of it, spread over the workers,
/// clamped to `1..=60` seconds (`Retry-After` on `429`).
fn retry_after_secs(state: &ServerState) -> u64 {
    let p95_ns = state.metrics.queue_wait_ns.quantile_ns(0.95);
    let pending = state.jobs_queue.len() as u64 + 1;
    let workers = state.config.workers.max(1) as u64;
    let estimate_ns = p95_ns.saturating_mul(pending) / workers;
    estimate_ns.div_ceil(1_000_000_000).clamp(1, 60)
}

/// A routing failure carrying the HTTP status it maps to.
struct HandlerError {
    status: u16,
    message: String,
}

impl HandlerError {
    fn new(status: u16, message: impl Into<String>) -> HandlerError {
        HandlerError {
            status,
            message: message.into(),
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    // The blocking front end's slow-loris defence: a socket timeout, so
    // a stalled sender costs one worker at most `read_timeout_ms`.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        state.config.read_timeout_ms.max(10),
    )));
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(http::ReadRequestError::Closed) => return,
        Err(http::ReadRequestError::Bad(e)) => {
            // 400 for malformed bytes, 501 for valid HTTP using an
            // unsupported feature (chunked transfer coding) — the same
            // split the event-loop front end applies.
            state.metrics.count_status(e.status);
            let _ = http::write_response(&mut stream, &Response::text(e.status, format!("{e}\n")));
            return;
        }
        Err(http::ReadRequestError::Io(e))
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            state.metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
            xhc_trace::stat_add("serve.timeouts", 1);
            state.metrics.count_status(408);
            let _ = http::write_response(
                &mut stream,
                &Response::text(408, "request timed out waiting for bytes\n"),
            );
            return;
        }
        Err(http::ReadRequestError::Io(_)) => return,
    };
    let response = process_request(state, &request);
    let _ = http::write_response(&mut stream, &response);
}

fn route(state: &Arc<ServerState>, request: &Request) -> Result<Response, HandlerError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::text(200, "ok\n")),
        ("GET", "/metrics") => Ok(Response::text(200, state.metrics.render())),
        ("POST", "/v1/plan") => plan_endpoint(state, request),
        ("POST", "/v1/plan/race") => race_endpoint(state, request),
        ("GET", "/v1/backends") => Ok(backends_endpoint()),
        // Before the `/v1/plan/` prefix arms: `race` is not a plan hash.
        (_, "/v1/plan/race") | (_, "/v1/backends") => {
            Err(HandlerError::new(405, "method not allowed"))
        }
        ("GET", path) if path.starts_with("/v1/plan/") && path.ends_with("/verify") => {
            verify_endpoint(
                state,
                &path["/v1/plan/".len()..path.len() - "/verify".len()],
            )
        }
        ("GET", path) if path.starts_with("/v1/plan/") => {
            fetch_endpoint(state, &path["/v1/plan/".len()..])
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            jobs_endpoint(state, &path["/v1/jobs/".len()..])
        }
        (_, "/v1/plan") | (_, "/healthz") | (_, "/metrics") => {
            Err(HandlerError::new(405, "method not allowed"))
        }
        _ => Err(HandlerError::new(404, "no such route")),
    }
}

fn fetch_endpoint(state: &ServerState, hex: &str) -> Result<Response, HandlerError> {
    let key = parse_hash_hex(hex)
        .ok_or_else(|| HandlerError::new(400, format!("`{hex}` is not a 16-hex plan hash")))?;
    let bytes = state
        .store
        .load(key)
        .map_err(|e| HandlerError::new(500, format!("store read failed: {e}")))?
        .ok_or_else(|| HandlerError::new(404, format!("no plan stored under {hex}")))?;
    Ok(Response::new(200, "application/octet-stream", bytes)
        .with_header("X-Xhc-Plan-Hash", hash_hex(key)))
}

/// `GET /v1/plan/{hash}/verify`: re-checks a cached plan against its
/// stored certificate and canonical X map. The checker shares no code
/// with the engine, so a clean pass is independent evidence the stored
/// plan is what its certificate claims.
fn verify_endpoint(state: &ServerState, hex: &str) -> Result<Response, HandlerError> {
    let key = parse_hash_hex(hex)
        .ok_or_else(|| HandlerError::new(400, format!("`{hex}` is not a 16-hex plan hash")))?;
    let store_err = |e: io::Error| HandlerError::new(500, format!("store read failed: {e}"));
    let plan_bytes = state
        .store
        .load(key)
        .map_err(store_err)?
        .ok_or_else(|| HandlerError::new(404, format!("no plan stored under {hex}")))?;
    let cert_bytes = state
        .store
        .load_ext(key, "cert")
        .map_err(store_err)?
        .ok_or_else(|| HandlerError::new(404, format!("no certificate stored under {hex}")))?;
    let xmap_bytes = state
        .store
        .load_ext(key, "xmap")
        .map_err(store_err)?
        .ok_or_else(|| HandlerError::new(404, format!("no X map stored under {hex}")))?;
    let started = Instant::now();
    state.metrics.verify_total.fetch_add(1, Ordering::Relaxed);
    let report = xhc_lint::check_certificate_artifacts(
        &LintConfig::default(),
        &cert_bytes,
        &plan_bytes,
        &xmap_bytes,
    )
    .map_err(|e| HandlerError::new(500, format!("stored artifacts are malformed: {e}")))?;
    state
        .metrics
        .verify_ns
        .record_ns(started.elapsed().as_nanos() as u64);
    if report.has_deny() {
        state
            .metrics
            .verify_failures
            .fetch_add(1, Ordering::Relaxed);
        return Err(HandlerError::new(422, report.render_human()));
    }
    Ok(Response::text(
        200,
        "verified: certificate matches plan, X map and cost model\n",
    )
    .with_header("X-Xhc-Plan-Hash", hash_hex(key)))
}

fn jobs_endpoint(state: &ServerState, raw_id: &str) -> Result<Response, HandlerError> {
    let id: u64 = raw_id
        .parse()
        .map_err(|_| HandlerError::new(400, format!("`{raw_id}` is not a job id")))?;
    let status = state
        .jobs
        .get(id)
        .ok_or_else(|| HandlerError::new(404, format!("no job {id}")))?;
    Ok(Response::new(
        200,
        "application/json",
        status.render(id).into_bytes(),
    ))
}

/// The validated parameters of one plan request. `options.threads` is
/// always left at `0` here: the engine thread count belongs to the
/// server, not the client (see [`run_engine`]).
struct PlanParams {
    m: usize,
    q: usize,
    options: PlanOptions,
    asynchronous: bool,
    trace: bool,
}

fn parse_plan_params(request: &Request) -> Result<PlanParams, HandlerError> {
    let parse_num = |name: &str, default: usize| -> Result<usize, HandlerError> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| HandlerError::new(400, format!("`{raw}` is not a valid `{name}`"))),
        }
    };
    let m = parse_num("m", 32)?;
    let q = parse_num("q", 7)?;
    let strategy = match request.query_param("strategy") {
        None => SplitStrategy::LargestClass,
        Some(raw) => parse_strategy(raw).ok_or_else(|| {
            HandlerError::new(
                400,
                format!("`{raw}` is not a strategy (expected `largest` or `best-cost`)"),
            )
        })?,
    };
    let seed = match request.query_param("seed") {
        None => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| HandlerError::new(400, format!("`{raw}` is not a valid `seed`")))?,
        ),
    };
    let policy = match request.query_param("policy") {
        None => CellSelection::First,
        Some(raw) => parse_policy(raw, seed.unwrap_or(0)).ok_or_else(|| {
            HandlerError::new(
                400,
                format!("`{raw}` is not a policy (expected `first`, `seeded` or `global-max-x`)"),
            )
        })?,
    };
    if seed.is_some() && !matches!(policy, CellSelection::Seeded(_)) {
        return Err(HandlerError::new(
            400,
            "`seed` requires `policy=seeded`".to_string(),
        ));
    }
    let max_rounds =
        match request.query_param("max_rounds") {
            None => None,
            Some(raw) => Some(raw.parse::<usize>().map_err(|_| {
                HandlerError::new(400, format!("`{raw}` is not a valid `max_rounds`"))
            })?),
        };
    let cost_stop = match request.query_param("cost_stop") {
        None | Some("1") => true,
        Some("0") => false,
        Some(raw) => {
            return Err(HandlerError::new(
                400,
                format!("`{raw}` is not a valid `cost_stop` (expected `0` or `1`)"),
            ))
        }
    };
    let backend = match request.query_param("backend") {
        None => BackendId::default(),
        Some(raw) => parse_backend(raw).ok_or_else(|| {
            HandlerError::new(
                400,
                format!(
                    "`{raw}` is not a backend (expected one of {})",
                    backend_name_list()
                ),
            )
        })?,
    };
    let asynchronous = match request.query_param("mode") {
        None | Some("sync") => false,
        Some("async") => true,
        Some(raw) => {
            return Err(HandlerError::new(
                400,
                format!("`{raw}` is not a mode (expected `sync` or `async`)"),
            ))
        }
    };
    let trace = match request.query_param("trace") {
        None | Some("0") => false,
        Some("1") => true,
        Some(raw) => {
            return Err(HandlerError::new(
                400,
                format!("`{raw}` is not a valid `trace` (expected `0` or `1`)"),
            ))
        }
    };
    Ok(PlanParams {
        m,
        q,
        options: PlanOptions {
            strategy,
            policy,
            max_rounds,
            cost_stop,
            backend,
            ..PlanOptions::default()
        },
        asynchronous,
        trace,
    })
}

/// Decodes a nested plan-request artifact (already kind-checked by
/// `decode_plan_request` to be an X map or workload spec).
fn decode_nested_artifact(artifact: &[u8]) -> Result<XMap, HandlerError> {
    match peek_kind(artifact) {
        Ok(Kind::XMap) => decode_xmap(artifact)
            .map_err(|e| HandlerError::new(400, format!("bad nested xmap: {e}"))),
        Ok(Kind::WorkloadSpec) => decode_workload_spec(artifact)
            .map(|spec| spec.generate())
            .map_err(|e| HandlerError::new(400, format!("bad nested workload spec: {e}"))),
        Ok(kind) => Err(HandlerError::new(
            400,
            format!("cannot plan from a nested {kind} artifact"),
        )),
        Err(e) => Err(HandlerError::new(400, format!("bad nested artifact: {e}"))),
    }
}

/// Decodes a plan-request body into an X map: wire-encoded X map,
/// wire-encoded workload spec (generated deterministically from its
/// seed), wire-encoded plan request (whose embedded `(m, q)` and engine
/// options overwrite `params`), or `xmap v1` text.
fn decode_request_xmap(
    state: &ServerState,
    body: &[u8],
    params: &mut PlanParams,
) -> Result<XMap, HandlerError> {
    let started = Instant::now();
    let span = xhc_trace::span("serve.decode");
    let result = if body.starts_with(&MAGIC) {
        match peek_kind(body) {
            Ok(Kind::XMap) => decode_xmap(body)
                .map_err(|e| HandlerError::new(400, format!("bad xmap buffer: {e}"))),
            Ok(Kind::WorkloadSpec) => decode_workload_spec(body)
                .map(|spec| spec.generate())
                .map_err(|e| HandlerError::new(400, format!("bad workload-spec buffer: {e}"))),
            Ok(Kind::PlanRequest) => decode_plan_request(body)
                .map_err(|e| HandlerError::new(400, format!("bad plan-request buffer: {e}")))
                .and_then(|req| {
                    params.m = req.m;
                    params.q = req.q;
                    // The thread count stays server-side even when the
                    // request carries one: the outcome is thread-count
                    // invariant, and worker sizing is an operator concern.
                    params.options = PlanOptions {
                        threads: 0,
                        ..req.options
                    };
                    decode_nested_artifact(&req.artifact)
                }),
            Ok(kind) => Err(HandlerError::new(
                400,
                format!("cannot plan from a {kind} artifact"),
            )),
            Err(e) => Err(HandlerError::new(400, format!("bad wire buffer: {e}"))),
        }
    } else {
        read_xmap(body).map_err(|e| HandlerError::new(400, format!("bad xmap text: {e}")))
    };
    drop(span);
    state
        .metrics
        .decode_ns
        .record_ns(started.elapsed().as_nanos() as u64);
    result
}

/// Runs the lint gate; `Deny` findings become HTTP 422 with the rendered
/// diagnostics as the body.
fn lint_gate(state: &ServerState, xmap: &XMap, m: usize, q: usize) -> Result<(), HandlerError> {
    let started = Instant::now();
    let span = xhc_trace::span("serve.lint");
    let lint_config = LintConfig::default();
    let mut report: LintReport = check_xmap(&lint_config, xmap);
    report.merge(check_cancel_params(&lint_config, m, q));
    drop(span);
    state
        .metrics
        .lint_ns
        .record_ns(started.elapsed().as_nanos() as u64);
    if report.has_deny() {
        return Err(HandlerError::new(422, report.render_human()));
    }
    Ok(())
}

fn plan_endpoint(state: &Arc<ServerState>, request: &Request) -> Result<Response, HandlerError> {
    let mut params = parse_plan_params(request)?;
    if request.body.is_empty() {
        return Err(HandlerError::new(400, "empty request body"));
    }
    // Claim the process-wide trace session before decoding so every stage
    // span of this request lands in the recording. Busy (another traced
    // request is in flight) or async mode -> proceed untraced.
    let trace_session = if params.trace && !params.asynchronous {
        xhc_trace::TraceSession::begin()
    } else {
        None
    };
    let xmap = decode_request_xmap(state, &request.body, &mut params)?;
    lint_gate(state, &xmap, params.m, params.q)?;

    let canonical = encode_xmap(&xmap);
    let key = plan_request_hash_with_options(&canonical, params.m, params.q, &params.options);
    // The workload key ignores the engine options: requests that share
    // an X map share one packed-matrix build even when their full cache
    // keys differ.
    let wkey = xhc_wire::content_hash(&canonical);

    // A non-hybrid backend produces accounting, not a storable partition
    // plan: answer with its uniform JSON report, computed in-process.
    if params.options.backend != BackendId::Hybrid {
        if params.asynchronous {
            return Err(HandlerError::new(
                400,
                "`mode=async` supports only the hybrid backend",
            ));
        }
        let cancel = XCancelConfig::new(params.m, params.q);
        let leg = race_leg(
            state,
            params.options.backend,
            &canonical,
            &xmap,
            &params,
            cancel,
            wkey,
            None,
        )?;
        return Ok(Response::new(
            200,
            "application/json",
            format!("{}\n", leg_json(&leg, None)).into_bytes(),
        ));
    }

    if params.asynchronous {
        let id = state.jobs.submit();
        state.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        // The job thread owns its own handle to the shared state.
        let state_ref = Arc::clone(state);
        thread::spawn(move || {
            let outcome = compute_plan(&state_ref, key, wkey, &xmap, &params);
            let status = match outcome {
                Ok((_, engine_ns)) => JobStatus::Done {
                    plan_hash: key,
                    cache_hit: engine_ns.is_none(),
                },
                Err(e) => JobStatus::Failed {
                    status: e.status,
                    message: e.message,
                },
            };
            state_ref.jobs.finish(id, status);
            state_ref
                .metrics
                .jobs_completed
                .fetch_add(1, Ordering::Relaxed);
            // If a concurrent traced request is recording, hand it this
            // thread's spans before the thread exits and they are lost.
            xhc_trace::flush_thread();
        });
        return Ok(Response::new(
            202,
            "application/json",
            format!("{{\"id\":{id},\"status\":\"running\"}}\n").into_bytes(),
        )
        .with_header("X-Xhc-Plan-Hash", hash_hex(key))
        .with_header("X-Xhc-Job", id.to_string()));
    }

    let (bytes, engine_ns) = compute_plan(state, key, wkey, &xmap, &params)?;
    let plan_len = bytes.len();
    let mut body = bytes;
    let traced = trace_session.is_some();
    if let Some(session) = trace_session {
        // Two-part body: the untouched plan bytes, then the chrome JSON.
        // `X-Xhc-Plan-Bytes` below marks the boundary.
        body.extend_from_slice(session.finish().to_chrome_json().as_bytes());
    }
    let mut response = Response::new(200, "application/octet-stream", body)
        .with_header("X-Xhc-Plan-Hash", hash_hex(key))
        .with_header(
            "X-Xhc-Cache",
            if engine_ns.is_none() { "hit" } else { "miss" }.to_string(),
        );
    if traced {
        response = response.with_header("X-Xhc-Plan-Bytes", plan_len.to_string());
    }
    if let Some(ns) = engine_ns {
        // Engine time of this cold plan, so clients can decompose
        // cold-vs-hit latency without scraping /metrics.
        response = response.with_header("X-Xhc-Engine-Ns", ns.to_string());
    }
    Ok(response)
}

/// `GET /v1/backends`: capability discovery for the planning fleet —
/// one JSON entry per registered [`BackendId`], in racing order.
fn backends_endpoint() -> Response {
    let mut body = String::from("[");
    for (i, id) in BackendId::ALL.into_iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let caps = id.caps();
        body.push_str(&format!(
            "{{\"id\":\"{}\",\"default\":{},\"caps\":{{\"partitions\":{},\"masking\":{},\
             \"canceling\":{},\"lossless\":{},\"uses_matrix\":{}}}}}",
            id.name(),
            id == BackendId::Hybrid,
            caps.partitions,
            caps.masking,
            caps.canceling,
            caps.lossless,
            caps.uses_matrix,
        ));
    }
    body.push_str("]\n");
    Response::new(200, "application/json", body.into_bytes())
}

/// Parses the `backends=` comma list of a race request: backend tokens,
/// deduplicated, in request order. Absent means every backend.
fn parse_race_roster(request: &Request) -> Result<Vec<BackendId>, HandlerError> {
    let Some(raw) = request.query_param("backends") else {
        return Ok(BackendId::ALL.to_vec());
    };
    let mut roster = Vec::new();
    for token in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let id = parse_backend(token).ok_or_else(|| {
            HandlerError::new(
                400,
                format!(
                    "`{token}` is not a backend (expected one of {})",
                    backend_name_list()
                ),
            )
        })?;
        if !roster.contains(&id) {
            roster.push(id);
        }
    }
    if roster.is_empty() {
        return Err(HandlerError::new(400, "`backends` names no backend"));
    }
    Ok(roster)
}

/// One backend's finished race leg: its uniform report, the wall time it
/// took, and — for the hybrid leg only — the stored plan's address and
/// whether it was a cache hit.
struct RaceLeg {
    backend: BackendId,
    report: xhc_core::BackendReport,
    latency_ns: u64,
    plan: Option<(u64, bool)>,
}

/// Runs one backend of a race (or a non-hybrid single-backend plan).
///
/// The hybrid leg routes through [`compute_plan`] with the *same* cache
/// key `POST /v1/plan` would derive, so its plan bytes are byte-identical
/// to the single-backend route, persisted under the same address, and
/// single-flighted against concurrent submissions; the report is then
/// accounted from the decoded plan without re-running the engine. Every
/// other backend is pure accounting run in-process, handed the pooled
/// packed matrix when its capabilities claim one.
#[allow(clippy::too_many_arguments)]
fn race_leg(
    state: &ServerState,
    backend: BackendId,
    canonical: &[u8],
    xmap: &XMap,
    params: &PlanParams,
    cancel: XCancelConfig,
    wkey: u64,
    shared_matrix: Option<&XBitMatrix>,
) -> Result<RaceLeg, HandlerError> {
    let started = Instant::now();
    if backend == BackendId::Hybrid {
        let options = PlanOptions {
            backend: BackendId::Hybrid,
            ..params.options
        };
        let key = plan_request_hash_with_options(canonical, params.m, params.q, &options);
        let leg_params = PlanParams {
            m: params.m,
            q: params.q,
            options,
            asynchronous: false,
            trace: false,
        };
        let (bytes, engine_ns) = compute_plan(state, key, wkey, xmap, &leg_params)?;
        let (outcome, _) = decode_plan(&bytes)
            .map_err(|e| HandlerError::new(500, format!("stored plan failed to decode: {e}")))?;
        let report = HybridBackend::report_for(xmap, cancel, outcome);
        Ok(RaceLeg {
            backend,
            report,
            latency_ns: started.elapsed().as_nanos() as u64,
            plan: Some((key, engine_ns.is_none())),
        })
    } else {
        let mut input = WorkloadInput::new(xmap, cancel);
        if let Some(matrix) = shared_matrix.filter(|_| backend.caps().uses_matrix) {
            input = input.with_matrix(matrix);
        }
        let report = backend_for(backend).plan(&input, &params.options);
        Ok(RaceLeg {
            backend,
            report,
            latency_ns: started.elapsed().as_nanos() as u64,
            plan: None,
        })
    }
}

/// Renders one race leg as a JSON object; `pareto` is present only on
/// race responses (a single-backend report has no frontier to sit on).
fn leg_json(leg: &RaceLeg, pareto: Option<bool>) -> String {
    let mut s = format!(
        "{{\"backend\":\"{}\",\"control_bits\":{:.3},\"masked_x\":{},\"leaked_x\":{},\
         \"lost_observability\":{},\"latency_ns\":{}",
        leg.backend.name(),
        leg.report.control_bits,
        leg.report.masked_x,
        leg.report.leaked_x,
        leg.report.lost_observability,
        leg.latency_ns,
    );
    if let Some(p) = pareto {
        s.push_str(&format!(",\"pareto\":{p}"));
    }
    if let Some((key, hit)) = leg.plan {
        s.push_str(&format!(
            ",\"plan_hash\":\"{}\",\"cache\":\"{}\"",
            hash_hex(key),
            if hit { "hit" } else { "miss" }
        ));
    }
    s.push('}');
    s
}

/// `POST /v1/plan/race`: fans one submission across a requested backend
/// set and returns the control-bit/latency table with Pareto flags.
///
/// One decode and one lint gate serve every leg; the legs then run
/// concurrently (scoped threads on the worker that claimed the request).
/// The hybrid leg shares the plan store, the single-flight set and the
/// matrix pool with `POST /v1/plan` — see [`race_leg`].
fn race_endpoint(state: &Arc<ServerState>, request: &Request) -> Result<Response, HandlerError> {
    let mut params = parse_plan_params(request)?;
    if params.asynchronous {
        return Err(HandlerError::new(
            400,
            "`mode=async` is not supported on /v1/plan/race",
        ));
    }
    if request.body.is_empty() {
        return Err(HandlerError::new(400, "empty request body"));
    }
    let roster = parse_race_roster(request)?;
    let xmap = decode_request_xmap(state, &request.body, &mut params)?;
    lint_gate(state, &xmap, params.m, params.q)?;
    let canonical = encode_xmap(&xmap);
    let wkey = xhc_wire::content_hash(&canonical);
    let cancel = XCancelConfig::new(params.m, params.q);

    // Matrix-consuming accounting backends share one pooled build, keyed
    // by workload exactly like the engine's own (the hybrid leg reaches
    // the same pool through `run_engine`).
    let shared_matrix: Option<Arc<XBitMatrix>> = if roster
        .iter()
        .any(|id| *id != BackendId::Hybrid && id.caps().uses_matrix)
    {
        let (matrix, reused) = state.matrix_pool.get_or_build(wkey, || xmap.to_bitmatrix());
        if reused {
            state.metrics.batched_total.fetch_add(1, Ordering::Relaxed);
        }
        Some(matrix)
    } else {
        None
    };

    let state_ref: &ServerState = state;
    let leg_results: Vec<Result<RaceLeg, HandlerError>> = thread::scope(|scope| {
        let handles: Vec<_> = roster
            .iter()
            .map(|&backend| {
                let canonical = &canonical;
                let xmap = &xmap;
                let params = &params;
                let shared_matrix = shared_matrix.as_deref();
                scope.spawn(move || {
                    race_leg(
                        state_ref,
                        backend,
                        canonical,
                        xmap,
                        params,
                        cancel,
                        wkey,
                        shared_matrix,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(HandlerError::new(500, "race leg panicked")))
            })
            .collect()
    });
    let mut legs = Vec::with_capacity(leg_results.len());
    for leg in leg_results {
        legs.push(leg?);
    }

    // A leg is off the frontier iff another leg is no worse on both axes
    // and strictly better on one; exact ties keep both.
    let dominated = |i: usize| {
        legs.iter().enumerate().any(|(j, b)| {
            j != i
                && b.report.control_bits <= legs[i].report.control_bits
                && b.latency_ns <= legs[i].latency_ns
                && (b.report.control_bits < legs[i].report.control_bits
                    || b.latency_ns < legs[i].latency_ns)
        })
    };
    let mut body = format!(
        "{{\"m\":{},\"q\":{},\"workload\":\"{}\",\"entries\":[",
        params.m,
        params.q,
        hash_hex(wkey)
    );
    for (i, leg) in legs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&leg_json(leg, Some(!dominated(i))));
    }
    body.push_str("]}\n");
    let mut response = Response::new(200, "application/json", body.into_bytes());
    if let Some((key, _)) = legs.iter().find_map(|l| l.plan) {
        response = response.with_header("X-Xhc-Plan-Hash", hash_hex(key));
    }
    Ok(response)
}

/// Plans (or fetches) the request with single-flight dedup: for any key,
/// exactly one caller runs the engine while concurrent identical
/// requests block and then read the store. Returns the wire-encoded plan
/// and, for a cache miss, the engine wall time in nanoseconds (`None`
/// means the plan came from the cache).
fn compute_plan(
    state: &ServerState,
    key: u64,
    wkey: u64,
    xmap: &XMap,
    params: &PlanParams,
) -> Result<(Vec<u8>, Option<u64>), HandlerError> {
    let store_err = |e: io::Error| HandlerError::new(500, format!("plan store failed: {e}"));
    // Fast path: already cached.
    if let Some(bytes) = state.store.load(key).map_err(store_err)? {
        state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((bytes, None));
    }
    // Claim the key or wait for whoever holds it.
    {
        let mut inflight = state.inflight.lock().expect("inflight set poisoned");
        loop {
            if !inflight.contains(&key) {
                // Re-check the store under the lock: a racing computer may
                // have finished between our miss above and this claim.
                if let Some(bytes) = state.store.load(key).map_err(store_err)? {
                    state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((bytes, None));
                }
                inflight.insert(key);
                break;
            }
            inflight = state
                .inflight_cv
                .wait(inflight)
                .expect("inflight set poisoned");
        }
    }
    // We own the computation. The plan must be persisted *before* the
    // claim is released: waiters re-check the store the moment the key
    // leaves the in-flight set, and an unsaved plan at that instant
    // would make them recompute (a duplicated miss).
    let result =
        run_engine(state, wkey, xmap, params).and_then(|(bytes, cert_bytes, engine_ns)| {
            let store_started = Instant::now();
            let span = xhc_trace::span("serve.store");
            // Persist the certificate and the canonical X map first: the
            // `.plan` file is the cache-hit signal, so a reader that sees it
            // can rely on the siblings being complete.
            state
                .store
                .save_ext(key, "cert", &cert_bytes)
                .map_err(store_err)?;
            state
                .store
                .save_ext(key, "xmap", &encode_xmap(xmap))
                .map_err(store_err)?;
            state.store.save(key, &bytes).map_err(store_err)?;
            drop(span);
            state
                .metrics
                .store_ns
                .record_ns(store_started.elapsed().as_nanos() as u64);
            state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            Ok((bytes, Some(engine_ns)))
        });
    // Always release the claim, success or error.
    {
        let mut inflight = state.inflight.lock().expect("inflight set poisoned");
        inflight.remove(&key);
    }
    state.inflight_cv.notify_all();
    result
}

/// Runs the partition engine, encodes the plan and certifies it,
/// converting panics into HTTP 500 instead of poisoning the worker.
/// Returns the wire-encoded plan, its wire-encoded certificate, and the
/// engine wall time in nanoseconds (also accumulated into
/// `xhc_plan_engine_seconds`).
fn run_engine(
    state: &ServerState,
    wkey: u64,
    xmap: &XMap,
    params: &PlanParams,
) -> Result<(Vec<u8>, Vec<u8>, u64), HandlerError> {
    // The server owns worker sizing: its configured count replaces
    // whatever the request carried, and `0` stays `0` — the engine
    // resolves auto-threading itself.
    let opts = PlanOptions {
        threads: state.config.threads,
        ..params.options
    };
    let cancel = XCancelConfig::new(params.m, params.q);
    let engine = PartitionEngine::with_options(cancel, opts);
    let plan_started = Instant::now();
    let span = xhc_trace::span("serve.plan");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Only a best-cost run packs the bit matrix; concurrent requests
        // for the same workload (any options) share one build through
        // the pool. Inside the catch so a packing panic is a clean 500
        // and the pool's claim is released.
        let shared: Option<Arc<XBitMatrix>> = if matches!(opts.strategy, SplitStrategy::BestCost) {
            let (matrix, reused) = state.matrix_pool.get_or_build(wkey, || xmap.to_bitmatrix());
            if reused {
                state.metrics.batched_total.fetch_add(1, Ordering::Relaxed);
            }
            Some(matrix)
        } else {
            None
        };
        engine.run_with_matrix(xmap, shared.as_deref())
    }))
    .map_err(|_| HandlerError::new(500, "partition engine panicked"))?;
    drop(span);
    let engine_ns = plan_started.elapsed().as_nanos() as u64;
    state.metrics.plan_ns.record_ns(engine_ns);
    state.metrics.record_engine_ns(engine_ns);
    let encode_started = Instant::now();
    let span = xhc_trace::span("serve.encode");
    let bytes = encode_plan(&outcome, xmap.num_patterns());
    let cert = xhc_verify::certify_plan(xmap, cancel, &outcome, &bytes, None);
    let cert_bytes = xhc_wire::encode_certificate(&cert);
    drop(span);
    state
        .metrics
        .encode_ns
        .record_ns(encode_started.elapsed().as_nanos() as u64);
    if state.config.verify_on_write {
        let verify_started = Instant::now();
        let span = xhc_trace::span("serve.verify");
        state.metrics.verify_total.fetch_add(1, Ordering::Relaxed);
        let result = xhc_verify::check(&cert, &outcome, &bytes, xmap, cancel);
        drop(span);
        state
            .metrics
            .verify_ns
            .record_ns(verify_started.elapsed().as_nanos() as u64);
        if let Err(e) = result {
            // Can only mean an engine or certifier bug — refuse to cache
            // or serve the plan.
            state
                .metrics
                .verify_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(HandlerError::new(
                500,
                format!("plan failed verify-on-write: {e}"),
            ));
        }
    }
    Ok((bytes, cert_bytes, engine_ns))
}
