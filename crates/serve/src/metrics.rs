//! Lock-free daemon counters and fixed-bucket latency histograms,
//! rendered as a plaintext exposition page at `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bucket bounds in nanoseconds; the final implicit bucket is
/// `+Inf`. Spans 10 µs to 5 s, which covers decode-only requests through
/// cold plans on the paper-scale workloads.
const BOUNDS_NS: [u64; 12] = [
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
];

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_NS.len() + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The approximate `q`-quantile in nanoseconds: the upper bound of
    /// the bucket holding the target rank (twice the last finite bound
    /// for the `+Inf` bucket), or 0 when empty. Bucket resolution is
    /// deliberately coarse — this feeds the `Retry-After` estimate, not
    /// a benchmark.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, &bound) in BOUNDS_NS.iter().enumerate() {
            cumulative += self.buckets[idx].load(Ordering::Relaxed);
            if cumulative >= target {
                return bound;
            }
        }
        BOUNDS_NS[BOUNDS_NS.len() - 1] * 2
    }

    fn render(&self, out: &mut String, stage: &str) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (idx, bound) in BOUNDS_NS.iter().enumerate() {
            cumulative += self.buckets[idx].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "xhc_stage_latency_ns_bucket{{stage=\"{stage}\",le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.buckets[BOUNDS_NS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "xhc_stage_latency_ns_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "xhc_stage_latency_ns_sum{{stage=\"{stage}\"}} {}",
            self.sum_ns.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_stage_latency_ns_count{{stage=\"{stage}\"}} {cumulative}"
        );
    }
}

/// HTTP status classes the daemon tracks individually.
const TRACKED_STATUS: [u16; 10] = [200, 202, 400, 404, 405, 408, 422, 429, 500, 503];

/// Every counter the daemon exposes.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted off the socket (before routing).
    pub requests_total: AtomicU64,
    /// Responses, bucketed by status code (same order as `TRACKED_STATUS`;
    /// the extra slot counts everything else).
    responses: [AtomicU64; TRACKED_STATUS.len() + 1],
    /// Plan requests answered from the content-addressed store.
    pub cache_hits: AtomicU64,
    /// Plan requests that ran the partition engine.
    pub cache_misses: AtomicU64,
    /// Requests admitted but not yet picked up by a worker.
    pub queue_depth: AtomicU64,
    /// Requests rejected by admission control (answered 429).
    pub shed_total: AtomicU64,
    /// Connections answered 408 for idling mid-request past the read
    /// deadline (the slow-loris defence firing).
    pub timeouts_total: AtomicU64,
    /// Plan requests that reused a concurrently built packed matrix
    /// instead of packing their own (the batching win).
    pub batched_total: AtomicU64,
    /// Async jobs submitted.
    pub jobs_submitted: AtomicU64,
    /// Async jobs finished (successfully or not).
    pub jobs_completed: AtomicU64,
    /// Wall time connections spent queued between `accept` and a worker.
    pub queue_wait_ns: Histogram,
    /// Wall time spent decoding request bodies.
    pub decode_ns: Histogram,
    /// Wall time spent in the lint gate.
    pub lint_ns: Histogram,
    /// Wall time spent in the partition engine (cache misses only).
    pub plan_ns: Histogram,
    /// Wall time spent encoding responses.
    pub encode_ns: Histogram,
    /// Wall time spent persisting cold plans into the store.
    pub store_ns: Histogram,
    /// Certificate verifications run (verify-on-write plus
    /// `GET /v1/plan/{hash}/verify`).
    pub verify_total: AtomicU64,
    /// Certificate verifications that found at least one violation.
    pub verify_failures: AtomicU64,
    /// Wall time spent in the certificate checker.
    pub verify_ns: Histogram,
    /// End-to-end request handling time.
    pub total_ns: Histogram,
    /// Cumulative wall time spent inside `PartitionEngine::run` (cache
    /// misses only), in nanoseconds; exposed as a Prometheus
    /// summary-style `xhc_plan_engine_seconds_sum`.
    pub plan_engine_ns_sum: AtomicU64,
    /// Number of engine runs behind `plan_engine_ns_sum`
    /// (`xhc_plan_engine_seconds_count`).
    pub plan_engine_runs: AtomicU64,
}

impl Metrics {
    /// Records one partition-engine run of `ns` nanoseconds.
    ///
    /// The sum + count pair lets dashboards decompose cold-plan latency
    /// into engine time vs everything else (decode, lint, encode, store
    /// I/O) without bucket-resolution loss.
    pub fn record_engine_ns(&self, ns: u64) {
        self.plan_engine_ns_sum.fetch_add(ns, Ordering::Relaxed);
        self.plan_engine_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response with the given status code.
    pub fn count_status(&self, status: u16) {
        let idx = TRACKED_STATUS
            .iter()
            .position(|&s| s == status)
            .unwrap_or(TRACKED_STATUS.len());
        self.responses[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the full plaintext exposition page.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "xhc_requests_total {}",
            self.requests_total.load(Ordering::Relaxed)
        );
        for (idx, status) in TRACKED_STATUS.iter().enumerate() {
            let _ = writeln!(
                out,
                "xhc_responses_total{{status=\"{status}\"}} {}",
                self.responses[idx].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "xhc_responses_total{{status=\"other\"}} {}",
            self.responses[TRACKED_STATUS.len()].load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_cache_hits_total {}",
            self.cache_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_cache_misses_total {}",
            self.cache_misses.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_shed_total {}",
            self.shed_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_timeouts_total {}",
            self.timeouts_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_batched_total {}",
            self.batched_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_jobs_submitted_total {}",
            self.jobs_submitted.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_jobs_completed_total {}",
            self.jobs_completed.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_verify_total {}",
            self.verify_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_verify_failures_total {}",
            self.verify_failures.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "xhc_plan_engine_seconds_sum {:.9}",
            self.plan_engine_ns_sum.load(Ordering::Relaxed) as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "xhc_plan_engine_seconds_count {}",
            self.plan_engine_runs.load(Ordering::Relaxed)
        );
        for (stage, hist) in [
            ("queue_wait", &self.queue_wait_ns),
            ("decode", &self.decode_ns),
            ("lint", &self.lint_ns),
            ("plan", &self.plan_ns),
            ("encode", &self.encode_ns),
            ("store", &self.store_ns),
            ("verify", &self.verify_ns),
            ("total", &self.total_ns),
        ] {
            hist.render(&mut out, stage);
        }
        out
    }

    /// Renders the scalar counters in Influx-style line protocol —
    /// `name,instance=<addr> value=<v>u <ts_ns>` — which is what the
    /// `--push-metrics` exporter POSTs on every interval. Histograms
    /// contribute their count, sum and p95 (the same p95 the
    /// `Retry-After` estimate uses).
    pub fn render_line_protocol(&self, instance: &str, ts_ns: u128) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let line = |out: &mut String, name: &str, value: u64| {
            let _ = writeln!(out, "{name},instance={instance} value={value}u {ts_ns}");
        };
        line(
            &mut out,
            "xhc_requests_total",
            self.requests_total.load(Ordering::Relaxed),
        );
        for (idx, status) in TRACKED_STATUS.iter().enumerate() {
            let v = self.responses[idx].load(Ordering::Relaxed);
            if v > 0 {
                let _ = writeln!(
                    out,
                    "xhc_responses_total,instance={instance},status={status} value={v}u {ts_ns}"
                );
            }
        }
        line(
            &mut out,
            "xhc_cache_hits_total",
            self.cache_hits.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "xhc_cache_misses_total",
            self.cache_misses.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "xhc_queue_depth",
            self.queue_depth.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "xhc_shed_total",
            self.shed_total.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "xhc_timeouts_total",
            self.timeouts_total.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "xhc_batched_total",
            self.batched_total.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "xhc_plan_engine_ns_sum",
            self.plan_engine_ns_sum.load(Ordering::Relaxed),
        );
        for (stage, hist) in [
            ("queue_wait", &self.queue_wait_ns),
            ("plan", &self.plan_ns),
            ("total", &self.total_ns),
        ] {
            let _ = writeln!(
                out,
                "xhc_stage_count,instance={instance},stage={stage} value={}u {ts_ns}",
                hist.count()
            );
            let _ = writeln!(
                out,
                "xhc_stage_sum_ns,instance={instance},stage={stage} value={}u {ts_ns}",
                hist.sum_ns.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "xhc_stage_p95_ns,instance={instance},stage={stage} value={}u {ts_ns}",
                hist.quantile_ns(0.95)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.record_ns(5_000); // first bucket
        h.record_ns(40_000_000); // le 50ms
        h.record_ns(u64::MAX / 2); // +Inf
        assert_eq!(h.count(), 3);
        let mut page = String::new();
        h.render(&mut page, "t");
        assert!(page.contains("le=\"10000\"} 1"));
        assert!(page.contains("le=\"50000000\"} 2"));
        assert!(page.contains("le=\"+Inf\"} 3"));
        assert!(page.contains("xhc_stage_latency_ns_count{stage=\"t\"} 3"));
    }

    #[test]
    fn quantile_tracks_bucket_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.95), 0);
        for _ in 0..95 {
            h.record_ns(30_000); // le 50_000 bucket
        }
        for _ in 0..5 {
            h.record_ns(2_000_000_000); // le 5s bucket
        }
        assert_eq!(h.quantile_ns(0.50), 50_000);
        assert_eq!(h.quantile_ns(0.95), 50_000);
        assert_eq!(h.quantile_ns(1.0), 5_000_000_000);
        // The +Inf bucket reports twice the last finite bound.
        let inf = Histogram::default();
        inf.record_ns(u64::MAX / 2);
        assert_eq!(inf.quantile_ns(0.5), 10_000_000_000);
    }

    #[test]
    fn line_protocol_carries_instance_and_timestamp() {
        let m = Metrics::default();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.shed_total.fetch_add(1, Ordering::Relaxed);
        m.count_status(429);
        m.queue_wait_ns.record_ns(42_000);
        let body = m.render_line_protocol("127.0.0.1:9", 123_456);
        assert!(body.contains("xhc_requests_total,instance=127.0.0.1:9 value=3u 123456"));
        assert!(body.contains("xhc_shed_total,instance=127.0.0.1:9 value=1u 123456"));
        assert!(body.contains("xhc_responses_total,instance=127.0.0.1:9,status=429 value=1u"));
        assert!(body.contains("xhc_stage_p95_ns,instance=127.0.0.1:9,stage=queue_wait"));
        // Zero-valued statuses are elided; zero-valued scalars are not.
        assert!(!body.contains("status=200"));
        assert!(body.contains("xhc_batched_total,instance=127.0.0.1:9 value=0u"));
    }

    #[test]
    fn render_includes_every_counter() {
        let m = Metrics::default();
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(418);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.record_engine_ns(1_500_000_000);
        m.record_engine_ns(500_000_000);
        let page = m.render();
        assert!(page.contains("xhc_plan_engine_seconds_sum 2.000000000"));
        assert!(page.contains("xhc_plan_engine_seconds_count 2"));
        assert!(page.contains("xhc_requests_total 2"));
        assert!(page.contains("xhc_responses_total{status=\"200\"} 1"));
        assert!(page.contains("xhc_responses_total{status=\"other\"} 1"));
        assert!(page.contains("xhc_cache_hits_total 1"));
        assert!(page.contains("xhc_cache_misses_total 0"));
        assert!(page.contains("stage=\"plan\""));
        assert!(page.contains("stage=\"queue_wait\""));
        assert!(page.contains("stage=\"store\""));
        assert!(page.contains("stage=\"verify\""));
        assert!(page.contains("xhc_verify_total 0"));
        assert!(page.contains("xhc_verify_failures_total 0"));
    }
}
