//! A minimal blocking HTTP client for the daemon, used by the
//! `xhybrid fetch` subcommand, the loopback tests and the latency bench.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Sends one request and reads the response (`Connection: close`
/// framing; the body is read to EOF or `Content-Length`).
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path_and_query: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path_and_query} HTTP/1.1\r\nHost: xhc-serve\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts.next().ok_or_else(|| bad("empty response"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unexpected protocol `{version}`")));
    }
    let status: u16 = parts
        .next()
        .ok_or_else(|| bad("missing status code"))?
        .parse()
        .map_err(|_| bad("malformed status code"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// `GET path` against the daemon at `addr`.
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn get(addr: impl ToSocketAddrs, path_and_query: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path_and_query, None, &[])
}

/// `POST path` with a body against the daemon at `addr`.
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn post(
    addr: impl ToSocketAddrs,
    path_and_query: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<HttpResponse> {
    request(addr, "POST", path_and_query, Some(content_type), body)
}
