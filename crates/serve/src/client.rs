//! A minimal blocking HTTP client for the daemon, used by the
//! `xhybrid fetch` subcommand, the loopback tests and the latency
//! benches. The free functions ([`request`], [`get`], [`post`]) open a
//! fresh `Connection: close` socket per call; [`Client`] keeps one
//! connection alive across calls, which is what the load generator and
//! anything latency-sensitive should use.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the server asked for the connection to be closed.
    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes a request head plus body into one buffer (one write per
/// request keeps a keep-alive exchange to a single segment when small).
fn render_request(
    method: &str,
    path_and_query: &str,
    content_type: Option<&str>,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!("{method} {path_and_query} HTTP/1.1\r\nHost: xhc-serve\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    if !keep_alive {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    let mut buf = head.into_bytes();
    buf.extend_from_slice(body);
    buf
}

/// Reads one response off `reader`. With `to_eof_ok`, a missing
/// `Content-Length` falls back to read-to-EOF (only sound on a
/// `Connection: close` exchange); without it the header is required.
fn read_response(reader: &mut impl BufRead, to_eof_ok: bool) -> io::Result<HttpResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts.next().ok_or_else(|| bad("empty response"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unexpected protocol `{version}`")));
    }
    let status: u16 = parts
        .next()
        .ok_or_else(|| bad("missing status code"))?
        .parse()
        .map_err(|_| bad("malformed status code"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None if to_eof_ok => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
        None => {
            return Err(bad(
                "response without Content-Length on a keep-alive exchange",
            ))
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Sends one request and reads the response (`Connection: close`
/// framing; the body is read to EOF or `Content-Length`).
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path_and_query: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&render_request(
        method,
        path_and_query,
        content_type,
        body,
        false,
    ))?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream), true)
}

/// `GET path` against the daemon at `addr`.
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn get(addr: impl ToSocketAddrs, path_and_query: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path_and_query, None, &[])
}

/// `POST path` with a body against the daemon at `addr`.
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn post(
    addr: impl ToSocketAddrs,
    path_and_query: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<HttpResponse> {
    request(addr, "POST", path_and_query, Some(content_type), body)
}

/// A keep-alive HTTP client: one TCP connection reused across requests,
/// reconnecting transparently when the server closes it (an explicit
/// `Connection: close` response, a timed-out idle connection, a daemon
/// restart). One request is in flight at a time.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for the daemon at `addr`. No connection is opened until
    /// the first request.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a live connection is currently cached.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Sends `method path` with an optional body over the cached
    /// connection, reconnecting (and retrying once) if the server
    /// dropped it between requests.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed-response errors.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let wire = render_request(method, path_and_query, content_type, body, true);
        let reused = self.stream.is_some();
        match self.exchange(&wire) {
            Ok(response) => Ok(response),
            // A dead cached connection (server idle-timeout, restart) is
            // indistinguishable from a send/read error; retry exactly
            // once on a fresh connection, but only if we were reusing —
            // a fresh connection's failure is real.
            Err(_) if reused => {
                self.stream = None;
                self.exchange(&wire)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange(&mut self, wire: &[u8]) -> io::Result<HttpResponse> {
        if self.stream.is_none() {
            self.stream = Some(TcpStream::connect(self.addr)?);
        }
        let stream = self.stream.as_mut().expect("connected above");
        let result = (|| {
            stream.write_all(wire)?;
            stream.flush()?;
            read_response(&mut BufReader::new(&mut *stream), false)
        })();
        match result {
            Ok(response) => {
                if response.wants_close() {
                    self.stream = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// `GET path` over the kept-alive connection.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed-response errors.
    pub fn get(&mut self, path_and_query: &str) -> io::Result<HttpResponse> {
        self.request("GET", path_and_query, None, &[])
    }

    /// `POST path` with a body over the kept-alive connection.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed-response errors.
    pub fn post(
        &mut self,
        path_and_query: &str,
        content_type: &str,
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        self.request("POST", path_and_query, Some(content_type), body)
    }
}
