//! Push-mode metrics export: the daemon POSTs its counters as Influx
//! line protocol to an HTTP collector on a fixed interval (and once
//! more on shutdown, so short-lived runs still land).
//!
//! The body concatenates two sources: [`Metrics::render_line_protocol`]
//! (request counters, per-status totals, stage latency summaries) and
//! the process-lifetime [`xhc_trace`] stat registry (`xbm.stream_rows`,
//! `serve.batched`, …) with dots mapped to underscores and an
//! `xhc_trace_` prefix. Both are monotonic totals — the collector
//! derives rates. Failures are counted but never retried in-line; the
//! next interval is the retry.
//!
//! [`Metrics::render_line_protocol`]: crate::Metrics::render_line_protocol

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::{client, ServerState};

/// Default push interval, overridable via `XHC_PUSH_INTERVAL_MS`.
const DEFAULT_INTERVAL_MS: u64 = 2_000;

/// How often the exporter checks the shutdown flag while sleeping.
const SLEEP_SLICE_MS: u64 = 50;

/// Splits a `http://host:port/path` collector URL into a dial address
/// and a request path. Only plain `http` is supported (the daemon has
/// no TLS stack by design); the port defaults to 80, the path to
/// `/write`, which is the Influx line-protocol ingest convention.
pub(crate) fn parse_push_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("`{url}` is not an http:// URL (https is not supported)"))?;
    if rest.is_empty() {
        return Err(format!("`{url}` has no host"));
    }
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/write"),
    };
    if authority.is_empty() {
        return Err(format!("`{url}` has no host"));
    }
    let addr = if authority.contains(':') {
        authority.to_string()
    } else {
        format!("{authority}:80")
    };
    Ok((addr, path.to_string()))
}

/// Nanoseconds since the Unix epoch — the line-protocol timestamp.
fn unix_ns() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

/// One full export body: server metrics plus trace stat totals.
fn render_body(state: &ServerState, instance: &str) -> String {
    let ts = unix_ns();
    let mut body = state.metrics.render_line_protocol(instance, ts);
    for (name, value) in xhc_trace::stats_snapshot() {
        let metric = name.replace('.', "_");
        body.push_str(&format!(
            "xhc_trace_{metric},instance={instance} value={value}u {ts}\n"
        ));
    }
    body
}

/// Starts the exporter thread if the config asks for one. Enables the
/// always-on trace stat registry (so `xbm.stream_rows` and friends
/// accumulate without a trace session) and pushes every interval until
/// shutdown, plus one final flush. Returns `None` (and logs to stderr)
/// when the URL does not parse — a misconfigured exporter must not take
/// the daemon down.
pub(crate) fn spawn_exporter(
    state: &Arc<ServerState>,
    server_addr: SocketAddr,
) -> Option<thread::JoinHandle<()>> {
    let url = state.config.push_metrics.clone()?;
    let (addr, path) = match parse_push_url(&url) {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("xhc-serve: ignoring --push-metrics: {e}");
            return None;
        }
    };
    xhc_trace::enable_stats();
    let interval_ms = std::env::var("XHC_PUSH_INTERVAL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_INTERVAL_MS);
    let state = Arc::clone(state);
    let instance = server_addr.to_string();
    Some(thread::spawn(move || loop {
        // Sliced sleep so shutdown is observed within ~50 ms.
        let mut slept = 0;
        while slept < interval_ms && !state.shutdown.load(Ordering::SeqCst) {
            let slice = SLEEP_SLICE_MS.min(interval_ms - slept);
            thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
        let body = render_body(&state, &instance);
        if client::post(&addr, &path, "text/plain; charset=utf-8", body.as_bytes()).is_err() {
            xhc_trace::stat_add("serve.push_errors", 1);
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break; // the loop body above already did the final flush
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_push_url_accepts_common_shapes() {
        assert_eq!(
            parse_push_url("http://127.0.0.1:8086/write?db=xhc").unwrap(),
            ("127.0.0.1:8086".to_string(), "/write?db=xhc".to_string())
        );
        assert_eq!(
            parse_push_url("http://collector/ingest").unwrap(),
            ("collector:80".to_string(), "/ingest".to_string())
        );
        assert_eq!(
            parse_push_url("http://collector:9009").unwrap(),
            ("collector:9009".to_string(), "/write".to_string())
        );
    }

    #[test]
    fn parse_push_url_rejects_bad_urls() {
        assert!(parse_push_url("https://secure/ingest").is_err());
        assert!(parse_push_url("collector:8086").is_err());
        assert!(parse_push_url("http://").is_err());
        assert!(parse_push_url("http:///nohost").is_err());
    }
}
