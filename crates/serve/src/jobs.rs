//! The async-job registry behind `POST /v1/plan?mode=async` and
//! `GET /v1/jobs/{id}`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use xhc_wire::hash_hex;

/// Where an async planning job currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, planning in progress.
    Running,
    /// Finished; the plan is in the store under `plan_hash`.
    Done {
        /// The content address of the finished plan.
        plan_hash: u64,
        /// Whether the job was answered by the cache.
        cache_hit: bool,
    },
    /// Planning failed.
    Failed {
        /// The HTTP status the synchronous path would have returned.
        status: u16,
        /// Human-readable failure.
        message: String,
    },
}

impl JobStatus {
    /// Renders the status as the one-line JSON body of `GET /v1/jobs/{id}`.
    pub fn render(&self, id: u64) -> String {
        match self {
            JobStatus::Running => format!("{{\"id\":{id},\"status\":\"running\"}}\n"),
            JobStatus::Done {
                plan_hash,
                cache_hit,
            } => format!(
                "{{\"id\":{id},\"status\":\"done\",\"plan\":\"{}\",\"cache\":\"{}\"}}\n",
                hash_hex(*plan_hash),
                if *cache_hit { "hit" } else { "miss" }
            ),
            JobStatus::Failed { status, message } => format!(
                "{{\"id\":{id},\"status\":\"failed\",\"code\":{status},\"error\":{}}}\n",
                json_string(message)
            ),
        }
    }
}

/// Minimal JSON string escaping for error messages.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Tracks every async job the daemon has accepted.
#[derive(Debug, Default)]
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, JobStatus>>,
}

impl JobRegistry {
    /// Registers a new running job and returns its id.
    pub fn submit(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .insert(id, JobStatus::Running);
        id
    }

    /// Records the terminal status of a job.
    pub fn finish(&self, id: u64, status: JobStatus) {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .insert(id, status);
    }

    /// Looks up a job.
    pub fn get(&self, id: u64) -> Option<JobStatus> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .get(&id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_rendering() {
        let reg = JobRegistry::default();
        let id = reg.submit();
        assert_eq!(reg.get(id), Some(JobStatus::Running));
        assert!(reg.get(id + 1).is_none());
        reg.finish(
            id,
            JobStatus::Done {
                plan_hash: 0xabcd,
                cache_hit: false,
            },
        );
        let rendered = reg.get(id).unwrap().render(id);
        assert!(rendered.contains("\"done\""));
        assert!(rendered.contains("000000000000abcd"));
        assert!(rendered.contains("\"miss\""));

        let failed = JobStatus::Failed {
            status: 422,
            message: "deny: \"XL0203\"\nline two".into(),
        };
        let rendered = failed.render(7);
        assert!(rendered.contains("\\\"XL0203\\\""));
        assert!(rendered.contains("\\n"));
    }
}
