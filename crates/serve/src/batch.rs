//! Request batching: one packed bit-matrix build serves every
//! concurrent plan submission that shares a workload.
//!
//! The single-flight set upstream already dedups *identical* requests
//! (same X map **and** same engine options). This pool extends the idea
//! to the shared-prefix case — same X map, different options — where the
//! most expensive shared step is packing the `cells × patterns`
//! [`XBitMatrix`]. Entries are keyed by the content hash of the
//! canonical X map encoding and hold only a [`Weak`] reference, so the
//! pool batches strictly *concurrent* work: the matrix lives exactly as
//! long as some engine run holds it, and an idle daemon caches nothing.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, Weak};

use xhc_bits::XBitMatrix;

enum Slot {
    /// Some caller is packing the matrix right now.
    Building,
    /// The matrix exists while at least one engine run still holds it.
    Ready(Weak<XBitMatrix>),
}

/// The pool. One per daemon, shared by every worker.
#[derive(Default)]
pub struct MatrixPool {
    slots: Mutex<HashMap<u64, Slot>>,
    changed: Condvar,
}

/// Removes a `Building` claim if the builder unwinds, so a panicking
/// engine request cannot wedge every later request for the same
/// workload.
struct BuildGuard<'a> {
    pool: &'a MatrixPool,
    key: u64,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.pool.lock().remove(&self.key);
            self.pool.changed.notify_all();
        }
    }
}

impl MatrixPool {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Slot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns the packed matrix for the workload identified by `key`,
    /// building it with `build` only if no concurrent caller already is
    /// (or did, and the result is still alive). Exactly one build runs
    /// per batch of concurrent callers; the rest block until it is ready
    /// and share the same [`Arc`]. The `bool` is true for reusers, who
    /// also bump the `serve.batched` trace counter — the observable
    /// proof that batching happened.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> XBitMatrix,
    ) -> (Arc<XBitMatrix>, bool) {
        let mut slots = self.lock();
        loop {
            match slots.get(&key) {
                Some(Slot::Ready(weak)) => {
                    if let Some(matrix) = weak.upgrade() {
                        xhc_trace::counter_add("serve.batched", 1);
                        return (matrix, true);
                    }
                    // The last holder dropped it; this caller rebuilds.
                    slots.remove(&key);
                }
                Some(Slot::Building) => {
                    slots = self.changed.wait(slots).unwrap_or_else(|p| p.into_inner());
                    continue;
                }
                None => {}
            }
            slots.insert(key, Slot::Building);
            break;
        }
        drop(slots);
        let mut guard = BuildGuard {
            pool: self,
            key,
            armed: true,
        };
        let matrix = Arc::new(build());
        guard.armed = false;
        let mut slots = self.lock();
        slots.insert(key, Slot::Ready(Arc::downgrade(&matrix)));
        drop(slots);
        self.changed.notify_all();
        (matrix, false)
    }

    /// Live + building entries, for tests and metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the pool currently tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn tiny_matrix() -> XBitMatrix {
        let mut b = xhc_bits::XBitMatrixBuilder::with_capacity(8, 2);
        b.push_row_words(&[0b1001]);
        b.push_row_words(&[0b0010]);
        b.finish()
    }

    #[test]
    fn concurrent_callers_share_one_build() {
        let pool = Arc::new(MatrixPool::default());
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let builds = Arc::clone(&builds);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                let (m, _reused) = pool.get_or_build(42, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so reusers really overlap.
                    thread::sleep(std::time::Duration::from_millis(20));
                    tiny_matrix()
                });
                assert_eq!(m.num_rows(), 2);
                m
            }));
        }
        let mats: Vec<Arc<XBitMatrix>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one packed build");
        for m in &mats[1..] {
            assert!(Arc::ptr_eq(&mats[0], m), "all callers share one matrix");
        }
    }

    #[test]
    fn dead_entries_are_rebuilt() {
        let pool = MatrixPool::default();
        let (first, reused) = pool.get_or_build(7, tiny_matrix);
        assert!(!reused, "first build is not a reuse");
        drop(first);
        // The weak entry is dead now; a new caller must rebuild, not
        // panic or hang.
        let built = AtomicUsize::new(0);
        let (second, reused) = pool.get_or_build(7, || {
            built.fetch_add(1, Ordering::SeqCst);
            tiny_matrix()
        });
        assert!(!reused, "a dead weak entry forces a fresh build");
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(second.num_rows(), 2);
    }

    #[test]
    fn panicking_builder_releases_the_claim() {
        let pool = Arc::new(MatrixPool::default());
        let p = Arc::clone(&pool);
        let result = thread::spawn(move || {
            p.get_or_build(9, || panic!("boom"));
        })
        .join();
        assert!(result.is_err(), "builder panic propagates");
        // The slot must be free again: a later caller builds fresh.
        let (m, reused) = pool.get_or_build(9, tiny_matrix);
        assert!(!reused);
        assert_eq!(m.num_rows(), 2);
    }

    #[test]
    fn distinct_keys_do_not_share() {
        let pool = MatrixPool::default();
        let (a, _) = pool.get_or_build(1, tiny_matrix);
        let (b, _) = pool.get_or_build(2, tiny_matrix);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 2);
    }
}
