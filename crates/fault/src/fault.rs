//! The single stuck-at fault model.

use std::fmt;
use xhc_logic::{Netlist, Node, NodeId, Trit};

/// A single stuck-at fault on a node's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The faulty node (its output stem).
    pub node: NodeId,
    /// The stuck value: `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_at_one: bool,
}

impl Fault {
    /// Stuck-at-0 at `node`.
    pub fn sa0(node: NodeId) -> Self {
        Fault {
            node,
            stuck_at_one: false,
        }
    }

    /// Stuck-at-1 at `node`.
    pub fn sa1(node: NodeId) -> Self {
        Fault {
            node,
            stuck_at_one: true,
        }
    }

    /// The value the fault forces.
    pub fn forced_value(&self) -> Trit {
        Trit::from_bool(self.stuck_at_one)
    }

    /// The value that activates the fault (the fault-free circuit must
    /// drive the node to this for the fault to matter).
    pub fn activation_value(&self) -> Trit {
        Trit::from_bool(!self.stuck_at_one)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.node, u8::from(self.stuck_at_one))
    }
}

/// Enumerates the full uncollapsed stuck-at universe: sa0 and sa1 on every
/// input, gate, tri-state and bus output (constants and flop outputs are
/// excluded — flop faults are equivalent to faults on their D fan-in for
/// scan test, and a stuck constant is meaningless).
pub fn all_output_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, node) in netlist.iter_nodes() {
        let fault_site = matches!(
            node,
            Node::Input(_) | Node::Gate { .. } | Node::TriBuf { .. } | Node::Bus { .. }
        );
        if fault_site {
            faults.push(Fault::sa0(id));
            faults.push(Fault::sa1(id));
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_logic::samples;

    #[test]
    fn c17_fault_universe() {
        // C17: 5 inputs + 6 gates = 11 sites, 22 faults.
        let nl = samples::c17();
        let faults = all_output_faults(&nl);
        assert_eq!(faults.len(), 22);
        // Half sa0, half sa1.
        assert_eq!(faults.iter().filter(|f| f.stuck_at_one).count(), 11);
    }

    #[test]
    fn activation_is_opposite_of_forced() {
        let nl = samples::c17();
        let f = Fault::sa0(nl.inputs()[3]);
        assert_eq!(f.forced_value(), Trit::Zero);
        assert_eq!(f.activation_value(), Trit::One);
        assert_eq!(f.to_string(), "n3/sa0");
    }
}
