//! Stuck-at fault modeling and three-valued fault simulation.
//!
//! Fault coverage is the quantity every X-handling scheme must preserve:
//! an X that reaches the compactor, or a non-X value that gets masked,
//! both cost detections. This crate provides:
//!
//! * [`Fault`] / [`all_output_faults`] — the single stuck-at universe;
//! * [`fault_coverage`] — serial three-valued fault simulation with fault
//!   dropping over an `xhc-scan` harness, parameterized by an
//!   [`Observability`] filter so the same campaign can be scored under
//!   plain scan-out, X-masking (masked cells unobservable) or an
//!   X-canceling MISR (only X-free combinations observable).
//!
//! The coverage-preservation experiment (`tests/` at the workspace root)
//! uses this to *demonstrate* the paper's §4 claim — masking only all-X
//! cells loses no coverage — rather than just asserting it.
//!
//! # Examples
//!
//! ```
//! use xhc_fault::{all_output_faults, Fault};
//! use xhc_logic::samples;
//!
//! let c17 = samples::c17();
//! let faults = all_output_faults(&c17);
//! assert_eq!(faults.len(), 22); // 11 sites x {sa0, sa1}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod sim;

pub use fault::{all_output_faults, Fault};
pub use sim::{fault_coverage, CoverageReport, FullObservability, Observability};
