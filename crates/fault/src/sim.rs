//! Serial three-valued fault simulation with fault dropping.

use crate::fault::Fault;
use xhc_logic::Simulator;
use xhc_scan::{ScanHarness, TestPattern};

/// Which captured scan cells a compaction scheme lets the tester actually
/// observe for a given pattern.
///
/// * Raw scan-out (no compactor): everything is observable.
/// * X-masking: masked cells are not observable.
/// * X-canceling MISR: only cells covered by some X-free combination are
///   observable.
pub trait Observability {
    /// Whether `cell_index` (linear) of pattern `pattern` reaches the
    /// tester.
    fn observable(&self, pattern: usize, cell_index: usize) -> bool;
}

/// Full observability (plain scan-out).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullObservability;

impl Observability for FullObservability {
    fn observable(&self, _pattern: usize, _cell_index: usize) -> bool {
        true
    }
}

impl<F: Fn(usize, usize) -> bool> Observability for F {
    fn observable(&self, pattern: usize, cell_index: usize) -> bool {
        self(pattern, cell_index)
    }
}

/// The result of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Faults simulated.
    pub total_faults: usize,
    /// Faults detected by at least one pattern.
    pub detected: usize,
    /// For each fault (input order), the index of the first detecting
    /// pattern, if any.
    pub detected_by: Vec<Option<usize>>,
}

impl CoverageReport {
    /// Detected / total, in `\[0, 1\]`.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

/// Serial fault simulation with fault dropping.
///
/// For every pattern the fault-free circuit is simulated once; every
/// still-undetected fault is then simulated with the fault forced. A fault
/// is *detected* by a pattern when some scan cell is observable under the
/// supplied [`Observability`], captures a known value in both machines,
/// and the values differ. A captured X never detects anything — that is
/// precisely how X's cost fault coverage and why X-handling schemes that
/// drop non-X values must re-run this analysis, while the paper's hybrid
/// does not.
///
/// # Examples
///
/// ```
/// use xhc_fault::{all_output_faults, fault_coverage, FullObservability};
/// use xhc_logic::{samples, Trit};
/// use xhc_scan::{ScanConfig, ScanHarness, TestPattern};
///
/// let (netlist, scan_flops) = samples::x_prone_sequential();
/// let harness = ScanHarness::new(&netlist, ScanConfig::uniform(2, 2), scan_flops)?;
/// let faults = all_output_faults(&netlist);
/// let patterns = vec![TestPattern::zeros(4, 3)];
/// let report = fault_coverage(&harness, &patterns, &faults, &FullObservability);
/// assert!(report.coverage() <= 1.0);
/// # Ok::<(), xhc_scan::HarnessError>(())
/// ```
pub fn fault_coverage<O: Observability>(
    harness: &ScanHarness<'_>,
    patterns: &[TestPattern],
    faults: &[Fault],
    obs: &O,
) -> CoverageReport {
    let mut detected_by: Vec<Option<usize>> = vec![None; faults.len()];
    let mut undetected: Vec<usize> = (0..faults.len()).collect();
    let mut good_sim = Simulator::new(harness.netlist());
    let mut bad_sim = Simulator::new(harness.netlist());

    for (p, pattern) in patterns.iter().enumerate() {
        if undetected.is_empty() {
            break;
        }
        let good = harness.apply(&mut good_sim, pattern);
        undetected.retain(|&fi| {
            let fault = faults[fi];
            let forced = [(fault.node, fault.forced_value())];
            let bad = harness.apply_forced(&mut bad_sim, pattern, &forced);
            let hit = good.iter().zip(&bad).enumerate().any(|(cell, (&g, &b))| {
                g.is_known() && b.is_known() && g != b && obs.observable(p, cell)
            });
            if hit {
                detected_by[fi] = Some(p);
            }
            !hit
        });
    }

    let detected = detected_by.iter().filter(|d| d.is_some()).count();
    CoverageReport {
        total_faults: faults.len(),
        detected,
        detected_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_output_faults;
    use xhc_logic::Trit;
    use xhc_scan::ScanConfig;

    /// A pure-combinational harness for c17: wrap it with 0 scan cells is
    /// impossible (ScanConfig needs >= 1 cell), so build a tiny sequential
    /// wrapper capturing the two outputs into two scan flops.
    fn c17_like_harness() -> (xhc_logic::Netlist, Vec<usize>) {
        use xhc_logic::{FlopInit, GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new();
        let n1 = b.input();
        let n2 = b.input();
        let n3 = b.input();
        let n6 = b.input();
        let n7 = b.input();
        let n10 = b.gate(GateKind::Nand, vec![n1, n3]);
        let n11 = b.gate(GateKind::Nand, vec![n3, n6]);
        let n16 = b.gate(GateKind::Nand, vec![n2, n11]);
        let n19 = b.gate(GateKind::Nand, vec![n11, n7]);
        let n22 = b.gate(GateKind::Nand, vec![n10, n16]);
        let n23 = b.gate(GateKind::Nand, vec![n16, n19]);
        let f0 = b.flop(FlopInit::Zero);
        let f1 = b.flop(FlopInit::Zero);
        b.connect_flop_d(f0, n22);
        b.connect_flop_d(f1, n23);
        b.output(n22);
        b.output(n23);
        let nl = b.finish().unwrap();
        let flops = vec![nl.flop_index(f0).unwrap(), nl.flop_index(f1).unwrap()];
        (nl, flops)
    }

    fn exhaustive_patterns() -> Vec<TestPattern> {
        (0..32u8)
            .map(|bits| TestPattern {
                scan_load: vec![Trit::Zero; 2],
                inputs: (0..5)
                    .map(|i| Trit::from_bool(bits >> i & 1 == 1))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn c17_exhaustive_coverage_is_full() {
        // C17 is fully testable: 32 exhaustive vectors detect all 22
        // faults observable at the two captured outputs.
        let (nl, flops) = c17_like_harness();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let faults: Vec<Fault> = all_output_faults(&nl);
        let report = fault_coverage(
            &harness,
            &exhaustive_patterns(),
            &faults,
            &FullObservability,
        );
        assert_eq!(
            report.coverage(),
            1.0,
            "undetected: {:?}",
            report
                .detected_by
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_none())
                .map(|(i, _)| faults[i])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_observability_detects_nothing() {
        let (nl, flops) = c17_like_harness();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let faults = all_output_faults(&nl);
        let blind = |_: usize, _: usize| false;
        let report = fault_coverage(&harness, &exhaustive_patterns(), &faults, &blind);
        assert_eq!(report.detected, 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn masking_one_cell_loses_its_faults_only() {
        let (nl, flops) = c17_like_harness();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let faults = all_output_faults(&nl);
        // Observe only cell 1 (n23's capture).
        let only_cell1 = |_: usize, cell: usize| cell == 1;
        let report = fault_coverage(&harness, &exhaustive_patterns(), &faults, &only_cell1);
        // Strictly between zero and full: n22-only faults are lost.
        assert!(report.detected > 0);
        assert!(report.detected < report.total_faults);
    }

    #[test]
    fn fault_dropping_records_first_detection() {
        let (nl, flops) = c17_like_harness();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let faults = all_output_faults(&nl);
        let report = fault_coverage(
            &harness,
            &exhaustive_patterns(),
            &faults,
            &FullObservability,
        );
        for d in report.detected_by.iter().flatten() {
            assert!(*d < 32);
        }
    }

    #[test]
    fn empty_fault_list_is_vacuously_covered() {
        let (nl, flops) = c17_like_harness();
        let harness = ScanHarness::new(&nl, ScanConfig::uniform(2, 1), flops).unwrap();
        let report = fault_coverage(&harness, &exhaustive_patterns(), &[], &FullObservability);
        assert_eq!(report.coverage(), 1.0);
    }
}
