//! Time-multiplexed X-canceling over a pattern stream (the paper's \[11\]
//! halting model).
//!
//! The time-multiplexed X-canceling MISR compacts patterns continuously and
//! halts scan shifting whenever the accumulated X count reaches `m − q`; at
//! each halt `q` X-free combinations (of `m` select bits each) are
//! extracted and the MISR is reseeded. Test time therefore grows with the
//! number of halts, which is what the hybrid architecture attacks.

use crate::canceling::XCancelConfig;
use crate::misr::Taps;
use crate::symbolic::{known_part_values, x_dependency_matrix, SymbolicMisr};
use xhc_bits::{gauss, BitMatrix, BitVec};
use xhc_scan::{CellId, ResponseMatrix, ScanConfig};

/// One block of patterns compacted between two halts.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Half-open pattern range `[start, end)` of the block.
    pub patterns: (usize, usize),
    /// X's accumulated in the block.
    pub num_x: usize,
    /// X-free combinations extracted at the halt (at most `q`).
    pub combinations: Vec<BitVec>,
    /// Observed value of each extracted combination.
    pub canceled_values: BitVec,
    /// Select bits consumed: `m` per combination.
    pub control_bits: usize,
    /// The block's X-dependency matrix (`m` rows, `num_x` columns) — the
    /// input of the Gauss pass, retained as certificate evidence.
    pub dependency: BitMatrix,
    /// GF(2) rank of [`BlockOutcome::dependency`].
    pub rank: usize,
    /// The pivot column of each rank step, strictly ascending — together
    /// with `rank` this forms the rank certificate an independent checker
    /// (`xhc-verify`) re-derives from `dependency` alone.
    pub pivot_cols: Vec<usize>,
}

/// The result of a whole [`CancelSession`] run.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Per-block outcomes, in pattern order.
    pub blocks: Vec<BlockOutcome>,
    /// Total select-control bits.
    pub total_control_bits: usize,
    /// Number of scan-shift halts (= number of blocks).
    pub halts: usize,
    /// Total X's seen.
    pub total_x: usize,
}

/// A time-multiplexed X-canceling session bound to a scan topology and an
/// (m, q) configuration.
///
/// # Examples
///
/// ```
/// use xhc_logic::Trit;
/// use xhc_misr::{CancelSession, Taps, XCancelConfig};
/// use xhc_scan::{ResponseMatrix, ScanConfig};
///
/// let scan = ScanConfig::uniform(2, 3);
/// let session = CancelSession::new(scan.clone(), XCancelConfig::new(6, 2), Taps::default_for(6));
/// let responses = ResponseMatrix::filled(scan, 4, Trit::Zero);
/// let report = session.run(&responses);
/// assert_eq!(report.total_x, 0);
/// assert_eq!(report.halts, 1); // one final flush
/// ```
#[derive(Debug, Clone)]
pub struct CancelSession {
    scan: ScanConfig,
    config: XCancelConfig,
    taps: Taps,
}

impl CancelSession {
    /// Creates a session.
    pub fn new(scan: ScanConfig, config: XCancelConfig, taps: Taps) -> Self {
        CancelSession { scan, config, taps }
    }

    /// The (m, q) configuration.
    pub fn config(&self) -> XCancelConfig {
        self.config
    }

    /// Runs the session over captured responses, emulating the halting
    /// schedule: a block closes when admitting the next pattern would push
    /// the accumulated X count past `m − q` (a pattern with more X's than
    /// the budget forms its own block).
    ///
    /// # Panics
    ///
    /// Panics if `responses` uses a different scan topology.
    pub fn run(&self, responses: &ResponseMatrix) -> SessionReport {
        assert_eq!(
            responses.config(),
            &self.scan,
            "response matrix uses a different scan topology"
        );
        let m = self.config.m();
        let q = self.config.q();
        let budget = m - q;
        let cells = self.scan.total_cells();
        let num_patterns = responses.num_patterns();
        let universe = cells * num_patterns;

        let mut blocks = Vec::new();
        let mut sym = SymbolicMisr::new(m, self.taps.clone(), universe);
        let mut block_start = 0usize;
        let mut block_x: Vec<usize> = Vec::new(); // absolute symbol ids
        let mut total_x = 0usize;

        let close_block = |sym: &SymbolicMisr,
                           block_x: &[usize],
                           range: (usize, usize),
                           responses: &ResponseMatrix,
                           cells: usize|
         -> BlockOutcome {
            let mut span = xhc_trace::span("cancel.block")
                .arg("patterns", (range.1 - range.0) as u64)
                .arg("block_x", block_x.len() as u64);
            let dep = x_dependency_matrix(sym.rows(), block_x);
            // The full elimination also yields the rank certificate
            // (pivot columns) the verify layer embeds in plan
            // certificates; only q combinations are ever streamed per
            // halt, so the basis rows past q stay unmaterialised.
            let elim = gauss::eliminate(&dep);
            let combos: Vec<BitVec> = elim
                .zero_rows()
                .into_iter()
                .take(q)
                .map(|r| elim.combinations.row(r).clone())
                .collect();
            let known = known_part_values(sym.rows(), |s| {
                responses.get_linear(s / cells, s % cells).to_bool()
            });
            let mut canceled_values = BitVec::zeros(combos.len());
            for (ci, combo) in combos.iter().enumerate() {
                let mut acc = false;
                for bit in combo.iter_ones() {
                    acc ^= known.get(bit);
                }
                canceled_values.set(ci, acc);
            }
            let control_bits = m * combos.len();
            span.set_arg("combinations", combos.len() as u64);
            BlockOutcome {
                patterns: range,
                num_x: block_x.len(),
                combinations: combos,
                canceled_values,
                control_bits,
                dependency: dep,
                rank: elim.rank,
                pivot_cols: elim.pivot_cols,
            }
        };

        for p in 0..num_patterns {
            let pattern_x: Vec<usize> = (0..cells)
                .filter(|&c| responses.get_linear(p, c).is_x())
                .map(|c| p * cells + c)
                .collect();
            total_x += pattern_x.len();

            sym.unload_pattern(&self.scan, |cell: CellId| {
                p * cells + self.scan.linear_index(cell)
            });
            block_x.extend(pattern_x);

            // The hardware halts as soon as the accumulated X count
            // reaches m - q (it cannot foresee the next pattern).
            if block_x.len() >= budget {
                blocks.push(close_block(
                    &sym,
                    &block_x,
                    (block_start, p + 1),
                    responses,
                    cells,
                ));
                sym = SymbolicMisr::new(m, self.taps.clone(), universe);
                block_start = p + 1;
                block_x.clear();
            }
        }
        // Final flush of any un-halted tail.
        if block_start < num_patterns {
            blocks.push(close_block(
                &sym,
                &block_x,
                (block_start, num_patterns),
                responses,
                cells,
            ));
        }

        let total_control_bits = blocks.iter().map(|b| b.control_bits).sum();
        let halts = blocks.len();
        xhc_trace::counter_add("cancel.halts", halts as u64);
        xhc_trace::counter_add("cancel.x_total", total_x as u64);

        // Self-checks mirroring the xhc-lint accounting rules (XL0303
        // family; kept inline — lint depends on this crate).
        #[cfg(debug_assertions)]
        {
            // Every block's X count and control bits must balance: the
            // session-level totals are pure sums of the block outcomes.
            debug_assert_eq!(
                blocks.iter().map(|b| b.num_x).sum::<usize>(),
                total_x,
                "block X counts must sum to the session total"
            );
            for block in &blocks {
                debug_assert_eq!(
                    block.control_bits,
                    m * block.combinations.len(),
                    "control bits must be m per selected combination"
                );
                debug_assert!(
                    block.combinations.len() <= q,
                    "a block never streams more than q combinations"
                );
                debug_assert_eq!(
                    block.combinations.len(),
                    (m - block.rank).min(q),
                    "combinations are the q-capped null space of the block"
                );
                debug_assert_eq!(
                    block.pivot_cols.len(),
                    block.rank,
                    "one pivot column per unit of rank"
                );
            }
        }

        SessionReport {
            blocks,
            total_control_bits,
            halts,
            total_x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_logic::Trit;

    fn responses_with_x(xs: &[(usize, usize)]) -> (ScanConfig, ResponseMatrix) {
        let scan = ScanConfig::uniform(2, 3);
        let mut resp = ResponseMatrix::filled(scan.clone(), 6, Trit::Zero);
        for &(p, cell) in xs {
            resp.set(p, scan.cell_at(cell), Trit::X);
        }
        (scan, resp)
    }

    #[test]
    fn halts_when_budget_exceeded() {
        // m=6, q=2 -> budget 4 X's per block. Patterns carry 2 X's each:
        // block = 2 patterns, so 6 patterns -> 3 halts.
        let (scan, mut resp) = responses_with_x(&[]);
        for p in 0..6 {
            resp.set(p, scan.cell_at(0), Trit::X);
            resp.set(p, scan.cell_at(3), Trit::X);
        }
        let session = CancelSession::new(scan, XCancelConfig::new(6, 2), Taps::default_for(6));
        let report = session.run(&resp);
        assert_eq!(report.total_x, 12);
        assert_eq!(report.halts, 3);
        for b in &report.blocks {
            assert_eq!(b.num_x, 4);
            assert!(b.combinations.len() <= 2);
            assert!(
                !b.combinations.is_empty(),
                "budget respected -> q combos exist"
            );
        }
    }

    #[test]
    fn x_free_count_guaranteed_when_budget_respected() {
        // With at most m - q X's per block, at least q X-free combinations
        // always exist (nullity >= m - (m - q) = q).
        let (scan, resp) = responses_with_x(&[(0, 1), (1, 4), (3, 2)]);
        let session = CancelSession::new(scan, XCancelConfig::new(6, 2), Taps::default_for(6));
        let report = session.run(&resp);
        for b in &report.blocks {
            assert_eq!(b.combinations.len(), 2, "q combos per halt");
        }
    }

    #[test]
    fn oversized_pattern_forms_own_block() {
        // One pattern with 5 X's (> budget 4) must still be processed.
        let (scan, resp) = responses_with_x(&[(1, 0), (1, 1), (1, 2), (1, 3), (1, 4)]);
        let session = CancelSession::new(scan, XCancelConfig::new(6, 2), Taps::default_for(6));
        let report = session.run(&resp);
        assert_eq!(report.total_x, 5);
        let oversized = report
            .blocks
            .iter()
            .find(|b| b.num_x == 5)
            .expect("oversized block exists");
        // The halt fires right after the oversized pattern (index 1); the
        // preceding X-free pattern legitimately shares the block.
        assert_eq!(oversized.patterns.1, 2);
    }

    #[test]
    fn canceled_values_invariant_under_x_assignment() {
        let (scan, resp) = responses_with_x(&[(0, 2), (2, 5)]);
        let session =
            CancelSession::new(scan.clone(), XCancelConfig::new(6, 2), Taps::default_for(6));
        let base = session.run(&resp);

        // Concretise the X's in all 4 ways; canceled values must match.
        for bits in 0..4u8 {
            let mut concrete = resp.clone();
            concrete.set(0, scan.cell_at(2), Trit::from_bool(bits & 1 == 1));
            concrete.set(2, scan.cell_at(5), Trit::from_bool(bits & 2 == 2));
            let got = session.run(&concrete);
            // Concrete runs see no X -> block boundaries differ; instead
            // re-evaluate base combinations against concrete values.
            for block in &base.blocks {
                let cells = scan.total_cells();
                let mut sym = SymbolicMisr::new(6, Taps::default_for(6), cells * 6);
                for p in block.patterns.0..block.patterns.1 {
                    sym.unload_pattern(&scan, |cell| p * cells + scan.linear_index(cell));
                }
                let known = known_part_values(sym.rows(), |s| {
                    concrete.get_linear(s / cells, s % cells).to_bool()
                });
                for (ci, combo) in block.combinations.iter().enumerate() {
                    let mut acc = false;
                    for bit in combo.iter_ones() {
                        acc ^= known.get(bit);
                    }
                    assert_eq!(acc, block.canceled_values.get(ci));
                }
            }
            let _ = got;
        }
    }

    #[test]
    fn blocks_carry_a_consistent_rank_certificate() {
        let (scan, resp) = responses_with_x(&[(0, 0), (0, 4), (1, 1), (2, 2), (3, 3), (4, 5)]);
        let session = CancelSession::new(scan, XCancelConfig::new(6, 2), Taps::default_for(6));
        let report = session.run(&resp);
        assert!(!report.blocks.is_empty());
        for b in &report.blocks {
            assert_eq!(b.dependency.num_rows(), 6);
            assert_eq!(b.dependency.num_cols(), b.num_x);
            assert_eq!(b.pivot_cols.len(), b.rank);
            assert!(b.pivot_cols.windows(2).all(|w| w[0] < w[1]));
            // Re-eliminating the retained matrix reproduces the claim.
            let elim = gauss::eliminate(&b.dependency);
            assert_eq!(elim.rank, b.rank);
            assert_eq!(elim.pivot_cols, b.pivot_cols);
            assert_eq!(b.combinations.len(), (6 - b.rank).min(2));
        }
    }

    #[test]
    fn control_bits_sum_over_blocks() {
        let (scan, resp) = responses_with_x(&[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        let session = CancelSession::new(scan, XCancelConfig::new(6, 2), Taps::default_for(6));
        let report = session.run(&resp);
        assert_eq!(
            report.total_control_bits,
            report.blocks.iter().map(|b| b.control_bits).sum::<usize>()
        );
        assert_eq!(report.halts, report.blocks.len());
    }
}
