//! Concrete MISR (multiple-input signature register) simulation.

use xhc_bits::BitVec;

/// Feedback taps of a MISR: the state-bit indices XORed into bit 0 on each
/// shift.
///
/// Corresponds to the characteristic polynomial of the register; the
/// highest state bit (`m - 1`) is always fed back (it is the `x^m` term).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taps(Vec<usize>);

impl Taps {
    /// Taps from explicit state-bit indices.
    ///
    /// # Panics
    ///
    /// Panics if empty, if any tap is `>= m` when used, or duplicated.
    pub fn new(mut taps: Vec<usize>) -> Self {
        assert!(!taps.is_empty(), "need at least one feedback tap");
        taps.sort_unstable();
        taps.dedup();
        Taps(taps)
    }

    /// A reasonable default for any size: taps resembling widely used
    /// CRC/LFSR polynomials (always includes `m - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn default_for(m: usize) -> Self {
        assert!(m >= 2, "MISR size must be at least 2");
        let mut taps = vec![m - 1];
        // Sprinkle a couple of interior taps for mixing; exact primitivity
        // is irrelevant to X-canceling correctness (any feedback works —
        // the symbolic simulation tracks whatever the hardware does).
        if m > 3 {
            taps.push(m / 2);
        }
        if m > 5 {
            taps.push(1);
        }
        Taps::new(taps)
    }

    /// The tap indices, ascending.
    pub fn indices(&self) -> &[usize] {
        &self.0
    }

    fn check(&self, m: usize) {
        assert!(
            self.0.iter().all(|&t| t < m),
            "tap index out of range for a {m}-bit MISR"
        );
    }
}

/// A concrete (two-valued) MISR.
///
/// Per shift cycle, every input bit is XORed into its stage and the
/// register shifts with polynomial feedback into bit 0:
///
/// ```text
/// s'[0] = (⊕_{t ∈ taps} s[t]) ⊕ in[0]
/// s'[i] = s[i-1] ⊕ in[i]        (i > 0)
/// ```
///
/// Used to validate the symbolic simulation: for any X-free input stream,
/// the concrete signature must equal the symbolic prediction.
///
/// # Examples
///
/// ```
/// use xhc_bits::BitVec;
/// use xhc_misr::{Misr, Taps};
///
/// let mut misr = Misr::new(6, Taps::default_for(6));
/// misr.shift(&BitVec::from_indices(6, [0, 2]));
/// misr.shift(&BitVec::from_indices(6, [1]));
/// assert_eq!(misr.state().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    state: BitVec,
    taps: Taps,
}

impl Misr {
    /// A zero-seeded `m`-bit MISR.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or a tap is out of range.
    pub fn new(m: usize, taps: Taps) -> Self {
        assert!(m >= 2, "MISR size must be at least 2");
        taps.check(m);
        Misr {
            state: BitVec::zeros(m),
            taps,
        }
    }

    /// Register width.
    pub fn size(&self) -> usize {
        self.state.len()
    }

    /// The feedback taps.
    pub fn taps(&self) -> &Taps {
        &self.taps
    }

    /// Current signature.
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// Resets the signature to zero.
    pub fn reset(&mut self) {
        self.state.clear();
    }

    /// One shift cycle with the given parallel inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != size()`.
    pub fn shift(&mut self, inputs: &BitVec) {
        assert_eq!(inputs.len(), self.size(), "MISR input width mismatch");
        let m = self.size();
        let fb = self
            .taps
            .indices()
            .iter()
            .fold(false, |acc, &t| acc ^ self.state.get(t));
        let mut next = BitVec::zeros(m);
        next.set(0, fb ^ inputs.get(0));
        for i in 1..m {
            next.set(i, self.state.get(i - 1) ^ inputs.get(i));
        }
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_inputs_zero_state_stays_zero() {
        let mut misr = Misr::new(8, Taps::default_for(8));
        for _ in 0..10 {
            misr.shift(&BitVec::zeros(8));
        }
        assert!(misr.state().none());
    }

    #[test]
    fn shift_is_linear() {
        // MISR(a ^ b) == MISR(a) ^ MISR(b) from a zero seed — the linearity
        // that makes symbolic X-canceling possible.
        let taps = Taps::default_for(6);
        let streams_a = [
            BitVec::from_indices(6, [0, 3]),
            BitVec::from_indices(6, [2]),
            BitVec::from_indices(6, [5, 1]),
        ];
        let streams_b = [
            BitVec::from_indices(6, [4]),
            BitVec::from_indices(6, [2, 0]),
            BitVec::from_indices(6, [1]),
        ];
        let run = |streams: &[BitVec]| {
            let mut m = Misr::new(6, taps.clone());
            for s in streams {
                m.shift(s);
            }
            m.state().clone()
        };
        let sum: Vec<BitVec> = streams_a
            .iter()
            .zip(&streams_b)
            .map(|(a, b)| {
                let mut s = a.clone();
                s.xor_with(b);
                s
            })
            .collect();
        let mut expect = run(&streams_a);
        expect.xor_with(&run(&streams_b));
        assert_eq!(run(&sum), expect);
    }

    #[test]
    fn single_bit_propagates_down_the_register() {
        // Inject a 1 at stage 0 with no further input: it marches to
        // higher stages each cycle until feedback kicks in.
        let mut misr = Misr::new(5, Taps::new(vec![4]));
        let mut inj = BitVec::zeros(5);
        inj.set(0, true);
        misr.shift(&inj);
        assert!(misr.state().get(0));
        misr.shift(&BitVec::zeros(5));
        assert!(misr.state().get(1) && !misr.state().get(0));
        for _ in 0..3 {
            misr.shift(&BitVec::zeros(5));
        }
        // After 4 more shifts the bit reached stage 4 and feeds back to 0.
        misr.shift(&BitVec::zeros(5));
        assert!(misr.state().get(0));
    }

    #[test]
    fn taps_sorted_and_deduped() {
        let t = Taps::new(vec![3, 1, 3]);
        assert_eq!(t.indices(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "tap index out of range")]
    fn oversized_tap_panics() {
        Misr::new(4, Taps::new(vec![4]));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        Misr::new(4, Taps::default_for(4)).shift(&BitVec::zeros(5));
    }

    #[test]
    fn reset_clears_state() {
        let mut misr = Misr::new(4, Taps::default_for(4));
        misr.shift(&BitVec::from_indices(4, [1]));
        assert!(misr.state().any());
        misr.reset();
        assert!(misr.state().none());
    }
}
