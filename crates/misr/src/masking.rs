//! The X-masking front end (the paper's Fig. 1 and baseline \[5\]).

use xhc_bits::BitVec;
use xhc_logic::Trit;
use xhc_scan::{CellId, ScanConfig, XMap};

/// A mask word: one bit per scan cell, `1` meaning *mask* (the AND gate in
/// front of the compactor forces the shifted value to 0).
///
/// Conventional X-masking streams a fresh word per pattern; the paper's
/// hybrid shares one word across every pattern of a partition.
///
/// # Examples
///
/// ```
/// use xhc_misr::MaskWord;
/// use xhc_scan::{CellId, ScanConfig};
/// use xhc_logic::Trit;
///
/// let cfg = ScanConfig::uniform(5, 3);
/// let mut mask = MaskWord::none(&cfg);
/// mask.mask(&cfg, CellId::new(3, 2));
/// let row = vec![Trit::X; 15];
/// let gated = mask.apply(&row);
/// assert_eq!(gated.iter().filter(|t| t.is_x()).count(), 14);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskWord {
    bits: BitVec,
}

impl MaskWord {
    /// A word masking nothing.
    pub fn none(config: &ScanConfig) -> Self {
        MaskWord {
            bits: BitVec::zeros(config.total_cells()),
        }
    }

    /// A word from explicit per-cell bits (linear order).
    pub fn from_bits(bits: BitVec) -> Self {
        MaskWord { bits }
    }

    /// Marks `cell` as masked.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn mask(&mut self, config: &ScanConfig, cell: CellId) {
        self.bits.set(config.linear_index(cell), true);
    }

    /// Whether the linear cell index is masked.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn masks(&self, cell_index: usize) -> bool {
        self.bits.get(cell_index)
    }

    /// Number of masked cells.
    pub fn count(&self) -> usize {
        self.bits.count_ones()
    }

    /// The underlying per-cell bits.
    pub fn as_bits(&self) -> &BitVec {
        &self.bits
    }

    /// Gates a captured response row: masked positions become `0` (AND
    /// gating), everything else passes through.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the word width.
    pub fn apply(&self, row: &[Trit]) -> Vec<Trit> {
        assert_eq!(row.len(), self.bits.len(), "row/mask width mismatch");
        row.iter()
            .enumerate()
            .map(|(i, &t)| if self.bits.get(i) { Trit::Zero } else { t })
            .collect()
    }

    /// How many X's of `xmap` this word removes over the given patterns
    /// (or all patterns when `patterns` is `None`).
    pub fn x_removed(&self, xmap: &XMap, patterns: Option<&xhc_bits::PatternSet>) -> usize {
        xmap.iter()
            .filter(|(cell, _)| self.masks(xmap.config().linear_index(*cell)))
            .map(|(_, xs)| match patterns {
                Some(p) => xs.intersection_card(p),
                None => xs.card(),
            })
            .sum()
    }
}

/// Control-bit volume of conventional per-pattern X-masking (baseline \[5\]):
/// `L · C · P` — longest chain length × chains × patterns.
///
/// # Examples
///
/// ```
/// use xhc_misr::conventional_masking_bits;
/// use xhc_scan::ScanConfig;
///
/// // The paper's Fig. 6: 3 * 5 * 8 = 120 bits.
/// let cfg = ScanConfig::uniform(5, 3);
/// assert_eq!(conventional_masking_bits(&cfg, 8), 120);
/// ```
pub fn conventional_masking_bits(config: &ScanConfig, num_patterns: usize) -> u128 {
    config.mask_word_bits() as u128 * num_patterns as u128
}

/// Builds the unique fault-coverage-safe mask for a set of patterns: a cell
/// is masked iff it captures X under *every* pattern of the set, so no
/// observable (non-X) value is ever gated off.
///
/// This is the paper's §4 control-bit generation rule ("the proposed method
/// does not mask any scan cells if it loses non-X values").
pub fn safe_mask(xmap: &XMap, patterns: &xhc_bits::PatternSet) -> MaskWord {
    let mut bits = BitVec::zeros(xmap.config().total_cells());
    // An empty pattern set vacuously satisfies the subset test for every
    // cell; masking under it removes nothing, so mask nothing.
    if !patterns.is_empty() {
        for (cell, xs) in xmap.iter() {
            if patterns.is_subset_of(xs) {
                bits.set(xmap.config().linear_index(cell), true);
            }
        }
    }
    MaskWord { bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_bits::PatternSet;
    use xhc_scan::XMapBuilder;

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    #[test]
    fn conventional_bits_match_paper_fig6() {
        let cfg = ScanConfig::uniform(5, 3);
        assert_eq!(conventional_masking_bits(&cfg, 8), 120);
    }

    #[test]
    fn conventional_bits_match_table1() {
        // CKT-A: 505,050 cells * 3000 patterns = 1,515.15M bits. The
        // balanced chain layout keeps L*C slightly above the cell count
        // (ragged chains), so compare against the exact L*C product.
        let cfg = ScanConfig::balanced(505_050, 1000);
        let bits = conventional_masking_bits(&cfg, 3000);
        assert_eq!(bits, cfg.mask_word_bits() as u128 * 3000);
        assert!(bits >= 1_515_150_000);
    }

    #[test]
    fn apply_gates_only_masked_cells() {
        let cfg = ScanConfig::uniform(2, 2);
        let mut mask = MaskWord::none(&cfg);
        mask.mask(&cfg, CellId::new(0, 1));
        let row = vec![Trit::One, Trit::X, Trit::X, Trit::Zero];
        let gated = mask.apply(&row);
        assert_eq!(gated, vec![Trit::One, Trit::Zero, Trit::X, Trit::Zero]);
        assert_eq!(mask.count(), 1);
        assert!(mask.masks(1));
    }

    #[test]
    fn safe_mask_for_fig5_partition2() {
        // Partition 2 = {P2, P3, P7, P8}: only SC4[2] has X under all four
        // (the paper explicitly refuses to mask SC5[1], which has 3 of 4).
        let xmap = fig4_xmap();
        let part2 = PatternSet::from_patterns(8, [1, 2, 6, 7]);
        let mask = safe_mask(&xmap, &part2);
        assert_eq!(mask.count(), 1);
        assert!(mask.masks(xmap.config().linear_index(CellId::new(3, 2))));
        assert_eq!(mask.x_removed(&xmap, Some(&part2)), 4);
    }

    #[test]
    fn safe_mask_for_fig5_partition3() {
        // Partition 3 = {P1, P4, P5}: SC1[0], SC2[0], SC3[0] are X under
        // all three, and SC4[2] and SC5[1] as well.
        let xmap = fig4_xmap();
        let part3 = PatternSet::from_patterns(8, [0, 3, 4]);
        let mask = safe_mask(&xmap, &part3);
        let cfg = xmap.config();
        for cell in [
            CellId::new(0, 0),
            CellId::new(1, 0),
            CellId::new(2, 0),
            CellId::new(3, 2),
            CellId::new(4, 1),
        ] {
            assert!(mask.masks(cfg.linear_index(cell)), "{cell} must be masked");
        }
        // SC2[2] has X only under P1 and P5 -> not under P4 -> unmasked.
        assert!(!mask.masks(cfg.linear_index(CellId::new(1, 2))));
        assert_eq!(mask.count(), 5);
        assert_eq!(mask.x_removed(&xmap, Some(&part3)), 15);
    }

    #[test]
    fn safe_mask_never_covers_non_x() {
        // Property, paper §4: for every masked cell and every pattern in
        // the set, the cell is X.
        let xmap = fig4_xmap();
        for pats in [
            PatternSet::from_patterns(8, [0, 3, 4, 5]),
            PatternSet::from_patterns(8, [5]),
            PatternSet::all(8),
        ] {
            let mask = safe_mask(&xmap, &pats);
            for idx in 0..xmap.config().total_cells() {
                if mask.masks(idx) {
                    let cell = xmap.config().cell_at(idx);
                    for p in pats.iter() {
                        assert!(xmap.is_x(p, cell));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_partition_masks_nothing() {
        let xmap = fig4_xmap();
        let mask = safe_mask(&xmap, &PatternSet::empty(8));
        assert_eq!(mask.count(), 0);
    }
}
