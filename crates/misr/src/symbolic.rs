//! Symbolic MISR simulation over scan-cell symbols.
//!
//! Every MISR bit is a GF(2) linear combination of the scan-cell values
//! shifted in (the paper's Fig. 2). The symbolic simulator tracks, for each
//! MISR bit, the *set of scan cells* it depends on; splitting that set into
//! known (O) and unknown (X) symbols per pattern yields the X-dependency
//! matrix that Gaussian elimination reduces (Fig. 3).

use crate::misr::Taps;
use xhc_bits::{BitMatrix, BitVec};
use xhc_scan::{CellId, ScanConfig};

/// A MISR whose state bits are tracked as symbol sets instead of values.
///
/// The symbol universe is caller-defined (typically one symbol per scan
/// cell of one pattern, or per (pattern, cell) pair when compacting a block
/// of patterns into one signature).
///
/// # Examples
///
/// ```
/// use xhc_bits::BitVec;
/// use xhc_misr::{SymbolicMisr, Taps};
///
/// let mut sym = SymbolicMisr::new(4, Taps::default_for(4), 8);
/// // Cycle 0: symbol 0 arrives at stage 0, symbol 1 at stage 2.
/// sym.shift(&[vec![0], vec![], vec![1], vec![]]);
/// assert!(sym.rows()[0].get(0));
/// assert!(sym.rows()[2].get(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicMisr {
    rows: Vec<BitVec>,
    taps: Taps,
    universe: usize,
}

impl SymbolicMisr {
    /// A zero-seeded symbolic MISR of `m` bits over `universe` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or a tap is out of range.
    pub fn new(m: usize, taps: Taps, universe: usize) -> Self {
        assert!(m >= 2, "MISR size must be at least 2");
        assert!(
            taps.indices().iter().all(|&t| t < m),
            "tap index out of range for a {m}-bit MISR"
        );
        SymbolicMisr {
            rows: vec![BitVec::zeros(universe); m],
            taps,
            universe,
        }
    }

    /// Register width.
    pub fn size(&self) -> usize {
        self.rows.len()
    }

    /// Symbol universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The per-bit symbol sets (one row per MISR bit).
    pub fn rows(&self) -> &[BitVec] {
        &self.rows
    }

    /// One shift cycle. `stage_symbols[i]` lists the symbols XORed into
    /// stage `i` this cycle (several symbols when multiple chains feed one
    /// stage through a spreading network).
    ///
    /// # Panics
    ///
    /// Panics if `stage_symbols.len() != size()` or a symbol is out of the
    /// universe.
    pub fn shift(&mut self, stage_symbols: &[Vec<usize>]) {
        assert_eq!(
            stage_symbols.len(),
            self.size(),
            "one symbol list per MISR stage required"
        );
        let m = self.size();
        // Feedback row: XOR of tapped rows.
        let mut fb = BitVec::zeros(self.universe);
        for &t in self.taps.indices() {
            fb.xor_with(&self.rows[t]);
        }
        let mut next: Vec<BitVec> = Vec::with_capacity(m);
        for (i, syms) in stage_symbols.iter().enumerate() {
            let mut row = if i == 0 {
                fb.clone()
            } else {
                self.rows[i - 1].clone()
            };
            for &s in syms {
                assert!(s < self.universe, "symbol {s} out of universe");
                row.toggle(s);
            }
            next.push(row);
        }
        self.rows = next;
    }

    /// Unloads one captured pattern through the MISR.
    ///
    /// Chain `i` feeds MISR stage `i % m` (an XOR spreading network when
    /// there are more chains than MISR stages, the usual arrangement for
    /// industrial designs — e.g. CKT-A's ~1000 chains into a 32-bit MISR).
    /// Cycle `t` presents, for each chain, the cell at position
    /// `len - 1 - t` (the cell nearest scan-out exits first); short chains
    /// contribute nothing until their first cell reaches the output.
    ///
    /// `symbol_of` maps a scan cell to its symbol index (identity over
    /// linear indices for single-pattern signatures; offset by pattern for
    /// block signatures).
    pub fn unload_pattern<F: Fn(CellId) -> usize>(&mut self, config: &ScanConfig, symbol_of: F) {
        let m = self.size();
        let max_len = config.max_chain_len();
        for t in 0..max_len {
            let mut stage_symbols: Vec<Vec<usize>> = vec![Vec::new(); m];
            for chain in 0..config.num_chains() {
                // The canonical unload order lives in xhc-scan; sharing it
                // keeps the symbolic model and the cycle-stream model
                // (xhc_scan::unload_stream) identical by construction.
                if let Some(cell) = xhc_scan::unload_cell(config, chain, t) {
                    stage_symbols[chain % m].push(symbol_of(cell));
                }
            }
            self.shift(&stage_symbols);
        }
    }
}

/// The symbolic signature of a full single-pattern unload: one symbol per
/// scan cell (linear index), rows as in the paper's Fig. 2.
///
/// The result is pattern-independent — it is a property of the scan
/// topology and the MISR — which is what lets X-canceling control bits be
/// computed per pattern from X locations alone.
pub fn pattern_signature_rows(config: &ScanConfig, m: usize, taps: Taps) -> Vec<BitVec> {
    let mut sym = SymbolicMisr::new(m, taps, config.total_cells());
    sym.unload_pattern(config, |cell| config.linear_index(cell));
    sym.rows
}

/// Builds the X-dependency matrix for a signature: row `i`, column `j` is
/// set iff MISR bit `i` depends on the `j`-th X symbol.
///
/// `x_symbols` lists the symbol indices that are X (one column each, in
/// order).
pub fn x_dependency_matrix(rows: &[BitVec], x_symbols: &[usize]) -> BitMatrix {
    let mut dep = BitMatrix::zero(rows.len(), x_symbols.len());
    for (i, row) in rows.iter().enumerate() {
        for (j, &s) in x_symbols.iter().enumerate() {
            if row.get(s) {
                dep.set(i, j, true);
            }
        }
    }
    dep
}

/// Evaluates the known (O) part of every MISR bit: XOR of the values of
/// known symbols in its row. X symbols are skipped (`value(sym) == None`).
pub fn known_part_values<F: Fn(usize) -> Option<bool>>(rows: &[BitVec], value: F) -> BitVec {
    let mut out = BitVec::zeros(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let mut acc = false;
        for s in row.iter_ones() {
            if let Some(v) = value(s) {
                acc ^= v;
            }
        }
        out.set(i, acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::misr::Misr;
    use xhc_scan::ScanConfig;

    #[test]
    fn symbolic_matches_concrete_for_known_streams() {
        // Feed the same stream to a concrete MISR and through the symbolic
        // rows: the known-part evaluation must equal the concrete state.
        let m = 6;
        let taps = Taps::default_for(m);
        let cfg = ScanConfig::uniform(3, 4); // 12 cells
        let rows = pattern_signature_rows(&cfg, m, taps.clone());

        // Concrete unload of a fixed response vector.
        let values: Vec<bool> = (0..12).map(|i| i % 3 == 0 || i % 5 == 0).collect();
        let mut misr = Misr::new(m, taps);
        let max_len = cfg.max_chain_len();
        for t in 0..max_len {
            let mut inputs = BitVec::zeros(m);
            for chain in 0..cfg.num_chains() {
                let len = cfg.chain_len(chain);
                let lead = max_len - len;
                if t < lead {
                    continue;
                }
                let pos = len - 1 - (t - lead);
                let idx = cfg.linear_index(CellId::new(chain, pos));
                if values[idx] {
                    inputs.toggle(chain % m);
                }
            }
            misr.shift(&inputs);
        }

        let predicted = known_part_values(&rows, |s| Some(values[s]));
        assert_eq!(&predicted, misr.state());
    }

    #[test]
    fn every_cell_appears_in_some_row() {
        // No captured value silently vanishes from the signature equations
        // before cancellation (feedback may cancel a symbol from a single
        // row, but not from all rows simultaneously for sane taps).
        let cfg = ScanConfig::uniform(5, 3);
        let rows = pattern_signature_rows(&cfg, 6, Taps::default_for(6));
        for cell in 0..cfg.total_cells() {
            assert!(
                rows.iter().any(|r| r.get(cell)),
                "cell {cell} lost from the signature"
            );
        }
    }

    #[test]
    fn ragged_chains_unload_aligned() {
        let cfg = ScanConfig::new(vec![3, 1, 2]);
        let rows = pattern_signature_rows(&cfg, 4, Taps::default_for(4));
        // All 6 cells appear somewhere.
        for cell in 0..6 {
            assert!(rows.iter().any(|r| r.get(cell)));
        }
    }

    #[test]
    fn x_dependency_matrix_shape() {
        let cfg = ScanConfig::uniform(2, 3);
        let rows = pattern_signature_rows(&cfg, 4, Taps::default_for(4));
        let dep = x_dependency_matrix(&rows, &[0, 5]);
        assert_eq!(dep.num_rows(), 4);
        assert_eq!(dep.num_cols(), 2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(dep.get(i, 0), row.get(0));
            assert_eq!(dep.get(i, 1), row.get(5));
        }
    }

    #[test]
    fn more_chains_than_misr_stages() {
        // 10 chains into a 4-bit MISR via the mod-m spreading network.
        let cfg = ScanConfig::uniform(10, 2);
        let rows = pattern_signature_rows(&cfg, 4, Taps::default_for(4));
        assert_eq!(rows.len(), 4);
        for cell in 0..cfg.total_cells() {
            assert!(rows.iter().any(|r| r.get(cell)));
        }
    }

    #[test]
    #[should_panic(expected = "one symbol list per MISR stage")]
    fn shift_checks_stage_count() {
        SymbolicMisr::new(4, Taps::default_for(4), 8).shift(&[vec![0]]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn shift_checks_symbol_range() {
        SymbolicMisr::new(2, Taps::default_for(2), 4).shift(&[vec![4], vec![]]);
    }
}
