//! MISR-based output-response compaction: concrete and symbolic MISRs, the
//! X-masking front end and the X-canceling MISR.
//!
//! This crate implements both X-handling baselines the paper builds on:
//!
//! * **X-masking** ([`MaskWord`], [`safe_mask`],
//!   [`conventional_masking_bits`]) — AND gates in front of the compactor
//!   driven by per-cycle control bits (baseline \[5\], Fig. 1);
//! * **X-canceling MISR** ([`XCancelingMisr`], [`XCancelConfig`],
//!   [`CancelSession`]) — symbolic simulation of the MISR ([`SymbolicMisr`],
//!   Fig. 2), Gaussian elimination of the X-dependency matrix and selective
//!   XOR of X-free signature combinations (Fig. 3), plus the
//!   time-multiplexed halting schedule of \[11\] that drives the paper's
//!   test-time model.
//!
//! The hybrid architecture and the pattern-partitioning algorithm that tie
//! these together live in `xhc-core`.
//!
//! # Examples
//!
//! ```
//! use xhc_logic::Trit;
//! use xhc_misr::{Taps, XCancelingMisr};
//! use xhc_scan::ScanConfig;
//!
//! // Cancel the X's of one captured pattern on a 6-cell design.
//! let scan = ScanConfig::uniform(3, 2);
//! let xc = XCancelingMisr::new(scan, 6, Taps::default_for(6));
//! let row = vec![Trit::One, Trit::X, Trit::Zero, Trit::One, Trit::X, Trit::Zero];
//! let outcome = xc.cancel_pattern(&row);
//! assert_eq!(outcome.num_x, 2);
//! // Every extracted combination is X-free and usable as a signature.
//! assert_eq!(outcome.control_bits, 6 * outcome.combinations.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canceling;
mod masking;
mod misr;
mod session;
mod shadow;
mod symbolic;

pub use canceling::{PatternCancelOutcome, XCancelConfig, XCancelingMisr};
pub use masking::{conventional_masking_bits, safe_mask, MaskWord};
pub use misr::{Misr, Taps};
pub use session::{BlockOutcome, CancelSession, SessionReport};
pub use shadow::{shadow_cancel_report, ShadowCancelReport};
pub use symbolic::{known_part_values, pattern_signature_rows, x_dependency_matrix, SymbolicMisr};
