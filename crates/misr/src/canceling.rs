//! The X-canceling MISR architecture (Touba, ITC'07; Yang & Touba,
//! TCAD'12 — the paper's baseline \[12\]).

use crate::misr::Taps;
use crate::symbolic::{known_part_values, pattern_signature_rows, x_dependency_matrix};
use xhc_bits::{gauss, BitVec};
use xhc_logic::Trit;
use xhc_scan::ScanConfig;

/// The (m, q) configuration of an X-canceling MISR and its control-bit /
/// halt accounting, straight from the paper's formulas.
///
/// * `m` — MISR size (the paper's experiments use 32);
/// * `q` — number of X-free combinations extracted per halt (paper: 7).
///
/// Control bits: `m · q · totalX / (m − q)`.
/// Halts: `totalX / (m − q)`.
///
/// # Examples
///
/// ```
/// use xhc_misr::XCancelConfig;
///
/// let cfg = XCancelConfig::new(32, 7);
/// // The paper's CKT-B: ~2.97M X's -> ~26.6M control bits.
/// let bits = cfg.control_bits(2_965_402);
/// assert!((bits / 1e6 - 26.57).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XCancelConfig {
    m: usize,
    q: usize,
}

impl XCancelConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < m`.
    pub fn new(m: usize, q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(q < m, "q must be smaller than the MISR size");
        XCancelConfig { m, q }
    }

    /// The paper's experimental configuration: m = 32, q = 7.
    pub fn paper_default() -> Self {
        XCancelConfig::new(32, 7)
    }

    /// MISR size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// X-free combinations extracted per halt.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Control-bit volume for canceling `total_x` unknowns (fractional, as
    /// the paper computes it).
    pub fn control_bits(&self, total_x: usize) -> f64 {
        self.m as f64 * self.q as f64 * total_x as f64 / (self.m - self.q) as f64
    }

    /// Control-bit volume rounded up to whole bits.
    pub fn control_bits_ceil(&self, total_x: usize) -> u128 {
        self.control_bits(total_x).ceil() as u128
    }

    /// Number of times the time-multiplexed MISR halts scan shifting.
    pub fn halts(&self, total_x: usize) -> f64 {
        total_x as f64 / (self.m - self.q) as f64
    }

    /// Normalized test time per the paper's §5 formula (from \[11\]):
    /// `1 + n · x · q / (m − q)` with `n` scan chains and X-density `x`
    /// (as a fraction) entering the MISR.
    pub fn normalized_test_time(&self, num_chains: usize, x_density: f64) -> f64 {
        1.0 + num_chains as f64 * x_density * self.q as f64 / (self.m - self.q) as f64
    }
}

/// The outcome of X-canceling one captured pattern.
#[derive(Debug, Clone)]
pub struct PatternCancelOutcome {
    /// How many response bits were X.
    pub num_x: usize,
    /// The X-free combinations found (one [`BitVec`] over MISR bits each).
    pub combinations: Vec<BitVec>,
    /// The observed value of each combination (computable from known
    /// response bits only — that is the whole point).
    pub canceled_values: BitVec,
    /// Control bits consumed: `m` select bits per combination.
    pub control_bits: usize,
}

/// An operational X-canceling MISR bound to a scan topology.
///
/// Symbolically simulates the unload of each pattern, Gaussian-eliminates
/// the X-dependency matrix and extracts X-free signature combinations —
/// the paper's Figs. 2–3 flow, end to end.
///
/// # Examples
///
/// ```
/// use xhc_logic::Trit;
/// use xhc_misr::{Taps, XCancelingMisr};
/// use xhc_scan::ScanConfig;
///
/// let cfg = ScanConfig::uniform(3, 2);
/// let xc = XCancelingMisr::new(cfg, 6, Taps::default_for(6));
/// let row = vec![Trit::One, Trit::X, Trit::Zero, Trit::Zero, Trit::One, Trit::X];
/// let out = xc.cancel_pattern(&row);
/// assert_eq!(out.num_x, 2);
/// assert!(out.combinations.len() >= 6 - 2); // nullity >= m - #X
/// ```
#[derive(Debug, Clone)]
pub struct XCancelingMisr {
    config: ScanConfig,
    m: usize,
    rows: Vec<BitVec>,
}

impl XCancelingMisr {
    /// Builds the symbolic signature for `config` unloaded into an `m`-bit
    /// MISR with the given feedback taps.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or a tap is out of range.
    pub fn new(config: ScanConfig, m: usize, taps: Taps) -> Self {
        let rows = pattern_signature_rows(&config, m, taps);
        XCancelingMisr { config, m, rows }
    }

    /// The scan topology.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// MISR size.
    pub fn size(&self) -> usize {
        self.m
    }

    /// The symbolic signature rows (one symbol set per MISR bit).
    pub fn rows(&self) -> &[BitVec] {
        &self.rows
    }

    /// Cancels the X's of one captured response row (linear cell order).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != config.total_cells()`.
    pub fn cancel_pattern(&self, row: &[Trit]) -> PatternCancelOutcome {
        assert_eq!(
            row.len(),
            self.config.total_cells(),
            "response row length mismatch"
        );
        let x_cells: Vec<usize> = (0..row.len()).filter(|&i| row[i].is_x()).collect();
        let dep = x_dependency_matrix(&self.rows, &x_cells);
        let combinations = gauss::x_free_combinations(&dep);

        // Known part of every MISR bit, then XOR per combination.
        let known = known_part_values(&self.rows, |s| row[s].to_bool());
        let mut canceled_values = BitVec::zeros(combinations.len());
        for (ci, combo) in combinations.iter().enumerate() {
            let mut acc = false;
            for bit in combo.iter_ones() {
                acc ^= known.get(bit);
            }
            canceled_values.set(ci, acc);
        }
        let control_bits = self.m * combinations.len();
        PatternCancelOutcome {
            num_x: x_cells.len(),
            combinations,
            canceled_values,
            control_bits,
        }
    }

    /// Which scan cells remain observable through the X-free combinations
    /// of a pattern whose X cells are `x_cells` (linear indices).
    ///
    /// A single-bit error in cell `c` is detected iff some X-free
    /// combination's combined symbol set contains `c`. Returns one bit per
    /// cell.
    pub fn observable_cells(&self, x_cells: &[usize]) -> BitVec {
        let dep = x_dependency_matrix(&self.rows, x_cells);
        let combos = gauss::x_free_combinations(&dep);
        let mut observable = BitVec::zeros(self.config.total_cells());
        for combo in &combos {
            let mut combined = BitVec::zeros(self.config.total_cells());
            for bit in combo.iter_ones() {
                combined.xor_with(&self.rows[bit]);
            }
            observable.union_with(&combined);
        }
        observable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (ScanConfig, XCancelingMisr) {
        let cfg = ScanConfig::uniform(3, 3); // 9 cells
        let xc = XCancelingMisr::new(cfg.clone(), 6, Taps::default_for(6));
        (cfg, xc)
    }

    #[test]
    fn paper_accounting_formulas() {
        let c = XCancelConfig::paper_default();
        assert_eq!(c.m(), 32);
        assert_eq!(c.q(), 7);
        // m*q/(m-q) = 224/25 = 8.96 bits per X.
        assert!((c.control_bits(100) - 896.0).abs() < 1e-9);
        assert_eq!(c.control_bits_ceil(1), 9);
        assert!((c.halts(50) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_test_time_formula() {
        let c = XCancelConfig::paper_default();
        // CKT-B: n = 75 chains, x = 2.75% -> 1.58 (paper Table 1).
        let t = c.normalized_test_time(75, 0.0275);
        assert!((t - 1.5775).abs() < 1e-9);
        // CKT-A: n = 1000, x = 0.05% -> 1.14.
        let t = c.normalized_test_time(1000, 0.0005);
        assert!((t - 1.14).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "q must be smaller")]
    fn q_must_be_less_than_m() {
        XCancelConfig::new(8, 8);
    }

    #[test]
    fn x_free_values_do_not_depend_on_x() {
        // Replace the X's by every combination of concrete values: the
        // canceled signature values must never change.
        let (cfg, xc) = toy();
        let mut row = vec![Trit::Zero; 9];
        row[1] = Trit::X;
        row[4] = Trit::One;
        row[7] = Trit::X;
        let base = xc.cancel_pattern(&row);
        assert_eq!(base.num_x, 2);
        assert!(!base.combinations.is_empty());

        for xa in [false, true] {
            for xb in [false, true] {
                let mut concrete = row.clone();
                concrete[1] = Trit::from_bool(xa);
                concrete[7] = Trit::from_bool(xb);
                // Evaluate each combination on the fully known row.
                let known = known_part_values(xc.rows(), |s| concrete[s].to_bool());
                for (ci, combo) in base.combinations.iter().enumerate() {
                    let mut acc = false;
                    for bit in combo.iter_ones() {
                        acc ^= known.get(bit);
                    }
                    assert_eq!(
                        acc,
                        base.canceled_values.get(ci),
                        "canceled value changed with X assignment ({xa},{xb})"
                    );
                }
            }
        }
        let _ = cfg;
    }

    #[test]
    fn no_x_keeps_full_rank_of_combinations() {
        let (_, xc) = toy();
        let row = vec![Trit::Zero; 9];
        let out = xc.cancel_pattern(&row);
        assert_eq!(out.num_x, 0);
        // Zero X's: all m rows are X-free.
        assert_eq!(out.combinations.len(), 6);
        assert_eq!(out.control_bits, 36);
    }

    #[test]
    fn too_many_x_can_wipe_out_combinations() {
        let (_, xc) = toy();
        let row = vec![Trit::X; 9];
        let out = xc.cancel_pattern(&row);
        assert_eq!(out.num_x, 9);
        // With more X's than MISR bits combinations may or may not exist;
        // they can only come from X columns that alias. Whatever is found
        // must be genuinely X-free.
        for combo in &out.combinations {
            let mut combined = BitVec::zeros(9);
            for bit in combo.iter_ones() {
                combined.xor_with(&xc.rows()[bit]);
            }
            assert!(
                combined.none(),
                "an all-X row only yields combos whose symbols fully cancel"
            );
        }
    }

    #[test]
    fn observable_cells_excludes_x_dependents() {
        let (_, xc) = toy();
        let x_cells = vec![2usize, 5];
        let obs = xc.observable_cells(&x_cells);
        // No observable combination may depend on an X cell.
        assert!(!obs.get(2));
        assert!(!obs.get(5));
        // Most other cells should remain observable with only 2 X's in a
        // 6-bit MISR.
        let observable_known = (0..9).filter(|&c| c != 2 && c != 5 && obs.get(c)).count();
        assert!(observable_known >= 4, "got {observable_known}");
    }

    #[test]
    fn control_bits_scale_with_combinations() {
        let (_, xc) = toy();
        let mut row = vec![Trit::Zero; 9];
        row[0] = Trit::X;
        let out = xc.cancel_pattern(&row);
        assert_eq!(out.control_bits, 6 * out.combinations.len());
    }
}
