//! The shadow-register X-canceling MISR variant of \[11\].
//!
//! The time-multiplexed X-canceling MISR ([`crate::CancelSession`]) halts
//! scan shifting at every extraction, costing test time. The *shadow
//! register* variant copies the MISR state into a shadow register at each
//! halt point and extracts X-free combinations from the shadow while scan
//! shifting continues — zero test-time overhead, but the selective-XOR
//! select bits must now stream *concurrently* with scan data, which
//! requires additional tester channels.
//!
//! The paper explicitly excludes this variant from its Table-1 comparison
//! ("Since it requires additional input tester channels, it does not
//! provide fair comparison results"); it is modeled here so the design
//! space is complete and the exclusion is quantified.

use crate::canceling::XCancelConfig;
use xhc_scan::ScanConfig;

/// Accounting for the shadow-register X-canceling MISR.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowCancelReport {
    /// Selective-XOR control bits (identical to the time-multiplexed
    /// variant — the shadow register changes *when* they stream, not how
    /// many).
    pub control_bits: f64,
    /// Extraction events (one per `m − q` accumulated X's).
    pub extractions: usize,
    /// Peak extra tester channels needed so each extraction's `m·q`
    /// select bits finish streaming within one extraction window.
    pub extra_channels: usize,
    /// Normalized test time — always 1.0, the variant's selling point.
    pub normalized_test_time: f64,
}

/// Computes the shadow-register variant's accounting for a workload with
/// `total_x` unknowns spread over `num_patterns` patterns.
///
/// The channel requirement is the paper's stated reason for exclusion:
/// between consecutive extractions the scan shifts one *budget window* —
/// the cycles in which `m − q` new X's arrive. With X's spread uniformly,
/// that window is `total_cycles / extractions` cycles long, and `m·q`
/// select bits must stream inside it.
///
/// # Examples
///
/// ```
/// use xhc_misr::{shadow_cancel_report, XCancelConfig};
/// use xhc_scan::ScanConfig;
///
/// let scan = ScanConfig::balanced(36_075, 75);
/// let report = shadow_cancel_report(
///     &scan, 3000, 2_965_402, XCancelConfig::paper_default(),
/// );
/// assert_eq!(report.normalized_test_time, 1.0);
/// assert!(report.extra_channels >= 1); // the unfairness, quantified
/// ```
pub fn shadow_cancel_report(
    scan: &ScanConfig,
    num_patterns: usize,
    total_x: usize,
    cancel: XCancelConfig,
) -> ShadowCancelReport {
    let budget = cancel.m() - cancel.q();
    let extractions = total_x.div_ceil(budget.max(1));
    let total_cycles = num_patterns * scan.max_chain_len() + scan.max_chain_len();
    let window = total_cycles
        .checked_div(extractions)
        .unwrap_or(total_cycles)
        .max(1);
    let select_bits = cancel.m() * cancel.q();
    let extra_channels = if extractions == 0 {
        0
    } else {
        select_bits.div_ceil(window)
    };
    ShadowCancelReport {
        control_bits: cancel.control_bits(total_x),
        extractions,
        extra_channels,
        normalized_test_time: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_x_needs_nothing() {
        let scan = ScanConfig::uniform(4, 10);
        let r = shadow_cancel_report(&scan, 100, 0, XCancelConfig::new(8, 2));
        assert_eq!(r.extractions, 0);
        assert_eq!(r.control_bits, 0.0);
        assert_eq!(r.extra_channels, 0);
    }

    #[test]
    fn control_bits_match_time_multiplexed() {
        let scan = ScanConfig::uniform(4, 10);
        let cancel = XCancelConfig::new(8, 2);
        let r = shadow_cancel_report(&scan, 100, 50, cancel);
        assert_eq!(r.control_bits, cancel.control_bits(50));
        assert_eq!(r.normalized_test_time, 1.0);
    }

    #[test]
    fn dense_x_needs_more_channels() {
        let scan = ScanConfig::uniform(4, 10);
        let cancel = XCancelConfig::new(8, 2);
        let sparse = shadow_cancel_report(&scan, 1000, 100, cancel);
        let dense = shadow_cancel_report(&scan, 1000, 50_000, cancel);
        assert!(dense.extra_channels >= sparse.extra_channels);
        assert!(dense.extractions > sparse.extractions);
    }

    #[test]
    fn paper_scale_requires_extra_channels() {
        // CKT-B-shaped: the select stream cannot hide in spare channels
        // at 2.75% X-density — the paper's fairness objection.
        let scan = ScanConfig::balanced(36_075, 75);
        let r = shadow_cancel_report(&scan, 3000, 2_965_402, XCancelConfig::paper_default());
        assert!(r.extra_channels >= 18, "got {}", r.extra_channels);
    }
}
