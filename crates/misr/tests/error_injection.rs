//! Error-injection tests: the X-free signatures must actually *detect*
//! errors — the whole reason the compactor exists — and must be blind
//! exactly where the theory says (X-dependent cells).

use xhc_logic::Trit;
use xhc_misr::{known_part_values, Taps, XCancelingMisr};
use xhc_scan::ScanConfig;

fn eval_combos(xc: &XCancelingMisr, combos: &[xhc_bits::BitVec], row: &[Trit]) -> Vec<bool> {
    let known = known_part_values(xc.rows(), |s| row[s].to_bool());
    combos
        .iter()
        .map(|combo| {
            let mut acc = false;
            for bit in combo.iter_ones() {
                acc ^= known.get(bit);
            }
            acc
        })
        .collect()
}

#[test]
fn single_bit_error_at_observable_cell_is_detected() {
    let scan = ScanConfig::uniform(4, 4); // 16 cells
    let xc = XCancelingMisr::new(scan, 8, Taps::default_for(8));
    let mut row = vec![Trit::Zero; 16];
    row[3] = Trit::X;
    row[9] = Trit::X;
    let outcome = xc.cancel_pattern(&row);
    let x_cells = vec![3usize, 9];
    let observable = xc.observable_cells(&x_cells);
    let baseline = eval_combos(&xc, &outcome.combinations, &row);

    let mut checked = 0;
    for cell in 0..16 {
        if !observable.get(cell) || row[cell].is_x() {
            continue;
        }
        let mut faulty = row.clone();
        faulty[cell] = !faulty[cell];
        let got = eval_combos(&xc, &outcome.combinations, &faulty);
        assert_ne!(
            got, baseline,
            "flip at observable cell {cell} must change some signature"
        );
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} observable cells exercised");
}

#[test]
fn error_at_x_cell_is_invisible() {
    // An error on an X cell is, by definition, indistinguishable: the
    // canceled signatures do not depend on X symbols at all.
    let scan = ScanConfig::uniform(4, 4);
    let xc = XCancelingMisr::new(scan, 8, Taps::default_for(8));
    let mut row = vec![Trit::One; 16];
    row[5] = Trit::X;
    let outcome = xc.cancel_pattern(&row);
    let baseline = eval_combos(&xc, &outcome.combinations, &row);

    for forced in [Trit::Zero, Trit::One] {
        let mut variant = row.clone();
        variant[5] = forced;
        let got = eval_combos(&xc, &outcome.combinations, &variant);
        assert_eq!(got, baseline, "X cell value must not matter");
    }
}

#[test]
fn unobservable_known_cell_errors_escape() {
    // With many X's, some known cells become unobservable (every
    // combination containing them was sacrificed). Errors there escape —
    // exactly the coverage cost the fault simulator charges the
    // X-canceling MISR for.
    let scan = ScanConfig::uniform(4, 4);
    let xc = XCancelingMisr::new(scan.clone(), 8, Taps::default_for(8));
    let mut row = vec![Trit::Zero; 16];
    let x_cells: Vec<usize> = vec![0, 2, 4, 6, 8, 10];
    for &c in &x_cells {
        row[c] = Trit::X;
    }
    let outcome = xc.cancel_pattern(&row);
    let observable = xc.observable_cells(&x_cells);
    let baseline = eval_combos(&xc, &outcome.combinations, &row);

    let blind: Vec<usize> = (0..16)
        .filter(|&c| !observable.get(c) && row[c].is_known())
        .collect();
    for &cell in &blind {
        let mut faulty = row.clone();
        faulty[cell] = !faulty[cell];
        let got = eval_combos(&xc, &outcome.combinations, &faulty);
        assert_eq!(
            got, baseline,
            "cell {cell} is unobservable; its error must escape"
        );
    }
}

#[test]
fn masking_front_end_restores_observability() {
    // The hybrid's point, at signature level: masking the X cells (they
    // were all-X here) leaves zero X's for the MISR, so *every* cell that
    // reaches the signature is observable again.
    let scan = ScanConfig::uniform(4, 4);
    let xc = XCancelingMisr::new(scan.clone(), 8, Taps::default_for(8));
    let x_cells: Vec<usize> = vec![0, 2, 4, 6, 8, 10];

    let blind_before = {
        let obs = xc.observable_cells(&x_cells);
        (0..16).filter(|&c| !obs.get(c)).count()
    };
    // After masking: the masked cells shift in as constant 0 -> no X's.
    let obs_after = xc.observable_cells(&[]);
    let blind_after = (0..16).filter(|&c| !obs_after.get(c)).count();
    assert!(blind_before > blind_after);
    assert_eq!(blind_after, 0, "no X's -> full signature observability");
}
