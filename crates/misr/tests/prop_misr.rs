//! Property tests: the symbolic MISR agrees with the concrete hardware,
//! and X-canceling really is X-independent.

use proptest::prelude::*;
use xhc_bits::BitVec;
use xhc_logic::Trit;
use xhc_misr::{
    known_part_values, pattern_signature_rows, Misr, Taps, XCancelConfig, XCancelingMisr,
};
use xhc_scan::{CellId, ScanConfig, ScanHarness};

fn arb_shape() -> impl Strategy<Value = (usize, usize, usize)> {
    // (chains, chain length, misr size)
    (1usize..6, 1usize..6, 2usize..8)
}

fn unload_concrete(cfg: &ScanConfig, m: usize, taps: &Taps, values: &[bool]) -> BitVec {
    let mut misr = Misr::new(m, taps.clone());
    let max_len = cfg.max_chain_len();
    for t in 0..max_len {
        let mut inputs = BitVec::zeros(m);
        for chain in 0..cfg.num_chains() {
            let len = cfg.chain_len(chain);
            let lead = max_len - len;
            if t < lead {
                continue;
            }
            let pos = len - 1 - (t - lead);
            let idx = cfg.linear_index(CellId::new(chain, pos));
            if values[idx] {
                inputs.toggle(chain % m);
            }
        }
        misr.shift(&inputs);
    }
    misr.state().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The symbolic signature predicts the concrete MISR for every
    /// X-free response, on every scan shape.
    #[test]
    fn symbolic_predicts_concrete(
        (chains, len, m) in arb_shape(),
        value_bits in any::<u64>(),
    ) {
        let cfg = ScanConfig::uniform(chains, len);
        let taps = Taps::default_for(m);
        let rows = pattern_signature_rows(&cfg, m, taps.clone());
        let values: Vec<bool> = (0..cfg.total_cells())
            .map(|i| value_bits >> (i % 64) & 1 == 1)
            .collect();
        let predicted = known_part_values(&rows, |s| Some(values[s]));
        let concrete = unload_concrete(&cfg, m, &taps, &values);
        prop_assert_eq!(predicted, concrete);
    }

    /// Canceled signature values never depend on the X assignment:
    /// substitute arbitrary values for the X's, re-evaluate the chosen
    /// combinations, and the observed values are unchanged.
    #[test]
    fn canceled_values_are_x_invariant(
        (chains, len, m) in arb_shape(),
        x_mask in any::<u32>(),
        value_bits in any::<u64>(),
        x_assignment in any::<u32>(),
    ) {
        let cfg = ScanConfig::uniform(chains, len);
        let cells = cfg.total_cells();
        let xc = XCancelingMisr::new(cfg, m, Taps::default_for(m));
        let row: Vec<Trit> = (0..cells)
            .map(|i| {
                if x_mask >> (i % 32) & 1 == 1 {
                    Trit::X
                } else {
                    Trit::from_bool(value_bits >> (i % 64) & 1 == 1)
                }
            })
            .collect();
        let outcome = xc.cancel_pattern(&row);

        // Concretize the X's arbitrarily.
        let concrete: Vec<Trit> = row
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if t.is_x() {
                    Trit::from_bool(x_assignment >> (i % 32) & 1 == 1)
                } else {
                    t
                }
            })
            .collect();
        let known = known_part_values(xc.rows(), |s| concrete[s].to_bool());
        for (ci, combo) in outcome.combinations.iter().enumerate() {
            let mut acc = false;
            for bit in combo.iter_ones() {
                acc ^= known.get(bit);
            }
            prop_assert_eq!(acc, outcome.canceled_values.get(ci));
        }
    }

    /// The number of X-free combinations is at least m - #X (equality when
    /// the X columns are independent), and the control-bit count follows.
    #[test]
    fn combination_count_bound(
        (chains, len, m) in arb_shape(),
        x_mask in any::<u32>(),
    ) {
        let cfg = ScanConfig::uniform(chains, len);
        let cells = cfg.total_cells();
        let xc = XCancelingMisr::new(cfg, m, Taps::default_for(m));
        let row: Vec<Trit> = (0..cells)
            .map(|i| {
                if x_mask >> (i % 32) & 1 == 1 {
                    Trit::X
                } else {
                    Trit::Zero
                }
            })
            .collect();
        let outcome = xc.cancel_pattern(&row);
        prop_assert!(outcome.combinations.len() >= m.saturating_sub(outcome.num_x));
        prop_assert_eq!(outcome.control_bits, m * outcome.combinations.len());
    }

    /// Observable cells through X-free combinations never include an X
    /// cell, and with zero X's every cell that reaches the signature is
    /// observable.
    #[test]
    fn observability_soundness(
        (chains, len, m) in arb_shape(),
        x_mask in any::<u32>(),
    ) {
        let cfg = ScanConfig::uniform(chains, len);
        let cells = cfg.total_cells();
        let xc = XCancelingMisr::new(cfg.clone(), m, Taps::default_for(m));
        let x_cells: Vec<usize> = (0..cells).filter(|i| x_mask >> (i % 32) & 1 == 1).collect();
        let obs = xc.observable_cells(&x_cells);
        for &x in &x_cells {
            prop_assert!(!obs.get(x), "X cell {x} claimed observable");
        }
        if x_cells.is_empty() {
            for c in 0..cells {
                prop_assert!(obs.get(c), "cell {c} lost with zero X's");
            }
        }
    }

    /// MISR linearity over random streams (the algebraic foundation of
    /// symbolic X-canceling).
    #[test]
    fn misr_is_linear(
        m in 2usize..10,
        a_bits in any::<u64>(),
        b_bits in any::<u64>(),
        cycles in 1usize..12,
    ) {
        let taps = Taps::default_for(m);
        let stream = |bits: u64| -> Vec<BitVec> {
            (0..cycles)
                .map(|t| {
                    BitVec::from_bools((0..m).map(|i| bits >> ((t * m + i) % 64) & 1 == 1))
                })
                .collect()
        };
        let run = |streams: &[BitVec]| {
            let mut misr = Misr::new(m, taps.clone());
            for s in streams {
                misr.shift(s);
            }
            misr.state().clone()
        };
        let sa = stream(a_bits);
        let sb = stream(b_bits);
        let sum: Vec<BitVec> = sa
            .iter()
            .zip(&sb)
            .map(|(x, y)| {
                let mut s = x.clone();
                s.xor_with(y);
                s
            })
            .collect();
        let mut expect = run(&sa);
        expect.xor_with(&run(&sb));
        prop_assert_eq!(run(&sum), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: captured responses from a real circuit, canceled per
    /// pattern — every canceled value must be reproducible from the
    /// response's known bits alone.
    #[test]
    fn circuit_responses_cancel_consistently(seed in 0u64..200) {
        use xhc_logic::generate::CircuitSpec;
        let circuit = CircuitSpec {
            num_inputs: 6,
            num_gates: 60,
            num_scan_flops: 8,
            num_shadow_flops: 1,
            num_buses: 1,
            seed,
            ..CircuitSpec::default()
        }
        .generate();
        let cfg = ScanConfig::uniform(2, 4);
        let harness = ScanHarness::new(&circuit.netlist, cfg.clone(), circuit.scan_flops.clone())
            .expect("valid mapping");
        let pattern = xhc_scan::TestPattern {
            scan_load: vec![Trit::Zero; 8],
            inputs: vec![Trit::One; 6],
        };
        let responses = harness.run(&[pattern]);
        let row = responses.row(0);
        let xc = XCancelingMisr::new(cfg, 6, Taps::default_for(6));
        let outcome = xc.cancel_pattern(&row);
        let cancel = XCancelConfig::new(6, 2);
        // Accounting sanity: formula bits >= 0 and combos valid.
        prop_assert!(cancel.control_bits(outcome.num_x) >= 0.0);
        for combo in &outcome.combinations {
            prop_assert!(combo.any());
        }
    }
}
