//! Randomized tests: the symbolic MISR agrees with the concrete hardware,
//! and X-canceling really is X-independent (deterministic seeded loops).

use xhc_bits::BitVec;
use xhc_logic::Trit;
use xhc_misr::{
    known_part_values, pattern_signature_rows, Misr, Taps, XCancelConfig, XCancelingMisr,
};
use xhc_prng::XhcRng;
use xhc_scan::{CellId, ScanConfig, ScanHarness};

/// A random (chains, chain length, misr size) shape.
fn random_shape(rng: &mut XhcRng) -> (usize, usize, usize) {
    (
        rng.gen_range(1..6),
        rng.gen_range(1..6),
        rng.gen_range(2..8),
    )
}

fn unload_concrete(cfg: &ScanConfig, m: usize, taps: &Taps, values: &[bool]) -> BitVec {
    let mut misr = Misr::new(m, taps.clone());
    let max_len = cfg.max_chain_len();
    for t in 0..max_len {
        let mut inputs = BitVec::zeros(m);
        for chain in 0..cfg.num_chains() {
            let len = cfg.chain_len(chain);
            let lead = max_len - len;
            if t < lead {
                continue;
            }
            let pos = len - 1 - (t - lead);
            let idx = cfg.linear_index(CellId::new(chain, pos));
            if values[idx] {
                inputs.toggle(chain % m);
            }
        }
        misr.shift(&inputs);
    }
    misr.state().clone()
}

/// The symbolic signature predicts the concrete MISR for every X-free
/// response, on every scan shape.
#[test]
fn symbolic_predicts_concrete() {
    let mut rng = XhcRng::seed_from_u64(0xA150);
    for _ in 0..64 {
        let (chains, len, m) = random_shape(&mut rng);
        let cfg = ScanConfig::uniform(chains, len);
        let taps = Taps::default_for(m);
        let rows = pattern_signature_rows(&cfg, m, taps.clone());
        let values: Vec<bool> = (0..cfg.total_cells()).map(|_| rng.gen_bool(0.5)).collect();
        let predicted = known_part_values(&rows, |s| Some(values[s]));
        let concrete = unload_concrete(&cfg, m, &taps, &values);
        assert_eq!(predicted, concrete);
    }
}

/// Canceled signature values never depend on the X assignment:
/// substitute arbitrary values for the X's, re-evaluate the chosen
/// combinations, and the observed values are unchanged.
#[test]
fn canceled_values_are_x_invariant() {
    let mut rng = XhcRng::seed_from_u64(0xA151);
    for _ in 0..64 {
        let (chains, len, m) = random_shape(&mut rng);
        let cfg = ScanConfig::uniform(chains, len);
        let cells = cfg.total_cells();
        let xc = XCancelingMisr::new(cfg, m, Taps::default_for(m));
        let row: Vec<Trit> = (0..cells)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Trit::X
                } else {
                    Trit::from_bool(rng.gen_bool(0.5))
                }
            })
            .collect();
        let outcome = xc.cancel_pattern(&row);

        // Concretize the X's arbitrarily.
        let concrete: Vec<Trit> = row
            .iter()
            .map(|&t| {
                if t.is_x() {
                    Trit::from_bool(rng.gen_bool(0.5))
                } else {
                    t
                }
            })
            .collect();
        let known = known_part_values(xc.rows(), |s| concrete[s].to_bool());
        for (ci, combo) in outcome.combinations.iter().enumerate() {
            let mut acc = false;
            for bit in combo.iter_ones() {
                acc ^= known.get(bit);
            }
            assert_eq!(acc, outcome.canceled_values.get(ci));
        }
    }
}

/// The number of X-free combinations is at least m - #X (equality when
/// the X columns are independent), and the control-bit count follows.
#[test]
fn combination_count_bound() {
    let mut rng = XhcRng::seed_from_u64(0xA152);
    for _ in 0..64 {
        let (chains, len, m) = random_shape(&mut rng);
        let cfg = ScanConfig::uniform(chains, len);
        let cells = cfg.total_cells();
        let xc = XCancelingMisr::new(cfg, m, Taps::default_for(m));
        let row: Vec<Trit> = (0..cells)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Trit::X
                } else {
                    Trit::Zero
                }
            })
            .collect();
        let outcome = xc.cancel_pattern(&row);
        assert!(outcome.combinations.len() >= m.saturating_sub(outcome.num_x));
        assert_eq!(outcome.control_bits, m * outcome.combinations.len());
    }
}

/// Observable cells through X-free combinations never include an X cell,
/// and with zero X's every cell that reaches the signature is observable.
#[test]
fn observability_soundness() {
    let mut rng = XhcRng::seed_from_u64(0xA153);
    for case in 0..64u32 {
        let (chains, len, m) = random_shape(&mut rng);
        let cfg = ScanConfig::uniform(chains, len);
        let cells = cfg.total_cells();
        let xc = XCancelingMisr::new(cfg.clone(), m, Taps::default_for(m));
        // Every fourth case: no X's at all (exercise the completeness leg).
        let x_cells: Vec<usize> = if case % 4 == 0 {
            Vec::new()
        } else {
            (0..cells).filter(|_| rng.gen_bool(0.4)).collect()
        };
        let obs = xc.observable_cells(&x_cells);
        for &x in &x_cells {
            assert!(!obs.get(x), "X cell {x} claimed observable");
        }
        if x_cells.is_empty() {
            for c in 0..cells {
                assert!(obs.get(c), "cell {c} lost with zero X's");
            }
        }
    }
}

/// MISR linearity over random streams (the algebraic foundation of
/// symbolic X-canceling).
#[test]
fn misr_is_linear() {
    let mut rng = XhcRng::seed_from_u64(0xA154);
    for _ in 0..64 {
        let m = rng.gen_range(2..10);
        let cycles = rng.gen_range(1..12);
        let taps = Taps::default_for(m);
        let stream = |rng: &mut XhcRng| -> Vec<BitVec> {
            (0..cycles)
                .map(|_| BitVec::from_bools((0..m).map(|_| rng.gen_bool(0.5))))
                .collect()
        };
        let run = |streams: &[BitVec]| {
            let mut misr = Misr::new(m, taps.clone());
            for s in streams {
                misr.shift(s);
            }
            misr.state().clone()
        };
        let sa = stream(&mut rng);
        let sb = stream(&mut rng);
        let sum: Vec<BitVec> = sa
            .iter()
            .zip(&sb)
            .map(|(x, y)| {
                let mut s = x.clone();
                s.xor_with(y);
                s
            })
            .collect();
        let mut expect = run(&sa);
        expect.xor_with(&run(&sb));
        assert_eq!(run(&sum), expect);
    }
}

/// End-to-end: captured responses from a real circuit, canceled per
/// pattern — every canceled value must be reproducible from the
/// response's known bits alone.
#[test]
fn circuit_responses_cancel_consistently() {
    let mut rng = XhcRng::seed_from_u64(0xA155);
    for _ in 0..16 {
        use xhc_logic::generate::CircuitSpec;
        let circuit = CircuitSpec {
            num_inputs: 6,
            num_gates: 60,
            num_scan_flops: 8,
            num_shadow_flops: 1,
            num_buses: 1,
            seed: rng.next_u64() % 200,
            ..CircuitSpec::default()
        }
        .generate();
        let cfg = ScanConfig::uniform(2, 4);
        let harness = ScanHarness::new(&circuit.netlist, cfg.clone(), circuit.scan_flops.clone())
            .expect("valid mapping");
        let pattern = xhc_scan::TestPattern {
            scan_load: vec![Trit::Zero; 8],
            inputs: vec![Trit::One; 6],
        };
        let responses = harness.run(&[pattern]);
        let row = responses.row(0);
        let xc = XCancelingMisr::new(cfg, 6, Taps::default_for(6));
        let outcome = xc.cancel_pattern(&row);
        let cancel = XCancelConfig::new(6, 2);
        // Accounting sanity: formula bits >= 0 and combos valid.
        assert!(cancel.control_bits(outcome.num_x) >= 0.0);
        for combo in &outcome.combinations {
            assert!(combo.any());
        }
    }
}
