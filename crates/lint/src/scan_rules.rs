//! Scan-topology and X-map rules (XL02xx).
//!
//! The X-map rules run on [`XMapFacts`] — a raw entry list as a parser or
//! hand-written fixture would produce it — so defects an [`XMapBuilder`]
//! normally absorbs (out-of-range positions panic, duplicates coalesce)
//! are still detectable on unvalidated input.
//!
//! [`XMapBuilder`]: xhc_scan::XMapBuilder

use crate::diag::{LintCode, LintConfig, LintReport};
use xhc_scan::{ScanConfig, XMap};

/// Mask-word waste (`L·C` vs. cells) beyond which XL0201 fires.
const IMBALANCE_WASTE_LIMIT: f64 = 0.10;

/// A raw X-map view: scan shape plus `(linear cell, patterns)` entries in
/// whatever order (and with whatever redundancy) the source had.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XMapFacts {
    /// Scan cells in the design.
    pub total_cells: usize,
    /// Patterns in the test set.
    pub num_patterns: usize,
    /// `(linear cell index, pattern indices)` entries.
    pub entries: Vec<(usize, Vec<usize>)>,
}

impl XMapFacts {
    /// The facts of a validated [`XMap`] (never out of range, never
    /// duplicated — useful as a clean baseline).
    pub fn from_xmap(xmap: &XMap) -> Self {
        XMapFacts {
            total_cells: xmap.config().total_cells(),
            num_patterns: xmap.num_patterns(),
            entries: xmap
                .iter()
                .map(|(cell, xs)| (xmap.config().linear_index(cell), xs.iter().collect()))
                .collect(),
        }
    }
}

/// XL0201: chain-length imbalance. The hybrid's mask word costs
/// `L·C` bits per partition (`L` = longest chain); ragged chains pay for
/// bits that address no cell.
pub fn check_scan_config(config: &LintConfig, scan: &ScanConfig) -> LintReport {
    let mut report = LintReport::new();
    let word = scan.mask_word_bits();
    let cells = scan.total_cells();
    if word > 0 && cells > 0 {
        let waste = 1.0 - cells as f64 / word as f64;
        if waste > IMBALANCE_WASTE_LIMIT {
            report.push(
                config,
                LintCode::ChainImbalance,
                format!(
                    "scan config ({} chains, longest {})",
                    scan.num_chains(),
                    scan.max_chain_len()
                ),
                format!(
                    "mask word spends {word} bits on {cells} cells ({:.0}% waste)",
                    waste * 100.0
                ),
                "rebalance chain lengths (ScanConfig::balanced) to shrink L*C",
            );
        }
    }
    report
}

/// XL0202 + XL0203 on a raw entry list.
pub fn check_xmap_facts(config: &LintConfig, facts: &XMapFacts) -> LintReport {
    let mut report = LintReport::new();
    rule_x_out_of_range(config, facts, &mut report);
    rule_duplicate_x(config, facts, &mut report);
    report
}

/// Runs the X-map rules on a validated map (a clean-pass baseline: the
/// builder already enforces both rules' invariants).
pub fn check_xmap(config: &LintConfig, xmap: &XMap) -> LintReport {
    let mut report = check_scan_config(config, xmap.config());
    report.merge(check_xmap_facts(config, &XMapFacts::from_xmap(xmap)));
    report
}

/// XL0202: X positions out of the scan/pattern range.
fn rule_x_out_of_range(config: &LintConfig, facts: &XMapFacts, report: &mut LintReport) {
    for (cell, patterns) in &facts.entries {
        if *cell >= facts.total_cells {
            report.push(
                config,
                LintCode::XOutOfRange,
                format!("x-map cell {cell}"),
                format!(
                    "cell index {cell} exceeds the scan range (total cells {})",
                    facts.total_cells
                ),
                "the entry addresses no physical cell; fix the extraction",
            );
        }
        for &p in patterns {
            if p >= facts.num_patterns {
                report.push(
                    config,
                    LintCode::XOutOfRange,
                    format!("x-map cell {cell}, pattern {p}"),
                    format!(
                        "pattern index {p} exceeds the pattern count {}",
                        facts.num_patterns
                    ),
                    "the entry addresses no applied pattern; fix the extraction",
                );
            }
        }
    }
}

/// XL0203: duplicate entries — the same cell listed twice, or the same
/// pattern repeated within a cell's list.
fn rule_duplicate_x(config: &LintConfig, facts: &XMapFacts, report: &mut LintReport) {
    let mut seen_cells = std::collections::BTreeMap::new();
    for (i, (cell, patterns)) in facts.entries.iter().enumerate() {
        if let Some(first) = seen_cells.insert(*cell, i) {
            report.push(
                config,
                LintCode::DuplicateX,
                format!("x-map cell {cell}"),
                format!("cell appears in entries {first} and {i}"),
                "merge the pattern lists into one entry per cell",
            );
        }
        let mut seen_patterns = std::collections::BTreeSet::new();
        for &p in patterns {
            if !seen_patterns.insert(p) {
                report.push(
                    config,
                    LintCode::DuplicateX,
                    format!("x-map cell {cell}, pattern {p}"),
                    "pattern listed more than once for this cell",
                    "deduplicate the pattern list",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_scan::{CellId, XMapBuilder};

    fn codes(report: &LintReport) -> Vec<LintCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn balanced_config_passes() {
        let report = check_scan_config(&LintConfig::default(), &ScanConfig::balanced(1000, 7));
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn ragged_chains_fire_imbalance() {
        // 3 chains of 100/10/10: word = 300 bits for 120 cells.
        let scan = ScanConfig::new(vec![100, 10, 10]);
        let report = check_scan_config(&LintConfig::default(), &scan);
        assert_eq!(codes(&report), vec![LintCode::ChainImbalance]);
        assert!(!report.has_deny());
    }

    #[test]
    fn valid_xmap_passes() {
        let mut b = XMapBuilder::new(ScanConfig::uniform(3, 4), 10);
        b.add_x(CellId::new(0, 0), 3).unwrap();
        b.add_x(CellId::new(2, 1), 9).unwrap();
        let report = check_xmap(&LintConfig::default(), &b.finish());
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn out_of_range_cell_and_pattern_fire() {
        let facts = XMapFacts {
            total_cells: 12,
            num_patterns: 10,
            entries: vec![(12, vec![0]), (3, vec![10, 4])],
        };
        let report = check_xmap_facts(&LintConfig::default(), &facts);
        assert_eq!(
            codes(&report),
            vec![LintCode::XOutOfRange, LintCode::XOutOfRange]
        );
        assert!(report.has_deny());
    }

    #[test]
    fn duplicates_fire() {
        let facts = XMapFacts {
            total_cells: 12,
            num_patterns: 10,
            entries: vec![(3, vec![1, 1]), (5, vec![0]), (3, vec![2])],
        };
        let report = check_xmap_facts(&LintConfig::default(), &facts);
        assert_eq!(
            codes(&report),
            vec![LintCode::DuplicateX, LintCode::DuplicateX]
        );
        assert!(!report.has_deny());
    }
}
