//! End-to-end linter for the repo's bundled workloads.
//!
//! ```text
//! xhc-lint [OPTIONS] [PRESET...]
//! ```
//!
//! Lints each named preset (`fig4`, `ckt-a`, `ckt-b`, `ckt-c`, or `all`,
//! the default) end to end and exits `1` if any `deny` finding fired,
//! `0` otherwise (`2` on usage errors). Workload presets are scaled down
//! by `--scale` (default 50) so a lint run stays interactive; pass
//! `--full` for paper-size runs.

use std::process::ExitCode;

use xhc_core::PartitionEngine;
use xhc_lint::{
    check_cancel_params, check_certificate, check_misr_taps, check_outcome, check_xmap,
    lint_workload, LintCode, LintConfig, LintReport, Severity,
};
use xhc_misr::{Taps, XCancelConfig};
use xhc_scan::{CellId, ScanConfig, XMap, XMapBuilder};
use xhc_workload::WorkloadSpec;

const USAGE: &str = "\
Usage: xhc-lint [OPTIONS] [PRESET...]

Lints bundled workloads end to end: X map extraction, partition planning,
mask safety, cost accounting and MISR configuration.

Presets:
  fig4      the paper's Fig. 4 worked example (15 cells, 8 patterns)
  ckt-a     CKT-A industrial profile
  ckt-b     CKT-B industrial profile
  ckt-c     CKT-C industrial profile
  all       every preset (default)

Options:
  --format FMT   output format: human (default), json, or sarif
                 (sarif merges all presets into one SARIF 2.1.0 document)
  --json         shorthand for --format json
  --full         run workload presets at paper size (slow)
  --scale N      divide workload dimensions by N (default 50)
  --deny CODE    escalate a rule (XLxxxx id or slug) to deny
  --warn CODE    demote a rule to warn
  --allow CODE   suppress a rule
  --list         list all rules and exit
  -h, --help     show this help

Exit status: 0 clean (warnings allowed), 1 any deny finding, 2 usage error.";

fn describe(code: LintCode) -> &'static str {
    match code {
        LintCode::CombLoop => "combinational cycle in the netlist",
        LintCode::FloatingNet => "driverless bus or unconnected flop D pin",
        LintCode::DeadLogic => "combinational logic no output observes",
        LintCode::BadArity => "gate fan-in invalid for its kind",
        LintCode::UnreachableFlop => "flop no primary output observes",
        LintCode::ChainImbalance => "ragged scan chains waste mask-word bits",
        LintCode::XOutOfRange => "X entry references no cell/pattern",
        LintCode::DuplicateX => "duplicate X entries",
        LintCode::PartitionCover => "partition plan not a disjoint cover",
        LintCode::UnsafeMask => "mask gates a non-X response bit",
        LintCode::CostMismatch => "cost accounting disagrees with recomputation",
        LintCode::DegenerateMisr => "degenerate / non-primitive MISR feedback",
        LintCode::BadCancelConfig => "inconsistent X-canceling (m, q)",
        LintCode::BestCostLatency => "BestCost planning latency above budget",
        LintCode::CertPlanHash => "certificate not linked to this plan",
        LintCode::CertCover => "certificate cover witness disagrees with plan",
        LintCode::CertHistogram => "certificate histograms disagree with X map",
        LintCode::CertAccounting => "certificate control-bit accounting wrong",
        LintCode::CertRankBound => "block rank certificate fails re-elimination",
        LintCode::CertScanMismatch => "certificate shape disagrees with scan config",
        LintCode::UnknownBackend => "plan request selects an unregistered backend",
    }
}

/// The Fig. 4 worked example from the paper: 15 cells in 5 chains of 3,
/// 8 patterns, 28 X's.
fn fig4_xmap() -> XMap {
    let cfg = ScanConfig::uniform(5, 3);
    let mut b = XMapBuilder::new(cfg, 8);
    for p in [0, 3, 4, 5] {
        b.add_x(CellId::new(0, 0), p).unwrap();
        b.add_x(CellId::new(1, 0), p).unwrap();
        b.add_x(CellId::new(2, 0), p).unwrap();
    }
    for p in [0, 4] {
        b.add_x(CellId::new(1, 2), p).unwrap();
    }
    for p in [0, 1, 2, 3, 4, 6, 7] {
        b.add_x(CellId::new(3, 2), p).unwrap();
    }
    for p in [0, 1, 3, 4, 6, 7] {
        b.add_x(CellId::new(4, 1), p).unwrap();
    }
    b.add_x(CellId::new(4, 2), 5).unwrap();
    b.finish()
}

/// Shrinks a workload spec by `scale` while keeping its statistical shape.
fn scaled(spec: WorkloadSpec, scale: usize) -> WorkloadSpec {
    if scale <= 1 {
        return spec;
    }
    let num_chains = (spec.num_chains / scale).max(1);
    WorkloadSpec {
        total_cells: (spec.total_cells / scale).max(num_chains),
        num_chains,
        num_patterns: (spec.num_patterns / scale).max(8),
        ..spec
    }
}

fn lint_fig4(config: &LintConfig) -> LintReport {
    let xmap = fig4_xmap();
    let cancel = XCancelConfig::new(10, 2);
    let taps = Taps::default_for(10);
    let mut report = check_xmap(config, &xmap);
    report.merge(check_cancel_params(config, cancel.m(), cancel.q()));
    report.merge(check_misr_taps(config, cancel.m(), &taps));
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    report.merge(check_outcome(config, &xmap, &outcome, cancel));
    // Exercise the XL04xx cross-artifact family end to end: certify the
    // plan we just produced and check the certificate against it.
    let plan_bytes = xhc_wire::encode_plan(&outcome, xmap.num_patterns());
    let cert = xhc_verify::certify_plan(&xmap, cancel, &outcome, &plan_bytes, None);
    report.merge(check_certificate(
        config,
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    ));
    report
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    format: Format,
    scale: usize,
    config: LintConfig,
    presets: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        format: Format::Human,
        scale: 50,
        config: LintConfig::default(),
        presets: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                println!("{:<8} {:<18} {:<6} description", "code", "rule", "level");
                for code in LintCode::ALL {
                    println!(
                        "{:<8} {:<18} {:<6} {}",
                        code.id(),
                        code.name(),
                        code.default_severity().to_string(),
                        describe(code)
                    );
                }
                return Ok(None);
            }
            "--json" => opts.format = Format::Json,
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--full" => opts.scale = 1,
            "--scale" => {
                let value = iter.next().ok_or("--scale needs a value")?;
                opts.scale = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s >= 1)
                    .ok_or_else(|| format!("invalid --scale value '{value}'"))?;
            }
            "--deny" | "--warn" | "--allow" => {
                let value = iter.next().ok_or_else(|| format!("{arg} needs a rule"))?;
                let code = LintCode::parse(value)
                    .ok_or_else(|| format!("unknown rule '{value}' (try --list)"))?;
                let severity = match arg.as_str() {
                    "--deny" => Severity::Deny,
                    "--warn" => Severity::Warn,
                    _ => Severity::Allow,
                };
                opts.config = opts.config.clone().set(code, severity);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            preset => opts.presets.push(preset.to_string()),
        }
    }
    if opts.presets.is_empty() {
        opts.presets.push("all".to_string());
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("xhc-lint: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut targets: Vec<&str> = Vec::new();
    for preset in &opts.presets {
        match preset.as_str() {
            "all" => targets.extend(["fig4", "ckt-a", "ckt-b", "ckt-c"]),
            "fig4" | "ckt-a" | "ckt-b" | "ckt-c" => targets.push(preset),
            other => {
                eprintln!("xhc-lint: unknown preset '{other}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    targets.dedup();

    let cancel = XCancelConfig::paper_default();
    let taps = Taps::default_for(cancel.m());
    let mut any_deny = false;
    let mut combined = LintReport::new();
    for target in targets {
        let report = match target {
            "fig4" => lint_fig4(&opts.config),
            name => {
                let spec = match name {
                    "ckt-a" => WorkloadSpec::ckt_a(),
                    "ckt-b" => WorkloadSpec::ckt_b(),
                    _ => WorkloadSpec::ckt_c(),
                };
                lint_workload(&opts.config, &scaled(spec, opts.scale), cancel, &taps)
            }
        };
        any_deny |= report.has_deny();
        match opts.format {
            Format::Json => {
                println!("{{\"preset\":\"{target}\",\"findings\":{}}}", {
                    let json = report.render_json();
                    json.trim_end().to_string()
                });
            }
            Format::Sarif => combined.merge(report),
            Format::Human => {
                println!("== {target} ==");
                if report.is_empty() {
                    println!("clean: no findings\n");
                } else {
                    println!("{}", report.render_human());
                }
            }
        }
    }
    if opts.format == Format::Sarif {
        print!("{}", combined.render_sarif());
    }
    if any_deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
