//! The diagnostics engine: lint codes, severities, structured
//! diagnostics, per-rule severity overrides and renderers.

use std::collections::BTreeMap;
use std::fmt;

/// How seriously a finding is treated.
///
/// `Deny` findings fail the CLI (nonzero exit) and trip the
/// `debug_assert!`-gated library checks; `Warn` findings are reported but
/// non-fatal; `Allow` suppresses the rule entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed: the rule still runs but its findings are dropped.
    Allow,
    /// Reported, never fatal.
    Warn,
    /// Reported and fatal.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Every rule the analyzer ships, with a stable `XLxxxx` identifier.
///
/// The numbering is grouped by pipeline stage: `XL01xx` netlist, `XL02xx`
/// scan / X-map, `XL03xx` hybrid (partition plan / MISR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// XL0101: combinational cycle in the netlist.
    CombLoop,
    /// XL0102: floating net — driverless bus or unconnected flop D pin.
    FloatingNet,
    /// XL0103: combinational logic whose value can never be observed.
    DeadLogic,
    /// XL0104: gate fan-in count invalid for its [`xhc_logic::GateKind`].
    BadArity,
    /// XL0105: flop that no primary output transitively observes.
    UnreachableFlop,
    /// XL0201: scan chain lengths waste mask-word bits (`L·C` ≫ cells).
    ChainImbalance,
    /// XL0202: X entry references a cell or pattern out of range.
    XOutOfRange,
    /// XL0203: duplicate X entries for the same cell or pattern.
    DuplicateX,
    /// XL0301: partition plan is not a disjoint cover of the pattern set.
    PartitionCover,
    /// XL0302: mask bit set for a cell that is not X under every pattern
    /// of its partition (fault-coverage loss).
    UnsafeMask,
    /// XL0303: claimed control-bit accounting disagrees with
    /// [`xhc_core::hybrid_cost`].
    CostMismatch,
    /// XL0304: degenerate or non-primitive MISR feedback polynomial.
    DegenerateMisr,
    /// XL0305: inconsistent X-canceling `(m, q)` configuration.
    BadCancelConfig,
    /// XL0306: workload shape puts estimated BestCost planning latency
    /// above the interactive budget.
    BestCostLatency,
    /// XL0401: certificate's content-hash link does not match the plan it
    /// is presented with.
    CertPlanHash,
    /// XL0402: certificate's cover witness (pattern→partition assignment
    /// plus cardinalities) disagrees with the plan's partitions.
    CertCover,
    /// XL0403: certificate's per-partition X-class histograms disagree
    /// with the X map.
    CertHistogram,
    /// XL0404: certificate's control-bit accounting (masked/leaked splits,
    /// mask populations, per-partition cancel bits, plan cost totals)
    /// disagrees with the paper's cost model.
    CertAccounting,
    /// XL0405: a block's Gauss rank certificate (rank, pivot columns,
    /// combination/control-bit counts) fails re-elimination.
    CertRankBound,
    /// XL0406: certificate's claimed shape (pattern universe, partition
    /// count, mask width, total X, `(m, q)`) disagrees with the scan
    /// config / X map it is checked against.
    CertScanMismatch,
    /// XL0501: a plan request selects a backend id the fleet does not
    /// register (unknown wire code or unparseable token).
    UnknownBackend,
}

impl LintCode {
    /// All rules, in code order.
    pub const ALL: [LintCode; 21] = [
        LintCode::CombLoop,
        LintCode::FloatingNet,
        LintCode::DeadLogic,
        LintCode::BadArity,
        LintCode::UnreachableFlop,
        LintCode::ChainImbalance,
        LintCode::XOutOfRange,
        LintCode::DuplicateX,
        LintCode::PartitionCover,
        LintCode::UnsafeMask,
        LintCode::CostMismatch,
        LintCode::DegenerateMisr,
        LintCode::BadCancelConfig,
        LintCode::BestCostLatency,
        LintCode::CertPlanHash,
        LintCode::CertCover,
        LintCode::CertHistogram,
        LintCode::CertAccounting,
        LintCode::CertRankBound,
        LintCode::CertScanMismatch,
        LintCode::UnknownBackend,
    ];

    /// The stable `XLxxxx` identifier.
    pub fn id(self) -> &'static str {
        match self {
            LintCode::CombLoop => "XL0101",
            LintCode::FloatingNet => "XL0102",
            LintCode::DeadLogic => "XL0103",
            LintCode::BadArity => "XL0104",
            LintCode::UnreachableFlop => "XL0105",
            LintCode::ChainImbalance => "XL0201",
            LintCode::XOutOfRange => "XL0202",
            LintCode::DuplicateX => "XL0203",
            LintCode::PartitionCover => "XL0301",
            LintCode::UnsafeMask => "XL0302",
            LintCode::CostMismatch => "XL0303",
            LintCode::DegenerateMisr => "XL0304",
            LintCode::BadCancelConfig => "XL0305",
            LintCode::BestCostLatency => "XL0306",
            LintCode::CertPlanHash => "XL0401",
            LintCode::CertCover => "XL0402",
            LintCode::CertHistogram => "XL0403",
            LintCode::CertAccounting => "XL0404",
            LintCode::CertRankBound => "XL0405",
            LintCode::CertScanMismatch => "XL0406",
            LintCode::UnknownBackend => "XL0501",
        }
    }

    /// The human-facing rule slug (used for CLI severity overrides).
    pub fn name(self) -> &'static str {
        match self {
            LintCode::CombLoop => "comb-loop",
            LintCode::FloatingNet => "floating-net",
            LintCode::DeadLogic => "dead-logic",
            LintCode::BadArity => "bad-arity",
            LintCode::UnreachableFlop => "unreachable-flop",
            LintCode::ChainImbalance => "chain-imbalance",
            LintCode::XOutOfRange => "x-out-of-range",
            LintCode::DuplicateX => "duplicate-x",
            LintCode::PartitionCover => "partition-cover",
            LintCode::UnsafeMask => "unsafe-mask",
            LintCode::CostMismatch => "cost-mismatch",
            LintCode::DegenerateMisr => "degenerate-misr",
            LintCode::BadCancelConfig => "bad-cancel-config",
            LintCode::BestCostLatency => "best-cost-latency",
            LintCode::CertPlanHash => "cert-plan-hash",
            LintCode::CertCover => "cert-cover",
            LintCode::CertHistogram => "cert-histogram",
            LintCode::CertAccounting => "cert-accounting",
            LintCode::CertRankBound => "cert-rank-bound",
            LintCode::CertScanMismatch => "cert-scan-mismatch",
            LintCode::UnknownBackend => "unknown-backend",
        }
    }

    /// The severity the rule carries unless overridden.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::CombLoop
            | LintCode::FloatingNet
            | LintCode::BadArity
            | LintCode::XOutOfRange
            | LintCode::PartitionCover
            | LintCode::UnsafeMask
            | LintCode::CostMismatch
            | LintCode::BadCancelConfig
            | LintCode::CertPlanHash
            | LintCode::CertCover
            | LintCode::CertHistogram
            | LintCode::CertAccounting
            | LintCode::CertRankBound
            | LintCode::CertScanMismatch
            | LintCode::UnknownBackend => Severity::Deny,
            LintCode::DeadLogic
            | LintCode::UnreachableFlop
            | LintCode::ChainImbalance
            | LintCode::DuplicateX
            | LintCode::DegenerateMisr
            | LintCode::BestCostLatency => Severity::Warn,
        }
    }

    /// Parses an `XLxxxx` id or a rule slug.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.id().eq_ignore_ascii_case(s) || c.name() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id(), self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: LintCode,
    /// Effective severity (after config overrides).
    pub severity: Severity,
    /// Where in the artifact the finding points (e.g. `netlist node 17`,
    /// `SC4[2]`, `partition 1`).
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix or interpret it.
    pub help: String,
}

/// Per-rule severity overrides.
///
/// # Examples
///
/// ```
/// use xhc_lint::{LintCode, LintConfig, Severity};
///
/// let config = LintConfig::default()
///     .deny(LintCode::DeadLogic)
///     .allow(LintCode::ChainImbalance);
/// assert_eq!(config.severity(LintCode::DeadLogic), Severity::Deny);
/// assert_eq!(config.severity(LintCode::ChainImbalance), Severity::Allow);
/// assert_eq!(config.severity(LintCode::CombLoop), Severity::Deny);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: BTreeMap<LintCode, Severity>,
}

impl LintConfig {
    /// The effective severity of a rule.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }

    /// The effective severity when the rule itself proposes a `base` for
    /// a particular finding (e.g. an advisory emitted under a
    /// deny-by-default code): an explicit override still wins.
    pub fn severity_or(&self, code: LintCode, base: Severity) -> Severity {
        self.overrides.get(&code).copied().unwrap_or(base)
    }

    /// Sets an explicit severity for a rule.
    pub fn set(mut self, code: LintCode, severity: Severity) -> Self {
        self.overrides.insert(code, severity);
        self
    }

    /// Escalates a rule to `Deny`.
    pub fn deny(self, code: LintCode) -> Self {
        self.set(code, Severity::Deny)
    }

    /// Demotes a rule to `Warn`.
    pub fn warn(self, code: LintCode) -> Self {
        self.set(code, Severity::Warn)
    }

    /// Suppresses a rule.
    pub fn allow(self, code: LintCode) -> Self {
        self.set(code, Severity::Allow)
    }
}

/// An ordered collection of diagnostics with rendering and exit-status
/// helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The findings, in rule-execution order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Records a finding under `config`'s severity for `code`; findings of
    /// `Allow`ed rules are dropped.
    pub fn push(
        &mut self,
        config: &LintConfig,
        code: LintCode,
        location: impl Into<String>,
        message: impl Into<String>,
        help: impl Into<String>,
    ) {
        let severity = config.severity(code);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            location: location.into(),
            message: message.into(),
            help: help.into(),
        });
    }

    /// Like [`push`](Self::push), but the finding carries `base` severity
    /// unless `config` overrides the rule explicitly. Used for findings
    /// whose weight differs from their rule's default (e.g. a structural
    /// defect under a warn-by-default rule, or an advisory under a
    /// deny-by-default one).
    pub fn push_at(
        &mut self,
        config: &LintConfig,
        code: LintCode,
        base: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
        help: impl Into<String>,
    ) {
        let severity = config.severity_or(code, base);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            location: location.into(),
            message: message.into(),
            help: help.into(),
        });
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Whether the report is clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Number of `Deny` findings (the CLI's exit status is nonzero iff
    /// this is).
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Whether any finding is fatal.
    pub fn has_deny(&self) -> bool {
        self.deny_count() > 0
    }

    /// `rustc`-style human rendering, one block per finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}]: {}\n  --> {}\n  = help: {}\n",
                d.severity,
                d.code.id(),
                d.message,
                d.location,
                d.help
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str(&format!(
                "{} finding(s): {} deny, {} warn\n",
                self.len(),
                self.deny_count(),
                self.len() - self.deny_count()
            ));
        }
        out
    }

    /// JSON rendering: an array of objects with `code`, `rule`,
    /// `severity`, `location`, `message`, `help` keys.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"code\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\"location\":{},\"message\":{},\"help\":{}}}",
                d.code.id(),
                d.code.name(),
                d.severity,
                json_string(&d.location),
                json_string(&d.message),
                json_string(&d.help)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// SARIF 2.1.0 rendering (one run, one result per finding), the
    /// interchange format code-scanning UIs ingest. `Deny` maps to SARIF
    /// `error`, `Warn` to `warning`; the artifact location lands in the
    /// result message (lint findings point at artifact structure, not
    /// files), and every fired rule is declared in the tool's rule table.
    pub fn render_sarif(&self) -> String {
        let mut rules: Vec<LintCode> = self.diagnostics.iter().map(|d| d.code).collect();
        rules.sort();
        rules.dedup();
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"xhc-lint\",\n          \"rules\": [",
        );
        for (i, code) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"id\": {}, \"name\": {}}}",
                json_string(code.id()),
                json_string(code.name())
            ));
        }
        if !rules.is_empty() {
            out.push_str("\n          ");
        }
        out.push_str("]\n        }\n      },\n      \"results\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let level = match d.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
                Severity::Allow => "none",
            };
            out.push_str(&format!(
                "\n        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}}}",
                json_string(d.code.id()),
                json_string(level),
                json_string(&format!(
                    "{} [at {}] help: {}",
                    d.message, d.location, d.help
                ))
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_parse_roundtrips() {
        let ids: std::collections::BTreeSet<&str> = LintCode::ALL.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), LintCode::ALL.len());
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.id()), Some(code));
            assert_eq!(LintCode::parse(code.name()), Some(code));
        }
        assert_eq!(LintCode::parse("nope"), None);
    }

    #[test]
    fn config_overrides_apply() {
        let config = LintConfig::default().allow(LintCode::CombLoop);
        let mut report = LintReport::new();
        report.push(&config, LintCode::CombLoop, "x", "y", "z");
        assert!(report.is_empty(), "allowed rule must be dropped");
        report.push(&config, LintCode::DeadLogic, "x", "y", "z");
        assert_eq!(report.diagnostics[0].severity, Severity::Warn);
        assert!(!report.has_deny());
        let config = LintConfig::default().deny(LintCode::DeadLogic);
        report.push(&config, LintCode::DeadLogic, "x", "y", "z");
        assert!(report.has_deny());
    }

    #[test]
    fn human_rendering_mentions_code_and_help() {
        let mut report = LintReport::new();
        report.push(
            &LintConfig::default(),
            LintCode::UnsafeMask,
            "partition 0",
            "mask covers a non-X value",
            "unmask the cell",
        );
        let text = report.render_human();
        assert!(text.contains("deny[XL0302]"));
        assert!(text.contains("partition 0"));
        assert!(text.contains("help: unmask the cell"));
        assert!(text.contains("1 deny, 0 warn"));
    }

    #[test]
    fn sarif_rendering_declares_rules_and_levels() {
        let mut report = LintReport::new();
        report.push(
            &LintConfig::default(),
            LintCode::CertPlanHash,
            "plan certificate",
            "hash mismatch",
            "re-certify",
        );
        report.push(
            &LintConfig::default(),
            LintCode::ChainImbalance,
            "chain 3",
            "ragged chain",
            "rebalance",
        );
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"name\": \"xhc-lint\""));
        // Fired rules are declared once each in the driver's rule table.
        assert_eq!(sarif.matches("{\"id\": \"XL0401\"").count(), 1);
        assert_eq!(sarif.matches("{\"id\": \"XL0201\"").count(), 1);
        // Deny -> error, Warn -> warning.
        assert!(sarif.contains("\"ruleId\": \"XL0401\", \"level\": \"error\""));
        assert!(sarif.contains("\"ruleId\": \"XL0201\", \"level\": \"warning\""));
        assert!(sarif.contains("hash mismatch [at plan certificate] help: re-certify"));
        // Empty report is still a valid single-run document.
        let empty = LintReport::new().render_sarif();
        assert!(empty.contains("\"results\": []"));
    }

    #[test]
    fn json_rendering_escapes() {
        let mut report = LintReport::new();
        report.push(
            &LintConfig::default(),
            LintCode::DuplicateX,
            "cell \"7\"",
            "line1\nline2",
            "h",
        );
        let json = report.render_json();
        assert!(json.contains("\\\"7\\\""));
        assert!(json.contains("line1\\nline2"));
        assert!(json.contains("\"rule\":\"duplicate-x\""));
        assert!(LintReport::new().render_json().starts_with("[]"));
    }
}
