//! Hybrid-architecture rules (XL03xx): partition plans, mask words,
//! control-bit accounting, MISR configuration.

use crate::diag::{LintCode, LintConfig, LintReport, Severity};
use crate::poly::taps_primitive;
use xhc_bits::PatternSet;
use xhc_core::{hybrid_cost, HybridCost};
use xhc_misr::{MaskWord, Taps, XCancelConfig};
use xhc_scan::XMap;
use xhc_workload::WorkloadSpec;

/// How many per-instance diagnostics a single rule emits before it
/// summarizes the rest (partition plans can have thousands of cells).
const MAX_INSTANCES: usize = 10;

/// XL0301: the partition plan must be a disjoint cover of
/// `0..num_patterns`.
pub fn check_partition_cover(
    config: &LintConfig,
    num_patterns: usize,
    partitions: &[PatternSet],
) -> LintReport {
    let mut report = LintReport::new();
    if partitions.is_empty() {
        report.push(
            config,
            LintCode::PartitionCover,
            "partition plan",
            "plan has no partitions",
            "every pattern must belong to exactly one partition",
        );
        return report;
    }
    let mut union = PatternSet::empty(num_patterns);
    let mut card_sum = 0usize;
    for (i, part) in partitions.iter().enumerate() {
        if part.universe() != num_patterns {
            report.push(
                config,
                LintCode::PartitionCover,
                format!("partition {i}"),
                format!(
                    "partition is over a {}-pattern universe, plan expects {num_patterns}",
                    part.universe()
                ),
                "regenerate the plan against the actual pattern set",
            );
            return report;
        }
        card_sum += part.card();
        union = union.union(part);
    }
    if union.card() < num_patterns {
        let missing: Vec<usize> = (0..num_patterns)
            .filter(|&p| !union.contains(p))
            .take(MAX_INSTANCES)
            .collect();
        report.push(
            config,
            LintCode::PartitionCover,
            format!("patterns {missing:?}"),
            format!(
                "{} pattern(s) belong to no partition",
                num_patterns - union.card()
            ),
            "uncovered patterns would never be scheduled; fix the split",
        );
    }
    if card_sum > union.card() {
        // Find one witness pair for the report.
        let witness = partitions
            .iter()
            .enumerate()
            .flat_map(|(i, a)| {
                partitions
                    .iter()
                    .enumerate()
                    .skip(i + 1)
                    .map(move |(j, b)| (i, j, a, b))
            })
            .find(|(_, _, a, b)| !a.is_disjoint_from(b));
        let location = match witness {
            Some((i, j, ..)) => format!("partitions {i} and {j}"),
            None => "partition plan".to_string(),
        };
        report.push(
            config,
            LintCode::PartitionCover,
            location,
            format!(
                "partitions overlap: cardinalities sum to {card_sum} over a \
                 {num_patterns}-pattern universe",
            ),
            "a pattern in two partitions is applied twice with different masks",
        );
    }
    report
}

/// XL0302: a mask bit may be set only for a cell that captures X under
/// *every* pattern of its partition (the paper's no-coverage-loss rule).
pub fn check_masks_safe(
    config: &LintConfig,
    xmap: &XMap,
    partitions: &[PatternSet],
    masks: &[MaskWord],
) -> LintReport {
    let mut report = LintReport::new();
    if partitions.len() != masks.len() {
        report.push(
            config,
            LintCode::UnsafeMask,
            "partition plan",
            format!(
                "{} partition(s) but {} mask word(s)",
                partitions.len(),
                masks.len()
            ),
            "each partition needs exactly one shared mask word",
        );
        return report;
    }
    let scan = xmap.config();
    let mut shown = 0usize;
    let mut suppressed = 0usize;
    for (pi, (part, mask)) in partitions.iter().zip(masks).enumerate() {
        for idx in 0..scan.total_cells() {
            if !mask.masks(idx) {
                continue;
            }
            let cell = scan.cell_at(idx);
            let all_x = xmap
                .xset(cell)
                .is_some_and(|xs| part.is_subset_of(xs) && !part.is_empty());
            if all_x {
                continue;
            }
            if shown < MAX_INSTANCES {
                shown += 1;
                let witness = part.iter().find(|&p| !xmap.is_x(p, cell));
                report.push(
                    config,
                    LintCode::UnsafeMask,
                    format!("partition {pi}, cell {cell}"),
                    match witness {
                        Some(p) => format!(
                            "mask gates a non-X response: {cell} is known under pattern {p}"
                        ),
                        None => format!("mask gates {cell} in an empty partition"),
                    },
                    "masking a known value loses fault coverage; unmask the cell",
                );
            } else {
                suppressed += 1;
            }
        }
    }
    if suppressed > 0 {
        report.push(
            config,
            LintCode::UnsafeMask,
            "partition plan",
            format!("{suppressed} further unsafe mask bit(s) suppressed"),
            "fix the reported cells first; rerun for the rest",
        );
    }
    report
}

/// XL0303: claimed cost accounting must match a recomputation via
/// [`hybrid_cost`].
pub fn check_cost_accounting(
    config: &LintConfig,
    xmap: &XMap,
    partitions: &[PatternSet],
    cancel: XCancelConfig,
    claimed: &HybridCost,
) -> LintReport {
    let mut report = LintReport::new();
    let actual = hybrid_cost(xmap, partitions, cancel);
    let mut mismatches: Vec<String> = Vec::new();
    if claimed.masking_bits != actual.masking_bits {
        mismatches.push(format!(
            "masking_bits {} != {}",
            claimed.masking_bits, actual.masking_bits
        ));
    }
    if (claimed.canceling_bits - actual.canceling_bits).abs() > 1e-6 {
        mismatches.push(format!(
            "canceling_bits {} != {}",
            claimed.canceling_bits, actual.canceling_bits
        ));
    }
    if claimed.masked_x != actual.masked_x {
        mismatches.push(format!(
            "masked_x {} != {}",
            claimed.masked_x, actual.masked_x
        ));
    }
    if claimed.leaked_x != actual.leaked_x {
        mismatches.push(format!(
            "leaked_x {} != {}",
            claimed.leaked_x, actual.leaked_x
        ));
    }
    if claimed.num_partitions != actual.num_partitions {
        mismatches.push(format!(
            "num_partitions {} != {}",
            claimed.num_partitions, actual.num_partitions
        ));
    }
    if !mismatches.is_empty() {
        report.push(
            config,
            LintCode::CostMismatch,
            "hybrid cost accounting",
            format!(
                "claimed cost disagrees with hybrid_cost: {}",
                mismatches.join("; ")
            ),
            "control-bit budgets derived from a stale cost are wrong on the tester",
        );
    }
    report
}

/// XL0304: degenerate or non-primitive MISR feedback.
pub fn check_misr_taps(config: &LintConfig, m: usize, taps: &Taps) -> LintReport {
    let mut report = LintReport::new();
    let idx = taps.indices();
    if let Some(&bad) = idx.iter().find(|&&t| t >= m) {
        // Structural defect — deny-by-base even though the rule's default
        // (tuned for the primitivity advisory) is warn.
        report.push_at(
            config,
            LintCode::DegenerateMisr,
            Severity::Deny,
            format!("MISR taps {idx:?}"),
            format!("tap {bad} is out of range for a {m}-bit MISR"),
            "taps must index state bits 0..m",
        );
        return report;
    }
    if !idx.contains(&(m - 1)) {
        report.push_at(
            config,
            LintCode::DegenerateMisr,
            Severity::Deny,
            format!("MISR taps {idx:?}"),
            format!(
                "highest state bit {} never feeds back: the register is \
                 singular and forgets its top bit every cycle",
                m - 1
            ),
            "include m-1 in the tap set (the x^m feedback term)",
        );
        return report;
    }
    if taps_primitive(m, idx) == Some(false) {
        report.push(
            config,
            LintCode::DegenerateMisr,
            format!("MISR taps {idx:?}"),
            format!("feedback polynomial of the {m}-bit MISR is not primitive"),
            "a primitive polynomial maximizes state mixing and error \
             coverage; pick taps realizing one",
        );
    }
    report
}

/// XL0305: X-canceling `(m, q)` sanity. Runs on raw integers so that
/// configurations [`XCancelConfig::new`] would reject are also lintable.
pub fn check_cancel_params(config: &LintConfig, m: usize, q: usize) -> LintReport {
    let mut report = LintReport::new();
    let location = format!("X-cancel config (m={m}, q={q})");
    if m < 2 {
        report.push(
            config,
            LintCode::BadCancelConfig,
            location,
            "MISR size m must be at least 2",
            "pick a real register width (the paper uses m=32)",
        );
    } else if q == 0 || q >= m {
        report.push(
            config,
            LintCode::BadCancelConfig,
            location,
            format!("q must satisfy 0 < q < m, got q={q}"),
            "q X-free combinations are extracted per halt; q >= m leaves \
             no X budget (blocks of m-q = 0 X's never close)",
        );
    } else if q * 2 > m {
        // Advisory — warn-by-base even though the rule's default (tuned
        // for the hard consistency violations above) is deny.
        report.push_at(
            config,
            LintCode::BadCancelConfig,
            Severity::Warn,
            location,
            format!("q={q} exceeds m/2: control bits m*q/(m-q) per X blow up"),
            "the paper's regime is q << m (32, 7); shrink q or grow m",
        );
    }
    report
}

/// XL0306: estimated packed-kernel word operations one worker retires
/// per millisecond. The 4-wide lane-unrolled sweep retires ~2 word
/// visits per nanosecond (measured on the full-size CKT benches).
const EST_WORDS_PER_MS: f64 = 2.0e6;

/// XL0306: intra-candidate shard workers the latency model assumes. The
/// engine shards a candidate's row sweep across the worker pool whenever
/// candidates alone cannot keep it busy, so paper-scale sweeps see the
/// pool width (the DESIGN target machine: 8 threads).
const EST_SHARD_WORKERS: f64 = 8.0;

/// XL0306: BestCost planning-latency budget in milliseconds. Roughly the
/// point past which a plan request stops feeling interactive on the
/// daemon path.
const BEST_COST_BUDGET_MS: f64 = 10.0;

/// XL0306: workload shapes whose pattern count and X profile make
/// BestCost candidate search slower than the `BEST_COST_BUDGET_MS`
/// interactive budget.
///
/// Uses the packed-kernel cost model (DESIGN.md §5): the engine runs
/// ~`num_groups` split rounds; each round prices up to
/// `min(active, num_patterns)` candidate pivots; pricing one candidate
/// sweeps every active cell's packed X row over `ceil(num_patterns/64)`
/// words. Active cells are bounded by both the X cell pool and the total
/// X count. The word visits are divided by the unrolled kernel's
/// per-worker throughput (`EST_WORDS_PER_MS`) times the assumed
/// intra-candidate shard parallelism (`EST_SHARD_WORKERS`) — the
/// sharded sweep keeps the pool busy even when few candidates survive
/// pruning. The estimate is deliberately spec-only (no X map is
/// generated) so the rule is free to run on paper-scale specs.
pub fn check_plan_latency(config: &LintConfig, spec: &WorkloadSpec) -> LintReport {
    let mut report = LintReport::new();
    let pool = ((spec.total_cells as f64 * spec.x_cell_fraction).round() as usize)
        .clamp(1, spec.total_cells.max(1));
    let active = pool.min(spec.target_x());
    let candidates = active.min(spec.num_patterns);
    let words = spec.num_patterns.div_ceil(64);
    let rounds = spec.num_groups.max(1);
    let est_ops = rounds as f64 * candidates as f64 * active as f64 * words as f64;
    let est_ms = est_ops / (EST_WORDS_PER_MS * EST_SHARD_WORKERS);
    if est_ms > BEST_COST_BUDGET_MS {
        report.push(
            config,
            LintCode::BestCostLatency,
            format!("workload '{}'", spec.name),
            format!(
                "estimated BestCost planning latency {est_ms:.0} ms exceeds the \
                 {BEST_COST_BUDGET_MS:.0} ms budget ({} patterns, {:.2}% X-density, \
                 ~{active} active cells)",
                spec.num_patterns,
                spec.x_density * 100.0,
            ),
            "the candidate search scales with active-cells * patterns per round; \
             plan with `--strategy largest-class` (one pivot per round) or shrink \
             the pattern set",
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_core::PartitionEngine;
    use xhc_scan::{CellId, ScanConfig, XMapBuilder};

    fn fig4_xmap() -> XMap {
        let cfg = ScanConfig::uniform(5, 3);
        let mut b = XMapBuilder::new(cfg, 8);
        for p in [0, 3, 4, 5] {
            b.add_x(CellId::new(0, 0), p).unwrap();
            b.add_x(CellId::new(1, 0), p).unwrap();
            b.add_x(CellId::new(2, 0), p).unwrap();
        }
        for p in [0, 4] {
            b.add_x(CellId::new(1, 2), p).unwrap();
        }
        for p in [0, 1, 2, 3, 4, 6, 7] {
            b.add_x(CellId::new(3, 2), p).unwrap();
        }
        for p in [0, 1, 3, 4, 6, 7] {
            b.add_x(CellId::new(4, 1), p).unwrap();
        }
        b.add_x(CellId::new(4, 2), 5).unwrap();
        b.finish()
    }

    fn codes(report: &LintReport) -> Vec<LintCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn engine_outcome_is_clean() {
        let xmap = fig4_xmap();
        let cancel = XCancelConfig::new(10, 2);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let lc = LintConfig::default();
        assert!(check_partition_cover(&lc, 8, &outcome.partitions).is_empty());
        assert!(check_masks_safe(&lc, &xmap, &outcome.partitions, &outcome.masks).is_empty());
        assert!(
            check_cost_accounting(&lc, &xmap, &outcome.partitions, cancel, &outcome.cost)
                .is_empty()
        );
    }

    #[test]
    fn overlapping_partitions_fire() {
        let parts = vec![
            PatternSet::from_patterns(8, [0, 1, 2, 3]),
            PatternSet::from_patterns(8, [3, 4, 5, 6, 7]),
        ];
        let report = check_partition_cover(&LintConfig::default(), 8, &parts);
        assert_eq!(codes(&report), vec![LintCode::PartitionCover]);
        assert!(report.render_human().contains("partitions 0 and 1"));
    }

    #[test]
    fn uncovered_patterns_fire() {
        let parts = vec![PatternSet::from_patterns(8, [0, 1, 2])];
        let report = check_partition_cover(&LintConfig::default(), 8, &parts);
        assert_eq!(codes(&report), vec![LintCode::PartitionCover]);
        assert!(report.has_deny());
    }

    #[test]
    fn empty_plan_and_wrong_universe_fire() {
        let lc = LintConfig::default();
        assert!(check_partition_cover(&lc, 8, &[]).has_deny());
        let parts = vec![PatternSet::all(6)];
        assert!(check_partition_cover(&lc, 8, &parts).has_deny());
    }

    #[test]
    fn unsafe_mask_fires_with_witness_pattern() {
        let xmap = fig4_xmap();
        let parts = vec![PatternSet::all(8)];
        // SC5[1] is X under 6 of 8 patterns — masking it over the whole
        // set gates two known values.
        let mut mask = MaskWord::none(xmap.config());
        mask.mask(xmap.config(), CellId::new(4, 1));
        let report = check_masks_safe(&LintConfig::default(), &xmap, &parts, &[mask]);
        assert_eq!(codes(&report), vec![LintCode::UnsafeMask]);
        assert!(report.render_human().contains("SC5[1]"));
    }

    #[test]
    fn mask_count_mismatch_fires() {
        let xmap = fig4_xmap();
        let parts = vec![PatternSet::all(8)];
        let report = check_masks_safe(&LintConfig::default(), &xmap, &parts, &[]);
        assert!(report.has_deny());
    }

    #[test]
    fn tampered_cost_fires() {
        let xmap = fig4_xmap();
        let cancel = XCancelConfig::new(10, 2);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let mut claimed = outcome.cost.clone();
        claimed.leaked_x += 1;
        let report = check_cost_accounting(
            &LintConfig::default(),
            &xmap,
            &outcome.partitions,
            cancel,
            &claimed,
        );
        assert_eq!(codes(&report), vec![LintCode::CostMismatch]);
        assert!(report.render_human().contains("leaked_x"));
    }

    #[test]
    fn primitive_taps_pass_and_defaults_warn() {
        let lc = LintConfig::default();
        // x^4 + x + 1 (primitive) realized as taps {2, 3}.
        assert!(check_misr_taps(&lc, 4, &Taps::new(vec![2, 3])).is_empty());
        // Taps::default_for documents that it is not primitivity-tuned.
        let report = check_misr_taps(&lc, 16, &Taps::default_for(16));
        assert_eq!(codes(&report), vec![LintCode::DegenerateMisr]);
        assert!(!report.has_deny(), "non-primitive is a warning");
    }

    #[test]
    fn missing_top_tap_fires() {
        let report = check_misr_taps(&LintConfig::default(), 8, &Taps::new(vec![2]));
        assert_eq!(codes(&report), vec![LintCode::DegenerateMisr]);
        assert!(report.render_human().contains("singular"));
    }

    #[test]
    fn out_of_range_tap_fires() {
        let report = check_misr_taps(&LintConfig::default(), 4, &Taps::new(vec![3, 9]));
        assert_eq!(codes(&report), vec![LintCode::DegenerateMisr]);
    }

    #[test]
    fn plan_latency_fires_on_paper_scale_only() {
        let lc = LintConfig::default();
        assert!(check_plan_latency(&lc, &WorkloadSpec::default()).is_empty());
        let report = check_plan_latency(&lc, &WorkloadSpec::ckt_b());
        assert_eq!(codes(&report), vec![LintCode::BestCostLatency]);
        assert!(!report.has_deny(), "latency estimate is advisory");
        assert!(report.render_human().contains("largest-class"));
    }

    #[test]
    fn cancel_params_checked() {
        let lc = LintConfig::default();
        assert!(check_cancel_params(&lc, 32, 7).is_empty());
        assert!(check_cancel_params(&lc, 10, 10).has_deny());
        assert!(check_cancel_params(&lc, 10, 0).has_deny());
        assert!(check_cancel_params(&lc, 1, 0).has_deny());
        let report = check_cancel_params(&lc, 10, 7);
        assert_eq!(codes(&report), vec![LintCode::BadCancelConfig]);
        assert!(!report.has_deny(), "q > m/2 is a warning");
    }
}
