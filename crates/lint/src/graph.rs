//! Tarjan's strongly-connected-components algorithm (iterative), used by
//! the combinational-loop rule.

/// Returns every non-trivial SCC of the directed graph `edges` over nodes
/// `0..n`: components of two or more nodes, plus single nodes with a
/// self-edge. Each component is sorted ascending; components are ordered
/// by their smallest node.
pub fn nontrivial_sccs(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} nodes");
        if u == v {
            self_loop[u] = true;
        }
        adj[u].push(v);
    }

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: (node, next-child-cursor) call frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&(v, cursor)) = frames.last() {
            if let Some(&w) = adj[v].get(cursor) {
                frames.last_mut().expect("frame present").1 += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if component.len() > 1 || self_loop[component[0]] {
                        component.sort_unstable();
                        sccs.push(component);
                    }
                }
            }
        }
    }
    sccs.sort_by_key(|c| c[0]);
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_no_nontrivial_sccs() {
        let sccs = nontrivial_sccs(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(sccs.is_empty());
    }

    #[test]
    fn finds_a_simple_cycle() {
        let sccs = nontrivial_sccs(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn self_loop_counts() {
        let sccs = nontrivial_sccs(3, &[(1, 1), (0, 2)]);
        assert_eq!(sccs, vec![vec![1]]);
    }

    #[test]
    fn two_separate_cycles() {
        let sccs = nontrivial_sccs(6, &[(0, 1), (1, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(sccs, vec![vec![0, 1], vec![3, 4, 5]]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // The iterative formulation must handle paths far beyond any
        // recursion limit.
        let n = 200_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        assert!(nontrivial_sccs(n, &edges).is_empty());
    }
}
