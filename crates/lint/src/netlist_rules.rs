//! Netlist design rules (XL01xx).
//!
//! The rules run on [`NetlistFacts`], a plain-data view of a netlist.
//! [`NetlistFacts::from_netlist`] extracts it from a validated
//! [`Netlist`]; fixtures (and future deserializers) can also construct
//! defective facts directly, which is how the rules that
//! [`xhc_logic::NetlistBuilder`] already guards against (loops, arity)
//! are exercised.

use crate::diag::{LintCode, LintConfig, LintReport};
use crate::graph::nontrivial_sccs;
use xhc_logic::{GateKind, Netlist, Node};

/// The per-node shape the netlist rules inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeFact {
    /// Primary input.
    Input,
    /// Constant driver.
    Const,
    /// Combinational gate with its fan-in node indices.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// Fan-in node indices.
        inputs: Vec<usize>,
    },
    /// Flop with an optional D-input node index.
    Flop {
        /// Data input, if connected.
        d: Option<usize>,
    },
    /// Tri-state buffer.
    TriBuf {
        /// Enable node index.
        enable: usize,
        /// Data node index.
        data: usize,
    },
    /// Bus resolved from tri-state drivers.
    Bus {
        /// Driver node indices.
        drivers: Vec<usize>,
    },
}

/// A plain-data view of a netlist: node shapes plus the output list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistFacts {
    /// One fact per node, indexed by node id.
    pub nodes: Vec<NodeFact>,
    /// Node indices driving primary outputs.
    pub outputs: Vec<usize>,
}

impl NetlistFacts {
    /// Extracts the facts of a validated netlist.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let nodes = netlist
            .iter_nodes()
            .map(|(_, node)| match node {
                Node::Input(_) => NodeFact::Input,
                Node::Const(_) => NodeFact::Const,
                Node::Gate { kind, inputs } => NodeFact::Gate {
                    kind: *kind,
                    inputs: inputs.iter().map(|n| n.index()).collect(),
                },
                Node::Flop { d, .. } => NodeFact::Flop {
                    d: d.map(|n| n.index()),
                },
                Node::TriBuf { enable, data } => NodeFact::TriBuf {
                    enable: enable.index(),
                    data: data.index(),
                },
                Node::Bus { drivers } => NodeFact::Bus {
                    drivers: drivers.iter().map(|n| n.index()).collect(),
                },
            })
            .collect();
        NetlistFacts {
            nodes,
            outputs: netlist.outputs().iter().map(|n| n.index()).collect(),
        }
    }

    /// Combinational dependency edges `driver -> sink`. Flop D edges are
    /// sequential and excluded (state feedback through a flop is legal).
    fn comb_edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (i, fact) in self.nodes.iter().enumerate() {
            match fact {
                NodeFact::Gate { inputs, .. } => {
                    edges.extend(inputs.iter().map(|&d| (d, i)));
                }
                NodeFact::TriBuf { enable, data } => {
                    edges.push((*enable, i));
                    edges.push((*data, i));
                }
                NodeFact::Bus { drivers } => {
                    edges.extend(drivers.iter().map(|&d| (d, i)));
                }
                NodeFact::Input | NodeFact::Const | NodeFact::Flop { .. } => {}
            }
        }
        edges
    }

    /// Nodes whose value can reach a primary output, traversing backward
    /// through gates, buses *and* flop D pins.
    fn observable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.to_vec();
        while let Some(v) = stack.pop() {
            if v >= seen.len() || seen[v] {
                continue;
            }
            seen[v] = true;
            match &self.nodes[v] {
                NodeFact::Gate { inputs, .. } => stack.extend(inputs.iter().copied()),
                NodeFact::TriBuf { enable, data } => stack.extend([*enable, *data]),
                NodeFact::Bus { drivers } => stack.extend(drivers.iter().copied()),
                NodeFact::Flop { d } => stack.extend(d.iter().copied()),
                NodeFact::Input | NodeFact::Const => {}
            }
        }
        seen
    }
}

/// Runs every netlist rule on a validated netlist.
pub fn check_netlist(config: &LintConfig, netlist: &Netlist) -> LintReport {
    check_netlist_facts(config, &NetlistFacts::from_netlist(netlist))
}

/// Runs every netlist rule on a facts view (XL0101–XL0105).
pub fn check_netlist_facts(config: &LintConfig, facts: &NetlistFacts) -> LintReport {
    let mut report = LintReport::new();
    rule_comb_loop(config, facts, &mut report);
    rule_floating_net(config, facts, &mut report);
    rule_bad_arity(config, facts, &mut report);
    rule_dead_logic_and_unreachable_flops(config, facts, &mut report);
    report
}

/// XL0101: combinational cycles (Tarjan SCC over combinational edges).
fn rule_comb_loop(config: &LintConfig, facts: &NetlistFacts, report: &mut LintReport) {
    for scc in nontrivial_sccs(facts.nodes.len(), &facts.comb_edges()) {
        let shown: Vec<String> = scc.iter().take(8).map(|n| format!("n{n}")).collect();
        let suffix = if scc.len() > 8 { ", …" } else { "" };
        report.push(
            config,
            LintCode::CombLoop,
            format!("netlist nodes {{{}{suffix}}}", shown.join(", ")),
            format!(
                "combinational loop through {} node(s): values oscillate or latch",
                scc.len()
            ),
            "break the loop with a flop, or re-route the offending fan-in",
        );
    }
}

/// XL0102: floating nets — driverless buses and unconnected flop D pins.
fn rule_floating_net(config: &LintConfig, facts: &NetlistFacts, report: &mut LintReport) {
    for (i, fact) in facts.nodes.iter().enumerate() {
        match fact {
            NodeFact::Bus { drivers } if drivers.is_empty() => {
                report.push(
                    config,
                    LintCode::FloatingNet,
                    format!("netlist node n{i}"),
                    "bus has no tri-state drivers: it floats (permanent X source)",
                    "connect at least one TriBuf driver or remove the bus",
                );
            }
            NodeFact::Flop { d: None } => {
                report.push(
                    config,
                    LintCode::FloatingNet,
                    format!("netlist node n{i}"),
                    "flop D input is unconnected: next state is undefined",
                    "connect the D pin with connect_flop_d",
                );
            }
            _ => {}
        }
    }
}

/// XL0104: per-[`GateKind`] fan-in arity.
fn rule_bad_arity(config: &LintConfig, facts: &NetlistFacts, report: &mut LintReport) {
    for (i, fact) in facts.nodes.iter().enumerate() {
        let NodeFact::Gate { kind, inputs } = fact else {
            continue;
        };
        let got = inputs.len();
        let expected: (usize, Option<usize>) = match kind {
            GateKind::Not | GateKind::Buf => (1, Some(1)),
            GateKind::Mux => (3, Some(3)),
            _ => (2, None),
        };
        let ok = got >= expected.0 && expected.1.is_none_or(|hi| got <= hi);
        if !ok {
            let want = match expected {
                (lo, Some(hi)) if lo == hi => format!("exactly {lo}"),
                (lo, _) => format!("at least {lo}"),
            };
            report.push(
                config,
                LintCode::BadArity,
                format!("netlist node n{i}"),
                format!("{kind:?} gate has {got} input(s), expected {want}"),
                "fix the fan-in list; the simulator's semantics assume valid arity",
            );
        }
    }
}

/// XL0103 + XL0105: logic and flops no primary output can observe.
fn rule_dead_logic_and_unreachable_flops(
    config: &LintConfig,
    facts: &NetlistFacts,
    report: &mut LintReport,
) {
    let observable = facts.observable();
    for (i, fact) in facts.nodes.iter().enumerate() {
        if observable[i] {
            continue;
        }
        match fact {
            NodeFact::Gate { .. } | NodeFact::Bus { .. } => {
                report.push(
                    config,
                    LintCode::DeadLogic,
                    format!("netlist node n{i}"),
                    "combinational node is observable at no primary output",
                    "dead logic wastes area and fault-simulation effort; remove it \
                     or route it to an output",
                );
            }
            NodeFact::Flop { .. } => {
                report.push(
                    config,
                    LintCode::UnreachableFlop,
                    format!("netlist node n{i}"),
                    "flop state is observable at no primary output",
                    "unobservable state cannot be tested; scan it out or remove it",
                );
            }
            // TriBufs are reported through their bus; inputs/consts are
            // legitimately fanout-free in partial designs.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xhc_logic::{FlopInit, NetlistBuilder};

    fn codes(report: &LintReport) -> Vec<LintCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_netlist_passes() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let g = b.and2(a, c);
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, g);
        let o = b.xor2(g, f);
        b.output(o);
        let netlist = b.finish().expect("valid");
        let report = check_netlist(&LintConfig::default(), &netlist);
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn injected_comb_loop_fires() {
        // The builder rejects loops, so inject one at the facts level —
        // exactly what a buggy deserializer could produce.
        let facts = NetlistFacts {
            nodes: vec![
                NodeFact::Input,
                NodeFact::Gate {
                    kind: GateKind::And,
                    inputs: vec![0, 2],
                },
                NodeFact::Gate {
                    kind: GateKind::Or,
                    inputs: vec![1, 1],
                },
            ],
            outputs: vec![2],
        };
        let report = check_netlist_facts(&LintConfig::default(), &facts);
        assert!(codes(&report).contains(&LintCode::CombLoop));
        assert!(report.has_deny());
    }

    #[test]
    fn sequential_feedback_is_not_a_loop() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let f = b.flop(FlopInit::Zero);
        let g = b.xor2(a, f);
        b.connect_flop_d(f, g); // state feedback through the flop
        b.output(g);
        let netlist = b.finish().expect("valid");
        let report = check_netlist(&LintConfig::default(), &netlist);
        assert!(!codes(&report).contains(&LintCode::CombLoop));
    }

    #[test]
    fn floating_bus_and_flop_fire() {
        let facts = NetlistFacts {
            nodes: vec![
                NodeFact::Bus {
                    drivers: Vec::new(),
                },
                NodeFact::Flop { d: None },
            ],
            outputs: vec![0, 1],
        };
        let report = check_netlist_facts(&LintConfig::default(), &facts);
        assert_eq!(
            codes(&report),
            vec![LintCode::FloatingNet, LintCode::FloatingNet]
        );
    }

    #[test]
    fn bad_arity_fires_per_kind() {
        let facts = NetlistFacts {
            nodes: vec![
                NodeFact::Input,
                NodeFact::Gate {
                    kind: GateKind::Not,
                    inputs: vec![0, 0],
                },
                NodeFact::Gate {
                    kind: GateKind::Mux,
                    inputs: vec![0, 0],
                },
                NodeFact::Gate {
                    kind: GateKind::And,
                    inputs: vec![0],
                },
            ],
            outputs: vec![1, 2, 3],
        };
        let report = check_netlist_facts(&LintConfig::default(), &facts);
        assert_eq!(
            codes(&report),
            vec![LintCode::BadArity, LintCode::BadArity, LintCode::BadArity]
        );
        let report = check_netlist_facts(&LintConfig::default().allow(LintCode::BadArity), &facts);
        assert!(report.is_empty());
    }

    #[test]
    fn dead_logic_and_unreachable_flop_fire() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let c = b.input();
        let live = b.and2(a, c);
        let dead = b.or2(a, c); // never used
        let _ = dead;
        let f = b.flop(FlopInit::Zero); // feeds nothing
        b.connect_flop_d(f, live);
        b.output(live);
        let netlist = b.finish().expect("valid");
        let report = check_netlist(&LintConfig::default(), &netlist);
        let got = codes(&report);
        assert!(got.contains(&LintCode::DeadLogic), "{got:?}");
        assert!(got.contains(&LintCode::UnreachableFlop), "{got:?}");
        assert!(!report.has_deny(), "both default to Warn");
    }

    #[test]
    fn observable_flop_is_not_reported() {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let f = b.flop(FlopInit::Zero);
        b.connect_flop_d(f, a);
        let o = b.not(f);
        b.output(o);
        let netlist = b.finish().expect("valid");
        let report = check_netlist(&LintConfig::default(), &netlist);
        assert!(report.is_empty(), "{}", report.render_human());
    }
}
