//! `XL05xx`: backend-fleet rules — a plan request must select a backend
//! the [`PlanBackend`] registry actually ships.
//!
//! [`PlanBackend`]: xhc_core::PlanBackend

use xhc_core::BackendId;
use xhc_wire::backend_from_code;

use crate::diag::{LintCode, LintConfig, LintReport};

fn valid_roster() -> String {
    BackendId::ALL
        .iter()
        .map(|b| format!("{} ({})", b.name(), xhc_wire::backend_code(*b)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Lints a plan request's wire-level backend selector (XL0501): the byte
/// must decode to a registered [`BackendId`].
///
/// # Examples
///
/// ```
/// use xhc_lint::{check_backend_code, LintConfig};
///
/// assert!(check_backend_code(&LintConfig::default(), 0).is_empty());
/// assert!(check_backend_code(&LintConfig::default(), 200).has_deny());
/// ```
pub fn check_backend_code(config: &LintConfig, code: u8) -> LintReport {
    let mut report = LintReport::new();
    if backend_from_code(code).is_none() {
        report.push(
            config,
            LintCode::UnknownBackend,
            format!("plan request backend byte {code}"),
            format!("backend code {code} names no registered backend"),
            format!("re-encode the request with one of: {}", valid_roster()),
        );
    }
    report
}

/// Lints a textual backend selector (XL0501) as accepted by
/// `xhybrid plan --backend` and the daemon's `backend=` / `backends=`
/// query parameters.
pub fn check_backend_token(config: &LintConfig, token: &str) -> LintReport {
    let mut report = LintReport::new();
    if BackendId::parse(token).is_none() {
        report.push(
            config,
            LintCode::UnknownBackend,
            format!("backend selector `{token}`"),
            format!("`{token}` names no registered backend"),
            format!("use one of: {}", valid_roster()),
        );
    }
    report
}
