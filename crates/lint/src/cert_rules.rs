//! Cross-artifact certificate rules (XL04xx): a decoded plan certificate
//! checked against its plan, X map and scan configuration.
//!
//! The heavy lifting is `xhc-verify`'s engine-independent checker; this
//! module is the dataflow glue that decodes the artifacts, runs the
//! checker once, and folds each typed [`VerifyError`] into the lint rule
//! family that certifies the same invariant:
//!
//! | code | invariant |
//! |---|---|
//! | XL0401 | content-hash link between certificate and plan |
//! | XL0402 | cover/disjointness witness |
//! | XL0403 | per-partition X-class histograms |
//! | XL0404 | control-bit accounting and cost totals |
//! | XL0405 | per-block Gauss rank certificates |
//! | XL0406 | shape vs the scan config / X map |

use crate::diag::{LintCode, LintConfig, LintReport};
use xhc_core::PartitionOutcome;
use xhc_misr::XCancelConfig;
use xhc_scan::XMap;
use xhc_verify::{verify, PlanCertificate, VerifyError};
use xhc_wire::WireError;

/// Per-rule cap mirroring the other rule families: a corrupt certificate
/// can violate one invariant thousands of times (e.g. every pattern's
/// assignment), and ten witnesses tell the story.
const MAX_INSTANCES: usize = 10;

fn code_for(e: &VerifyError) -> LintCode {
    use VerifyError::*;
    match e {
        PlanHashMismatch { .. } => LintCode::CertPlanHash,
        PatternCountMismatch { .. }
        | PartitionCountMismatch { .. }
        | MaskWidthMismatch { .. }
        | TotalXMismatch { .. }
        | CancelParamMismatch { .. } => LintCode::CertScanMismatch,
        AssignmentOutsidePartition { .. } | PartitionCardinalityMismatch { .. } => {
            LintCode::CertCover
        }
        HistogramMismatch { .. } | HistogramSumMismatch { .. } => LintCode::CertHistogram,
        MaskUnsafe { .. }
        | MaskedXMismatch { .. }
        | LeakedXMismatch { .. }
        | MaskCellsMismatch { .. }
        | PartitionCancelBitsMismatch { .. }
        | MaskingBitsMismatch { .. }
        | CancelingBitsMismatch { .. }
        | CostFieldMismatch { .. } => LintCode::CertAccounting,
        BlockShapeMismatch { .. }
        | BlockRankMismatch { .. }
        | BlockPivotMismatch { .. }
        | BlockCombinationCountMismatch { .. }
        | BlockControlBitsMismatch { .. } => LintCode::CertRankBound,
    }
}

fn help_for(code: LintCode) -> &'static str {
    match code {
        LintCode::CertPlanHash => {
            "the certificate was issued for different plan bytes; re-certify the plan"
        }
        LintCode::CertCover => {
            "the assignment witness must place every pattern inside its claimed partition"
        }
        LintCode::CertHistogram => {
            "re-derive the X-class histograms from the X map restricted to each partition"
        }
        LintCode::CertAccounting => {
            "recompute masked/leaked splits and the paper's cost formula from the X map"
        }
        LintCode::CertRankBound => {
            "re-eliminate the embedded dependency matrix; rank and pivots must reproduce"
        }
        LintCode::CertScanMismatch => {
            "the certificate describes a different topology, pattern set or (m, q)"
        }
        _ => "see the rule documentation",
    }
}

/// XL0401–XL0406: validates a plan certificate against its plan and X
/// map, reporting each violated invariant under its rule code (capped at
/// ten findings per code, with a summary line for the overflow).
pub fn check_certificate(
    config: &LintConfig,
    cert: &PlanCertificate,
    plan: &PartitionOutcome,
    plan_bytes: &[u8],
    xmap: &XMap,
    cancel: XCancelConfig,
) -> LintReport {
    let mut report = LintReport::new();
    let errors = verify(cert, plan, plan_bytes, xmap, cancel);
    let mut emitted = std::collections::BTreeMap::new();
    for e in &errors {
        let code = code_for(e);
        let count = emitted.entry(code).or_insert(0usize);
        *count += 1;
        if *count <= MAX_INSTANCES {
            report.push(
                config,
                code,
                "plan certificate",
                e.to_string(),
                help_for(code),
            );
        }
    }
    for (code, count) in emitted {
        if count > MAX_INSTANCES {
            report.push(
                config,
                code,
                "plan certificate",
                format!(
                    "... and {} more violation(s) of this invariant",
                    count - MAX_INSTANCES
                ),
                help_for(code),
            );
        }
    }
    report
}

/// The wire-level entry point: decodes the three artifacts (certificate,
/// plan, X map), then runs [`check_certificate`] with the cancel
/// configuration the certificate itself claims — the one dataflow pass
/// `xhc-serve` and the CLI share.
///
/// # Errors
///
/// Returns the [`WireError`] of the first artifact that fails to decode
/// (a malformed artifact is a transport problem, not a lint finding).
pub fn check_certificate_artifacts(
    config: &LintConfig,
    cert_bytes: &[u8],
    plan_bytes: &[u8],
    xmap_bytes: &[u8],
) -> Result<LintReport, WireError> {
    let cert = xhc_wire::decode_certificate(cert_bytes)?;
    let (plan, _) = xhc_wire::decode_plan(plan_bytes)?;
    let xmap = xhc_wire::decode_xmap(xmap_bytes)?;
    // The decoder guarantees 0 < q < m, so this cannot panic.
    let cancel = XCancelConfig::new(cert.m, cert.q);
    Ok(check_certificate(
        config, &cert, &plan, plan_bytes, &xmap, cancel,
    ))
}
