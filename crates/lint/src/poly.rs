//! GF(2) polynomial arithmetic for the MISR feedback-polynomial rule.
//!
//! A MISR with feedback taps `T` (state bit `s'[0] = ⊕_{t∈T} s[t]`)
//! realizes the characteristic polynomial
//! `p(x) = x^m + Σ_{t∈T} x^(m-1-t)` over GF(2). The rule checks that `p`
//! is *primitive* — that `x` generates the full multiplicative order
//! `2^m − 1` — which maximizes signature mixing and error coverage.

/// Whether the degree-`m` polynomial realized by `taps` is primitive over
/// GF(2). Supports `2 <= m <= 32`; returns `None` outside that range
/// (the check is skipped, not failed).
///
/// Every tap must be `< m`.
pub fn taps_primitive(m: usize, taps: &[usize]) -> Option<bool> {
    if !(2..=32).contains(&m) {
        return None;
    }
    assert!(taps.iter().all(|&t| t < m), "tap out of range");
    // p as a bitmask: bit i = coefficient of x^i. Degree m fits in u64.
    let mut p: u64 = 1 << m;
    for &t in taps {
        p |= 1 << (m - 1 - t);
    }
    // A primitive polynomial needs a nonzero constant term (equivalently
    // the m-1 tap present), else x | p and the register is singular.
    if p & 1 == 0 {
        return Some(false);
    }
    let group_order = (1u64 << m) - 1;
    // x must have exact order 2^m - 1 in GF(2)[x]/(p). If p were
    // reducible, the unit group is strictly smaller than 2^m - 1, so the
    // order test alone also proves irreducibility.
    if pow_mod(2, group_order, p, m) != 1 {
        return Some(false);
    }
    for f in prime_factors(group_order) {
        if pow_mod(2, group_order / f, p, m) == 1 {
            return Some(false);
        }
    }
    Some(true)
}

/// `base^exp mod p` where `base`/`p` are GF(2) polynomial bitmasks and
/// `p` has degree `m`.
fn pow_mod(base: u64, exp: u64, p: u64, m: usize) -> u64 {
    let mut result = 1u64;
    let mut acc = rem(base, p, m);
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            result = mul_mod(result, acc, p, m);
        }
        acc = mul_mod(acc, acc, p, m);
        e >>= 1;
    }
    result
}

/// Carry-less multiply of two degree-`< m` polynomials, reduced mod `p`.
fn mul_mod(a: u64, b: u64, p: u64, m: usize) -> u64 {
    debug_assert!(m <= 32, "product must fit in u64");
    let mut prod = 0u64;
    let mut a = a;
    let mut b = b;
    while b > 0 {
        if b & 1 == 1 {
            prod ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    rem(prod, p, m)
}

/// Polynomial remainder `a mod p` where `p` has degree `m`.
fn rem(mut a: u64, p: u64, m: usize) -> u64 {
    while a >> m != 0 {
        let shift = 63 - a.leading_zeros() as usize - m;
        a ^= p << shift;
    }
    a
}

/// The distinct prime factors of `n` (trial division; `n < 2^32` here, so
/// divisors up to 2^16 suffice).
fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_primitive_polynomials() {
        // x^2+x+1: taps {1} (m-1-t = 0) + {0} -> t in {1, 0}? p needs
        // x^1 and x^0 terms: t = m-1-1 = 0 and t = m-1 = 1.
        assert_eq!(taps_primitive(2, &[0, 1]), Some(true));
        // x^3+x+1 -> exponents {1, 0} -> taps {m-1-1, m-1} = {1, 2}.
        assert_eq!(taps_primitive(3, &[1, 2]), Some(true));
        // x^4+x+1 -> taps {2, 3}.
        assert_eq!(taps_primitive(4, &[2, 3]), Some(true));
        // x^8+x^4+x^3+x^2+1 -> exponents {4,3,2,0} -> taps {3,4,5,7}.
        assert_eq!(taps_primitive(8, &[3, 4, 5, 7]), Some(true));
        // x^16+x^12+x^3+x+1 (CRC-CCITT is NOT primitive; use the standard
        // primitive x^16+x^5+x^3+x^2+1 -> exponents {5,3,2,0} ->
        // taps {10,12,13,15}).
        assert_eq!(taps_primitive(16, &[10, 12, 13, 15]), Some(true));
    }

    #[test]
    fn known_non_primitive_polynomials() {
        // x^4+x^2+1 = (x^2+x+1)^2: exponents {2, 0} -> taps {1, 3}.
        assert_eq!(taps_primitive(4, &[1, 3]), Some(false));
        // x^4+x^3+x^2+x+1 divides x^5-1: order 5 < 15. Exponents
        // {3,2,1,0} -> taps {0,1,2,3}.
        assert_eq!(taps_primitive(4, &[0, 1, 2, 3]), Some(false));
        // Missing the m-1 tap -> no constant term -> singular.
        assert_eq!(taps_primitive(4, &[1]), Some(false));
    }

    #[test]
    fn out_of_scope_sizes_are_skipped() {
        assert_eq!(taps_primitive(33, &[32]), None);
        assert_eq!(taps_primitive(1, &[0]), None);
    }

    #[test]
    fn m32_runs_fast() {
        // The largest supported size must complete instantly (2^32-1 =
        // 3 * 5 * 17 * 257 * 65537).
        let got = taps_primitive(32, &[1, 16, 31]);
        assert!(got.is_some());
    }

    #[test]
    fn prime_factorization() {
        assert_eq!(prime_factors((1 << 4) - 1), vec![3, 5]);
        assert_eq!(prime_factors((1u64 << 32) - 1), vec![3, 5, 17, 257, 65537]);
        assert_eq!(prime_factors(7), vec![7]);
    }
}
