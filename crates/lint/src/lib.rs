//! `xhc-lint`: a design-rule static analyzer for the X-masking /
//! X-canceling hybrid pipeline.
//!
//! The crate checks the artifacts the workspace produces and consumes —
//! netlists, scan topologies, X maps, partition plans, mask words, cost
//! accounting, MISR configurations and plan certificates — against
//! twenty-one rules grouped by pipeline stage:
//!
//! | Codes | Stage | Rules |
//! |-------|-------|-------|
//! | `XL01xx` | netlist | combinational loops, floating nets, dead logic, gate arity, unreachable flops |
//! | `XL02xx` | scan / X map | chain imbalance, out-of-range X entries, duplicate X entries |
//! | `XL03xx` | hybrid | partition cover, unsafe masks, cost accounting, MISR feedback, `(m, q)` sanity, BestCost planning latency |
//! | `XL04xx` | certificate | plan-hash link, cover witness, X-class histograms, control-bit accounting, Gauss rank bounds, scan-config consistency (cross-artifact, via `xhc-verify`) |
//! | `XL05xx` | backend fleet | unknown backend selector (wire byte or CLI/query token) |
//!
//! Each rule carries a default [`Severity`] (`Deny` for correctness
//! violations, `Warn` for quality findings) that a [`LintConfig`] can
//! override per rule. Findings accumulate in a [`LintReport`] with
//! `rustc`-style human and line-oriented JSON renderers.
//!
//! Structural rules run on plain-data *facts* views
//! ([`NetlistFacts`], [`XMapFacts`]) so defects the workspace builders
//! reject at construction — the exact defects a buggy importer would
//! produce — are still expressible and detectable. Convenience wrappers
//! ([`check_netlist`], [`check_xmap`]) extract the facts from validated
//! artifacts as clean-pass baselines.
//!
//! The `xhc-lint` binary lints the repo's bundled workload presets end to
//! end and exits nonzero iff any `Deny` finding fires.
//!
//! # Examples
//!
//! ```
//! use xhc_lint::{check_cancel_params, LintConfig};
//!
//! let config = LintConfig::default();
//! assert!(check_cancel_params(&config, 32, 7).is_empty());
//! assert!(check_cancel_params(&config, 8, 8).has_deny()); // q >= m
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend_rules;
mod cert_rules;
mod diag;
mod graph;
mod hybrid_rules;
mod netlist_rules;
mod poly;
mod scan_rules;

pub use backend_rules::{check_backend_code, check_backend_token};
pub use cert_rules::{check_certificate, check_certificate_artifacts};
pub use diag::{Diagnostic, LintCode, LintConfig, LintReport, Severity};
pub use graph::nontrivial_sccs;
pub use hybrid_rules::{
    check_cancel_params, check_cost_accounting, check_masks_safe, check_misr_taps,
    check_partition_cover, check_plan_latency,
};
pub use netlist_rules::{check_netlist, check_netlist_facts, NetlistFacts, NodeFact};
pub use poly::taps_primitive;
pub use scan_rules::{check_scan_config, check_xmap, check_xmap_facts, XMapFacts};

use xhc_core::{PartitionEngine, PartitionOutcome};
use xhc_misr::{Taps, XCancelConfig};
use xhc_scan::XMap;
use xhc_workload::WorkloadSpec;

/// Lints a finished partition outcome against its X map and cancel
/// config: disjoint cover (XL0301), mask safety (XL0302) and cost
/// accounting (XL0303).
pub fn check_outcome(
    config: &LintConfig,
    xmap: &XMap,
    outcome: &PartitionOutcome,
    cancel: XCancelConfig,
) -> LintReport {
    let mut report = check_partition_cover(config, xmap.num_patterns(), &outcome.partitions);
    report.merge(check_masks_safe(
        config,
        xmap,
        &outcome.partitions,
        &outcome.masks,
    ));
    report.merge(check_cost_accounting(
        config,
        xmap,
        &outcome.partitions,
        cancel,
        &outcome.cost,
    ));
    report
}

/// Lints a workload end to end: estimates the planning-latency budget
/// (XL0306), generates its X map, checks the scan topology and X
/// entries, runs the [`PartitionEngine`], and checks the resulting plan
/// plus the MISR/cancel configuration.
pub fn lint_workload(
    config: &LintConfig,
    spec: &WorkloadSpec,
    cancel: XCancelConfig,
    taps: &Taps,
) -> LintReport {
    let mut report = check_plan_latency(config, spec);
    let xmap = spec.generate();
    report.merge(check_xmap(config, &xmap));
    report.merge(check_cancel_params(config, cancel.m(), cancel.q()));
    report.merge(check_misr_taps(config, cancel.m(), taps));
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    report.merge(check_outcome(config, &xmap, &outcome, cancel));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_lints_clean_modulo_default_taps() {
        let spec = WorkloadSpec {
            total_cells: 200,
            num_chains: 4,
            num_patterns: 40,
            ..WorkloadSpec::default()
        };
        let cancel = XCancelConfig::new(10, 2);
        let report = lint_workload(
            &LintConfig::default(),
            &spec,
            cancel,
            &Taps::default_for(10),
        );
        // Taps::default_for is documented as not primitivity-tuned, so the
        // only acceptable finding is the XL0304 warning.
        assert!(!report.has_deny(), "{}", report.render_human());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == LintCode::DegenerateMisr));
    }
}
