//! The analyzer's soundness property: artifacts produced by the
//! workspace's own validated builders and engines lint clean — every
//! finding on generator output would be a false positive (deterministic
//! seeded loops).
//!
//! The only tolerated finding is the XL0304 primitivity *warning* when a
//! fixture uses `Taps::default_for` (documented as not primitivity-tuned)
//! — those runs suppress the rule explicitly.

use xhc_core::PartitionEngine;
use xhc_lint::{check_netlist, check_outcome, check_xmap_facts, LintCode, LintConfig, XMapFacts};
use xhc_logic::generate::CircuitSpec;
use xhc_misr::XCancelConfig;
use xhc_prng::XhcRng;
use xhc_scan::{ScanConfig, XMapBuilder};
use xhc_workload::WorkloadSpec;

/// Random generated circuits produce netlists with no structural
/// findings: generators only emit connected, acyclic, observable logic.
#[test]
fn generated_netlists_lint_clean() {
    let mut rng = XhcRng::seed_from_u64(0x11D7);
    for _ in 0..32 {
        let spec = CircuitSpec {
            num_inputs: rng.gen_range(2..8),
            num_outputs: rng.gen_range(1..4),
            num_gates: rng.gen_range(10..90),
            num_scan_flops: rng.gen_range(0..10),
            num_shadow_flops: rng.gen_range(0..3),
            num_buses: rng.gen_range(0..3),
            max_fanin: 4,
            seed: rng.next_u64(),
        };
        let circuit = spec.generate();
        // Generated circuits may legitimately contain logic that ends up
        // unobservable (random fan-out) — the structural Deny rules are
        // what must never fire on builder-accepted netlists.
        let config = LintConfig::default()
            .allow(LintCode::DeadLogic)
            .allow(LintCode::UnreachableFlop);
        let report = check_netlist(&config, &circuit.netlist);
        assert!(
            report.is_empty(),
            "spec {spec:?} produced findings:\n{}",
            report.render_human()
        );
    }
}

/// Random valid X maps (builder-produced) never trip the X-map rules.
#[test]
fn built_xmaps_lint_clean() {
    let mut rng = XhcRng::seed_from_u64(0x11D8);
    for _ in 0..48 {
        let chains = rng.gen_range(1..6);
        let len = rng.gen_range(1..8);
        let patterns = rng.gen_range(1..30);
        let config = ScanConfig::uniform(chains, len);
        let mut b = XMapBuilder::new(config.clone(), patterns);
        for _ in 0..rng.gen_range(0..80) {
            let cell = rng.gen_index(config.total_cells());
            b.add_x(config.cell_at(cell), rng.gen_index(patterns))
                .unwrap();
        }
        let xmap = b.finish();
        let report = check_xmap_facts(&LintConfig::default(), &XMapFacts::from_xmap(&xmap));
        assert!(report.is_empty(), "{}", report.render_human());
    }
}

/// End to end: random workloads through the partition engine produce
/// plans with zero diagnostics — cover, mask safety and cost accounting
/// all hold by construction.
#[test]
fn engine_outcomes_lint_clean() {
    let mut rng = XhcRng::seed_from_u64(0x11D9);
    for _ in 0..12 {
        let spec = WorkloadSpec {
            total_cells: rng.gen_range(60..300),
            num_chains: rng.gen_range(2..6),
            num_patterns: rng.gen_range(16..64),
            x_density: rng.gen_range(0.005..0.05),
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        };
        let xmap = spec.generate();
        let m = rng.gen_range(6..=16);
        let q = rng.gen_range(1..=2usize);
        let cancel = XCancelConfig::new(m, q);
        let outcome = PartitionEngine::new(cancel).run(&xmap);
        let report = check_outcome(&LintConfig::default(), &xmap, &outcome, cancel);
        assert!(
            report.is_empty(),
            "workload {spec:?} with (m={m}, q={q}) produced findings:\n{}",
            report.render_human()
        );
    }
}
