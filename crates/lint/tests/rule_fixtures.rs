//! Per-rule fixtures: every rule has a seeded-defect fixture on which it
//! fires (and only it fires) and a clean fixture on which it stays quiet.

use xhc_bits::PatternSet;
use xhc_core::PartitionEngine;
use xhc_lint::{
    check_cancel_params, check_certificate, check_cost_accounting, check_masks_safe,
    check_misr_taps, check_netlist, check_netlist_facts, check_outcome, check_partition_cover,
    check_plan_latency, check_scan_config, check_xmap, check_xmap_facts, LintCode, LintConfig,
    LintReport, NetlistFacts, NodeFact, XMapFacts,
};
use xhc_logic::{FlopInit, GateKind, NetlistBuilder};
use xhc_misr::{MaskWord, Taps, XCancelConfig};
use xhc_scan::{CellId, ScanConfig, XMap, XMapBuilder};
use xhc_workload::WorkloadSpec;

fn codes(report: &LintReport) -> Vec<LintCode> {
    let mut codes: Vec<LintCode> = report.diagnostics.iter().map(|d| d.code).collect();
    codes.dedup();
    codes
}

/// A small clean netlist: two inputs, a few gates, a flop in a feedback
/// loop (sequential, not combinational), everything observable.
fn clean_netlist_facts() -> NetlistFacts {
    let mut b = NetlistBuilder::new();
    let a = b.input();
    let c = b.input();
    let g1 = b.and2(a, c);
    let f = b.flop(FlopInit::Zero);
    let g2 = b.xor2(g1, f);
    b.connect_flop_d(f, g2);
    b.output(g2);
    NetlistFacts::from_netlist(&b.finish().expect("fixture netlist is valid"))
}

// ---------------------------------------------------------------- XL0101

#[test]
fn xl0101_comb_loop_fires() {
    // g2 -> g3 -> g2 — a combinational cycle a buggy importer could emit.
    let facts = NetlistFacts {
        nodes: vec![
            NodeFact::Input,
            NodeFact::Gate {
                kind: GateKind::And,
                inputs: vec![0, 2],
            },
            NodeFact::Gate {
                kind: GateKind::Not,
                inputs: vec![1],
            },
        ],
        outputs: vec![1],
    };
    let report = check_netlist_facts(&LintConfig::default(), &facts);
    assert_eq!(codes(&report), vec![LintCode::CombLoop]);
    assert!(report.has_deny());
}

#[test]
fn xl0101_clean_netlist_passes() {
    let report = check_netlist_facts(&LintConfig::default(), &clean_netlist_facts());
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0102

#[test]
fn xl0102_floating_net_fires() {
    // A driverless bus and an unconnected flop D pin.
    let facts = NetlistFacts {
        nodes: vec![
            NodeFact::Bus {
                drivers: Vec::new(),
            },
            NodeFact::Flop { d: None },
        ],
        outputs: vec![0, 1],
    };
    let report = check_netlist_facts(&LintConfig::default(), &facts);
    assert_eq!(codes(&report), vec![LintCode::FloatingNet]);
    assert_eq!(report.len(), 2);
}

#[test]
fn xl0102_driven_bus_passes() {
    let mut b = NetlistBuilder::new();
    let en = b.input();
    let data = b.input();
    let t = b.tribuf(en, data);
    let bus = b.bus(vec![t]);
    b.output(bus);
    let report = check_netlist(
        &LintConfig::default(),
        &b.finish().expect("fixture netlist is valid"),
    );
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0103

#[test]
fn xl0103_dead_logic_fires() {
    // A gate nothing observes.
    let mut b = NetlistBuilder::new();
    let a = b.input();
    let c = b.input();
    let live = b.or2(a, c);
    let _dead = b.and2(a, c);
    b.output(live);
    let report = check_netlist(
        &LintConfig::default(),
        &b.finish().expect("fixture netlist is valid"),
    );
    assert_eq!(codes(&report), vec![LintCode::DeadLogic]);
    assert!(!report.has_deny(), "dead logic is a warning by default");
}

#[test]
fn xl0103_logic_observed_through_flop_passes() {
    // Logic feeding only a flop D pin is still observable (next cycle).
    let mut b = NetlistBuilder::new();
    let a = b.input();
    let g = b.not(a);
    let f = b.flop(FlopInit::Zero);
    b.connect_flop_d(f, g);
    b.output(f);
    let report = check_netlist(
        &LintConfig::default(),
        &b.finish().expect("fixture netlist is valid"),
    );
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0104

#[test]
fn xl0104_bad_arity_fires() {
    // A 2-input NOT and a 1-input AND — both invalid.
    let facts = NetlistFacts {
        nodes: vec![
            NodeFact::Input,
            NodeFact::Input,
            NodeFact::Gate {
                kind: GateKind::Not,
                inputs: vec![0, 1],
            },
            NodeFact::Gate {
                kind: GateKind::And,
                inputs: vec![0],
            },
        ],
        outputs: vec![2, 3],
    };
    let report = check_netlist_facts(&LintConfig::default(), &facts);
    assert_eq!(codes(&report), vec![LintCode::BadArity]);
    assert_eq!(report.len(), 2);
    assert!(report.has_deny());
}

#[test]
fn xl0104_wide_gates_pass() {
    let mut b = NetlistBuilder::new();
    let inputs: Vec<_> = (0..4).map(|_| b.input()).collect();
    let wide = b.gate(GateKind::And, inputs.clone());
    let sel = b.gate(GateKind::Mux, vec![inputs[0], inputs[1], wide]);
    b.output(sel);
    let report = check_netlist(
        &LintConfig::default(),
        &b.finish().expect("fixture netlist is valid"),
    );
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0105

#[test]
fn xl0105_unreachable_flop_fires() {
    let mut b = NetlistBuilder::new();
    let a = b.input();
    let f = b.flop(FlopInit::Zero);
    b.connect_flop_d(f, a);
    // The flop is driven but nothing reads it; a separate path feeds the
    // output.
    let out = b.not(a);
    b.output(out);
    let report = check_netlist(
        &LintConfig::default(),
        &b.finish().expect("fixture netlist is valid"),
    );
    assert_eq!(codes(&report), vec![LintCode::UnreachableFlop]);
    assert!(!report.has_deny());
}

#[test]
fn xl0105_observed_flop_passes() {
    let report = check_netlist_facts(&LintConfig::default(), &clean_netlist_facts());
    assert!(report.is_empty());
}

// ---------------------------------------------------------------- XL0201

#[test]
fn xl0201_chain_imbalance_fires() {
    // 300-bit mask word for 120 cells: 60% waste.
    let scan = ScanConfig::new(vec![100, 10, 10]);
    let report = check_scan_config(&LintConfig::default(), &scan);
    assert_eq!(codes(&report), vec![LintCode::ChainImbalance]);
}

#[test]
fn xl0201_balanced_chains_pass() {
    let report = check_scan_config(&LintConfig::default(), &ScanConfig::balanced(997, 7));
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0202

#[test]
fn xl0202_out_of_range_fires() {
    let facts = XMapFacts {
        total_cells: 10,
        num_patterns: 6,
        entries: vec![(10, vec![0]), (4, vec![6])],
    };
    let report = check_xmap_facts(&LintConfig::default(), &facts);
    assert_eq!(codes(&report), vec![LintCode::XOutOfRange]);
    assert!(report.has_deny());
}

#[test]
fn xl0202_in_range_passes() {
    let facts = XMapFacts {
        total_cells: 10,
        num_patterns: 6,
        entries: vec![(9, vec![0, 5]), (4, vec![3])],
    };
    let report = check_xmap_facts(&LintConfig::default(), &facts);
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0203

#[test]
fn xl0203_duplicates_fire() {
    let facts = XMapFacts {
        total_cells: 10,
        num_patterns: 6,
        entries: vec![(4, vec![1]), (4, vec![2]), (7, vec![3, 3])],
    };
    let report = check_xmap_facts(&LintConfig::default(), &facts);
    assert_eq!(codes(&report), vec![LintCode::DuplicateX]);
    assert_eq!(report.len(), 2);
}

#[test]
fn xl0203_builder_output_passes() {
    let mut b = XMapBuilder::new(ScanConfig::uniform(2, 5), 6);
    // add_x twice for the same (cell, pattern) coalesces in the builder.
    b.add_x(CellId::new(0, 3), 2).unwrap();
    b.add_x(CellId::new(0, 3), 2).unwrap();
    let report = check_xmap(&LintConfig::default(), &b.finish());
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0301

#[test]
fn xl0301_bad_cover_fires() {
    let lc = LintConfig::default();
    // Overlap.
    let parts = vec![
        PatternSet::from_patterns(6, [0, 1, 2]),
        PatternSet::from_patterns(6, [2, 3, 4, 5]),
    ];
    assert_eq!(
        codes(&check_partition_cover(&lc, 6, &parts)),
        vec![LintCode::PartitionCover]
    );
    // Hole.
    let parts = vec![
        PatternSet::from_patterns(6, [0, 1]),
        PatternSet::from_patterns(6, [3, 4, 5]),
    ];
    assert_eq!(
        codes(&check_partition_cover(&lc, 6, &parts)),
        vec![LintCode::PartitionCover]
    );
}

#[test]
fn xl0301_disjoint_cover_passes() {
    let parts = vec![
        PatternSet::from_patterns(6, [0, 2, 4]),
        PatternSet::from_patterns(6, [1, 3]),
        PatternSet::from_patterns(6, [5]),
    ];
    let report = check_partition_cover(&LintConfig::default(), 6, &parts);
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0302

fn two_cell_xmap() -> XMap {
    let mut b = XMapBuilder::new(ScanConfig::uniform(1, 2), 4);
    // Cell 0 is X everywhere; cell 1 only under pattern 0.
    for p in 0..4 {
        b.add_x(CellId::new(0, 0), p).unwrap();
    }
    b.add_x(CellId::new(0, 1), 0).unwrap();
    b.finish()
}

#[test]
fn xl0302_unsafe_mask_fires() {
    let xmap = two_cell_xmap();
    let parts = vec![PatternSet::all(4)];
    let mut mask = MaskWord::none(xmap.config());
    mask.mask(xmap.config(), CellId::new(0, 1)); // known under patterns 1–3
    let report = check_masks_safe(&LintConfig::default(), &xmap, &parts, &[mask]);
    assert_eq!(codes(&report), vec![LintCode::UnsafeMask]);
    assert!(report.has_deny());
}

#[test]
fn xl0302_all_x_mask_passes() {
    let xmap = two_cell_xmap();
    let parts = vec![PatternSet::all(4)];
    let mut mask = MaskWord::none(xmap.config());
    mask.mask(xmap.config(), CellId::new(0, 0)); // X under every pattern
    let report = check_masks_safe(&LintConfig::default(), &xmap, &parts, &[mask]);
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0303

#[test]
fn xl0303_cost_mismatch_fires() {
    let xmap = two_cell_xmap();
    let cancel = XCancelConfig::new(4, 1);
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let mut claimed = outcome.cost.clone();
    claimed.masking_bits += 2;
    claimed.canceling_bits += 0.5;
    let report = check_cost_accounting(
        &LintConfig::default(),
        &xmap,
        &outcome.partitions,
        cancel,
        &claimed,
    );
    assert_eq!(codes(&report), vec![LintCode::CostMismatch]);
    let text = report.render_human();
    assert!(text.contains("masking_bits") && text.contains("canceling_bits"));
}

#[test]
fn xl0303_engine_cost_passes() {
    let xmap = two_cell_xmap();
    let cancel = XCancelConfig::new(4, 1);
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let report = check_outcome(&LintConfig::default(), &xmap, &outcome, cancel);
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0304

#[test]
fn xl0304_degenerate_misr_fires() {
    let lc = LintConfig::default();
    // No x^m feedback term (m-1 missing): deny.
    assert!(check_misr_taps(&lc, 8, &Taps::new(vec![0, 3])).has_deny());
    // Tap out of range: deny.
    assert!(check_misr_taps(&lc, 4, &Taps::new(vec![3, 7])).has_deny());
    // Non-primitive but structurally sound: warn only.
    let report = check_misr_taps(&lc, 4, &Taps::new(vec![1, 3]));
    assert_eq!(codes(&report), vec![LintCode::DegenerateMisr]);
    assert!(!report.has_deny());
}

#[test]
fn xl0304_primitive_taps_pass() {
    let lc = LintConfig::default();
    // x^4 + x + 1 and x^8 + x^4 + x^3 + x^2 + 1, both primitive.
    assert!(check_misr_taps(&lc, 4, &Taps::new(vec![2, 3])).is_empty());
    assert!(check_misr_taps(&lc, 8, &Taps::new(vec![3, 4, 5, 7])).is_empty());
}

// ---------------------------------------------------------------- XL0305

#[test]
fn xl0305_bad_cancel_config_fires() {
    let lc = LintConfig::default();
    assert!(check_cancel_params(&lc, 0, 0).has_deny());
    assert!(check_cancel_params(&lc, 8, 0).has_deny());
    assert!(check_cancel_params(&lc, 8, 8).has_deny());
    // q > m/2: warn.
    let report = check_cancel_params(&lc, 8, 5);
    assert_eq!(codes(&report), vec![LintCode::BadCancelConfig]);
    assert!(!report.has_deny());
}

#[test]
fn xl0305_paper_config_passes() {
    let cancel = XCancelConfig::paper_default();
    let report = check_cancel_params(&LintConfig::default(), cancel.m(), cancel.q());
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL0306

#[test]
fn xl0306_heavy_best_cost_spec_fires() {
    // The bench suite's scaled BestCost shape, grown past the budget:
    // a weakly-correlated profile with a large active-cell pool and a
    // wide pattern set makes the candidate search quadratic-ish.
    let spec = WorkloadSpec {
        name: "scaled-up",
        total_cells: 40_000,
        num_chains: 40,
        num_patterns: 3000,
        x_density: 0.03,
        ..WorkloadSpec::default()
    };
    let report = check_plan_latency(&LintConfig::default(), &spec);
    assert_eq!(codes(&report), vec![LintCode::BestCostLatency]);
    assert!(!report.has_deny(), "XL0306 is warn-level by default");
    let text = report.render_human();
    assert!(text.contains("largest-class"), "{text}");
    assert!(text.contains("3000 patterns"), "{text}");
}

#[test]
fn xl0306_interactive_specs_pass() {
    let lc = LintConfig::default();
    assert!(check_plan_latency(&lc, &WorkloadSpec::default()).is_empty());
    // The small end-to-end workload other suites lint must stay clean.
    let spec = WorkloadSpec {
        total_cells: 200,
        num_chains: 4,
        num_patterns: 40,
        ..WorkloadSpec::default()
    };
    assert!(check_plan_latency(&lc, &spec).is_empty());
}

#[test]
fn xl0306_mid_size_spec_passes_under_the_sharded_model() {
    // A shape the pre-sharding latency model flagged (~45 ms at 1 word
    // visit/ns on one worker): with the 4-wide lanes and the assumed
    // 8-way intra-candidate sharding it prices at ~3 ms, inside the
    // interactive budget — the lint must follow the kernel it models.
    let spec = WorkloadSpec {
        name: "mid-size",
        total_cells: 4_000,
        num_chains: 8,
        num_patterns: 3000,
        x_density: 0.01,
        ..WorkloadSpec::default()
    };
    let report = check_plan_latency(&LintConfig::default(), &spec);
    assert!(report.is_empty(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XL04xx

/// A certified two-cell plan: engine outcome, its wire bytes and a valid
/// certificate to mutate per-rule.
fn certified_two_cell() -> (
    XMap,
    XCancelConfig,
    xhc_core::PartitionOutcome,
    Vec<u8>,
    xhc_verify::PlanCertificate,
) {
    let xmap = two_cell_xmap();
    let cancel = XCancelConfig::new(4, 1);
    let outcome = PartitionEngine::new(cancel).run(&xmap);
    let plan_bytes = xhc_wire::encode_plan(&outcome, xmap.num_patterns());
    let cert = xhc_verify::certify_plan(&xmap, cancel, &outcome, &plan_bytes, None);
    (xmap, cancel, outcome, plan_bytes, cert)
}

#[test]
fn xl04_valid_certificate_passes() {
    let (xmap, cancel, outcome, plan_bytes, cert) = certified_two_cell();
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert!(report.is_empty(), "{}", report.render_human());
}

#[test]
fn xl0401_broken_plan_link_fires() {
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    cert.plan_hash ^= 0xFF;
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert_eq!(codes(&report), vec![LintCode::CertPlanHash]);
    assert!(report.has_deny());
}

#[test]
fn xl0402_cover_witness_fires() {
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    cert.partitions[0].patterns += 1;
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert_eq!(codes(&report), vec![LintCode::CertCover]);
}

#[test]
fn xl0403_histogram_fires() {
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    let hist = &mut cert.partitions[0].histogram;
    assert!(!hist.is_empty(), "two-cell fixture partition has X classes");
    hist[0].1 += 1;
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert!(codes(&report).contains(&LintCode::CertHistogram));
}

#[test]
fn xl0404_accounting_fires() {
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    cert.partitions[0].mask_cells += 1;
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert_eq!(codes(&report), vec![LintCode::CertAccounting]);
}

#[test]
fn xl0405_rank_bound_fires() {
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    // A hand-built block whose claimed rank overstates its dependency
    // matrix (m = 4 rows, 2 X columns, only one independent row).
    cert.blocks = Some(vec![xhc_verify::BlockCertificate {
        patterns: (0, 4),
        num_x: 2,
        rank: 2,
        pivot_cols: vec![0, 1],
        combinations: 1,
        control_bits: 4,
        dependency: vec![0b01, 0b01, 0, 0],
    }]);
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert!(codes(&report).contains(&LintCode::CertRankBound));

    // And the matching honest block passes.
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    cert.blocks = Some(vec![xhc_verify::BlockCertificate {
        patterns: (0, 4),
        num_x: 2,
        rank: 1,
        pivot_cols: vec![0],
        combinations: 1,
        control_bits: 4,
        dependency: vec![0b01, 0b01, 0, 0],
    }]);
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert!(report.is_empty(), "{}", report.render_human());
}

#[test]
fn xl0406_scan_mismatch_fires() {
    let (xmap, cancel, outcome, plan_bytes, mut cert) = certified_two_cell();
    cert.total_x += 1;
    let report = check_certificate(
        &LintConfig::default(),
        &cert,
        &outcome,
        &plan_bytes,
        &xmap,
        cancel,
    );
    assert_eq!(codes(&report), vec![LintCode::CertScanMismatch]);
}

#[test]
fn xl04_artifact_dataflow_pass_roundtrips() {
    // The wire-level entry point: encode all three artifacts, lint them.
    let (xmap, _, _, plan_bytes, cert) = certified_two_cell();
    let cert_bytes = xhc_wire::encode_certificate(&cert);
    let xmap_bytes = xhc_wire::encode_xmap(&xmap);
    let lc = LintConfig::default();
    let report =
        xhc_lint::check_certificate_artifacts(&lc, &cert_bytes, &plan_bytes, &xmap_bytes).unwrap();
    assert!(report.is_empty(), "{}", report.render_human());

    // A certificate re-pointed at a different plan hash fires XL0401.
    let mut bad = cert.clone();
    bad.plan_hash ^= 1;
    let bad_bytes = xhc_wire::encode_certificate(&bad);
    let report =
        xhc_lint::check_certificate_artifacts(&lc, &bad_bytes, &plan_bytes, &xmap_bytes).unwrap();
    assert_eq!(codes(&report), vec![LintCode::CertPlanHash]);

    // Garbage artifacts are a transport error, not a finding.
    assert!(xhc_lint::check_certificate_artifacts(&lc, b"junk", &plan_bytes, &xmap_bytes).is_err());
}

// ------------------------------------------------------- severity plumbing

#[test]
fn overrides_change_exit_semantics() {
    // Demote a deny rule: report still fires but is no longer fatal.
    let facts = XMapFacts {
        total_cells: 5,
        num_patterns: 5,
        entries: vec![(7, vec![0])],
    };
    let demoted = LintConfig::default().warn(LintCode::XOutOfRange);
    let report = check_xmap_facts(&demoted, &facts);
    assert_eq!(report.len(), 1);
    assert!(!report.has_deny());
    // Suppress it entirely.
    let allowed = LintConfig::default().allow(LintCode::XOutOfRange);
    assert!(check_xmap_facts(&allowed, &facts).is_empty());
    // Escalate a warn rule.
    let escalated = LintConfig::default().deny(LintCode::ChainImbalance);
    let scan = ScanConfig::new(vec![100, 10, 10]);
    assert!(check_scan_config(&escalated, &scan).has_deny());
}

// ---------------------------------------------------------------- XL05xx

#[test]
fn xl0501_unknown_backend_fires() {
    let lc = LintConfig::default();
    // A wire byte past the registry fires, names the byte, and lists
    // the valid roster in the help text.
    let report = xhc_lint::check_backend_code(&lc, 200);
    assert_eq!(codes(&report), vec![LintCode::UnknownBackend]);
    assert!(report.has_deny());
    assert!(report.diagnostics[0].message.contains("200"));
    assert!(report.diagnostics[0].help.contains("hybrid (0)"));
    assert!(report.diagnostics[0].help.contains("xcode (4)"));
    // So does an unparseable CLI/query token.
    let report = xhc_lint::check_backend_token(&lc, "bogus");
    assert_eq!(codes(&report), vec![LintCode::UnknownBackend]);
    assert!(report.diagnostics[0].message.contains("bogus"));
}

#[test]
fn xl0501_registered_backends_pass() {
    let lc = LintConfig::default();
    for backend in xhc_core::BackendId::ALL {
        let code = xhc_wire::backend_code(backend);
        assert!(
            xhc_lint::check_backend_code(&lc, code).is_empty(),
            "{backend} must lint clean"
        );
        assert!(
            xhc_lint::check_backend_token(&lc, backend.name()).is_empty(),
            "{backend} token must lint clean"
        );
    }
    // Demoting the rule keeps the finding but drops the deny.
    let demoted = LintConfig::default().warn(LintCode::UnknownBackend);
    let report = xhc_lint::check_backend_code(&demoted, 99);
    assert_eq!(report.len(), 1);
    assert!(!report.has_deny());
}
